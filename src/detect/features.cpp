#include "detect/features.h"

#include <cmath>
#include <map>

#include "core/parallel.h"
#include "geo/geodesic.h"

namespace geovalid::detect {
namespace {

constexpr double kTau = 6.28318530717958647692;

double log1p_safe(double x) { return std::log1p(std::max(0.0, x)); }

}  // namespace

std::span<const std::string_view> feature_names() {
  static constexpr std::array<std::string_view, kFeatureCount> kNames{
      "log_gap_prev_min", "log_gap_next_min", "burst_neighbors_10min",
      "hour_sin",         "hour_cos",         "is_weekend",
      "log_dist_centroid_km", "log_dist_prev_km", "log_speed_prev_mps",
      "venue_repeat_count",   "category_share",   "log_checkins_per_day",
  };
  return kNames;
}

std::vector<FeatureVector> extract_features(const trace::UserRecord& user) {
  const auto events = user.checkins.events();
  std::vector<FeatureVector> out(events.size());
  if (events.empty()) return out;

  // --- Per-user aggregates -------------------------------------------------
  double lat_sum = 0.0, lon_sum = 0.0;
  std::map<trace::PoiId, std::size_t> venue_counts;
  std::array<std::size_t, trace::kPoiCategoryCount> category_counts{};
  for (const trace::Checkin& c : events) {
    lat_sum += c.location.lat_deg;
    lon_sum += c.location.lon_deg;
    ++venue_counts[c.poi];
    ++category_counts[static_cast<std::size_t>(c.category)];
  }
  const geo::LatLon centroid{lat_sum / static_cast<double>(events.size()),
                             lon_sum / static_cast<double>(events.size())};
  const double per_day = user.checkins.events_per_day();

  // --- Per-checkin features ------------------------------------------------
  for (std::size_t i = 0; i < events.size(); ++i) {
    const trace::Checkin& c = events[i];
    FeatureVector& f = out[i];

    const double gap_prev =
        i == 0 ? 1e6 : trace::to_minutes(c.t - events[i - 1].t);
    const double gap_next = i + 1 == events.size()
                                ? 1e6
                                : trace::to_minutes(events[i + 1].t - c.t);
    f[0] = log1p_safe(gap_prev);
    f[1] = log1p_safe(gap_next);

    std::size_t burst = 0;
    for (std::size_t j = i; j-- > 0;) {
      if (c.t - events[j].t > trace::minutes(10)) break;
      ++burst;
    }
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].t - c.t > trace::minutes(10)) break;
      ++burst;
    }
    f[2] = static_cast<double>(burst);

    const double hour =
        static_cast<double>(c.t % trace::kSecondsPerDay) / 3600.0;
    f[3] = std::sin(kTau * hour / 24.0);
    f[4] = std::cos(kTau * hour / 24.0);
    // Study starts on a Tuesday; days 4 and 5 of each week are weekend
    // (same convention as the generator's schedule).
    const auto day_index =
        static_cast<std::size_t>(c.t / trace::kSecondsPerDay);
    const std::size_t dow = day_index % 7;
    f[5] = (dow == 4 || dow == 5) ? 1.0 : 0.0;

    f[6] = log1p_safe(geo::distance_m(c.location, centroid) /
                      geo::kMetersPerKilometer);
    if (i == 0) {
      f[7] = 0.0;
      f[8] = 0.0;
    } else {
      const double d = geo::distance_m(c.location, events[i - 1].location);
      f[7] = log1p_safe(d / geo::kMetersPerKilometer);
      const double dt = static_cast<double>(c.t - events[i - 1].t);
      f[8] = dt <= 0.0 ? log1p_safe(1e4) : log1p_safe(d / dt);
    }

    f[9] = static_cast<double>(venue_counts[c.poi]);
    const std::size_t cat_count =
        category_counts[static_cast<std::size_t>(c.category)];
    f[10] = static_cast<double>(cat_count) /
            static_cast<double>(events.size());
    f[11] = log1p_safe(per_day);
  }
  return out;
}

std::vector<std::vector<FeatureVector>> extract_features(
    const trace::Dataset& ds, std::size_t threads) {
  const auto users = ds.users();
  core::ThreadPool pool(threads);
  return core::parallel_map(&pool, users.size(), [&](std::size_t i) {
    return extract_features(users[i]);
  });
}

}  // namespace geovalid::detect
