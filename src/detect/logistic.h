// L2-regularized logistic regression, trained by mini-batch gradient
// descent. Small, dependency-free, and sufficient for the paper's "apply
// machine learning" suggestion — the point is the feature signal, not the
// model class.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace geovalid::detect {

/// Per-feature standardization parameters (z-scoring), estimated on the
/// training split and applied everywhere.
class Standardizer {
 public:
  Standardizer() = default;

  /// Estimates mean and standard deviation per column. Constant columns get
  /// sigma 1 so they standardize to 0.
  static Standardizer fit(std::span<const std::vector<double>> rows);

  /// Rebuilds a standardizer from persisted parameters (the model-artifact
  /// load path). Sizes must match; throws std::invalid_argument otherwise.
  static Standardizer from_params(std::span<const double> mean,
                                  std::span<const double> sigma);

  [[nodiscard]] std::vector<double> transform(
      std::span<const double> row) const;

  [[nodiscard]] std::size_t dimensions() const { return mean_.size(); }
  [[nodiscard]] std::span<const double> mean() const { return mean_; }
  [[nodiscard]] std::span<const double> stddev() const { return sigma_; }

 private:
  std::vector<double> mean_;
  std::vector<double> sigma_;
};

/// Training hyperparameters.
struct LogisticConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::size_t epochs = 60;
  std::size_t batch_size = 64;
  std::uint64_t seed = 7;
};

/// A trained binary classifier: p(y=1 | x) = sigmoid(w.x + b).
class LogisticModel {
 public:
  LogisticModel() = default;

  /// Trains on standardized rows with {0,1} labels. Rows must be non-empty
  /// and rectangular; throws std::invalid_argument otherwise.
  static LogisticModel train(std::span<const std::vector<double>> rows,
                             std::span<const int> labels,
                             const LogisticConfig& config = {});

  /// Rebuilds a trained model from persisted parameters (the model-artifact
  /// load path).
  static LogisticModel from_params(std::span<const double> weights,
                                   double bias);

  /// Probability of the positive class for one standardized row.
  [[nodiscard]] double predict(std::span<const double> row) const;

  [[nodiscard]] std::span<const double> weights() const { return weights_; }
  [[nodiscard]] double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Numerically stable sigmoid.
[[nodiscard]] double sigmoid(double z);

}  // namespace geovalid::detect
