#include "detect/logistic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace geovalid::detect {

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

Standardizer Standardizer::fit(std::span<const std::vector<double>> rows) {
  Standardizer s;
  if (rows.empty()) return s;
  const std::size_t dims = rows.front().size();
  s.mean_.assign(dims, 0.0);
  s.sigma_.assign(dims, 0.0);

  for (const auto& row : rows) {
    if (row.size() != dims) {
      throw std::invalid_argument("Standardizer: ragged rows");
    }
    for (std::size_t d = 0; d < dims; ++d) s.mean_[d] += row[d];
  }
  const auto n = static_cast<double>(rows.size());
  for (double& m : s.mean_) m /= n;

  for (const auto& row : rows) {
    for (std::size_t d = 0; d < dims; ++d) {
      const double delta = row[d] - s.mean_[d];
      s.sigma_[d] += delta * delta;
    }
  }
  for (double& v : s.sigma_) {
    v = std::sqrt(v / std::max(1.0, n - 1.0));
    if (v < 1e-12) v = 1.0;  // constant column
  }
  return s;
}

Standardizer Standardizer::from_params(std::span<const double> mean,
                                       std::span<const double> sigma) {
  if (mean.size() != sigma.size()) {
    throw std::invalid_argument("Standardizer: mean/sigma size mismatch");
  }
  Standardizer s;
  s.mean_.assign(mean.begin(), mean.end());
  s.sigma_.assign(sigma.begin(), sigma.end());
  return s;
}

std::vector<double> Standardizer::transform(
    std::span<const double> row) const {
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("Standardizer: dimension mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t d = 0; d < row.size(); ++d) {
    out[d] = (row[d] - mean_[d]) / sigma_[d];
  }
  return out;
}

LogisticModel LogisticModel::train(std::span<const std::vector<double>> rows,
                                   std::span<const int> labels,
                                   const LogisticConfig& config) {
  if (rows.empty() || rows.size() != labels.size()) {
    throw std::invalid_argument("LogisticModel: bad training shapes");
  }
  const std::size_t dims = rows.front().size();
  for (const auto& r : rows) {
    if (r.size() != dims) {
      throw std::invalid_argument("LogisticModel: ragged rows");
    }
  }

  LogisticModel model;
  model.weights_.assign(dims, 0.0);
  model.bias_ = 0.0;

  stats::Rng rng(config.seed);
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::vector<double> grad(dims, 0.0);
  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    // Simple step decay keeps late epochs from oscillating.
    const double lr =
        config.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));

    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t end = std::min(order.size(), start + batch);
      std::fill(grad.begin(), grad.end(), 0.0);
      double grad_b = 0.0;

      for (std::size_t k = start; k < end; ++k) {
        const auto& x = rows[order[k]];
        const double y = static_cast<double>(labels[order[k]]);
        double z = model.bias_;
        for (std::size_t d = 0; d < dims; ++d) z += model.weights_[d] * x[d];
        const double err = sigmoid(z) - y;
        for (std::size_t d = 0; d < dims; ++d) grad[d] += err * x[d];
        grad_b += err;
      }

      const double scale = 1.0 / static_cast<double>(end - start);
      for (std::size_t d = 0; d < dims; ++d) {
        model.weights_[d] -=
            lr * (grad[d] * scale + config.l2 * model.weights_[d]);
      }
      model.bias_ -= lr * grad_b * scale;
    }
  }
  return model;
}

LogisticModel LogisticModel::from_params(std::span<const double> weights,
                                         double bias) {
  LogisticModel model;
  model.weights_.assign(weights.begin(), weights.end());
  model.bias_ = bias;
  return model;
}

double LogisticModel::predict(std::span<const double> row) const {
  if (row.size() != weights_.size()) {
    throw std::invalid_argument("LogisticModel: dimension mismatch");
  }
  double z = bias_;
  for (std::size_t d = 0; d < row.size(); ++d) z += weights_[d] * row[d];
  return sigmoid(z);
}

}  // namespace geovalid::detect
