#include "detect/evaluation.h"

#include <algorithm>
#include <numeric>

namespace geovalid::detect {

ScoredLabels score_test_split(const TrainedDetector& detector,
                              const trace::Dataset& ds,
                              const match::ValidationResult& validation) {
  ScoredLabels out;
  const auto users = ds.users();
  for (std::size_t u : detector.test_users) {
    const auto scores = detector.score_user(users[u]);
    const auto& labels = validation.users[u].labels;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      out.scores.push_back(scores[i]);
      out.labels.push_back(
          labels[i] == match::CheckinClass::kHonest ? 0 : 1);
    }
  }
  return out;
}

double auc(const ScoredLabels& scored) {
  // Rank-sum (Mann-Whitney) formulation with average ranks for ties.
  const std::size_t n = scored.scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scored.scores[a] < scored.scores[b];
  });

  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n &&
           scored.scores[order[j + 1]] == scored.scores[order[i]]) {
      ++j;
    }
    const double avg =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }

  double positive_rank_sum = 0.0;
  std::size_t positives = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (scored.labels[k] == 1) {
      positive_rank_sum += rank[k];
      ++positives;
    }
  }
  const std::size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  const double u_stat = positive_rank_sum -
                        static_cast<double>(positives) *
                            (static_cast<double>(positives) + 1.0) / 2.0;
  return u_stat /
         (static_cast<double>(positives) * static_cast<double>(negatives));
}

std::vector<RocPoint> roc_curve(const ScoredLabels& scored,
                                std::size_t points) {
  std::vector<RocPoint> curve;
  if (points < 2) points = 2;
  std::size_t positives = 0;
  for (int label : scored.labels) positives += label;
  const std::size_t negatives = scored.labels.size() - positives;

  for (std::size_t p = 0; p < points; ++p) {
    const double threshold =
        static_cast<double>(p) / static_cast<double>(points - 1);
    std::size_t tp = 0, fp = 0;
    for (std::size_t k = 0; k < scored.scores.size(); ++k) {
      if (scored.scores[k] >= threshold) {
        if (scored.labels[k] == 1) ++tp;
        else ++fp;
      }
    }
    RocPoint pt;
    pt.threshold = threshold;
    pt.true_positive_rate =
        positives == 0 ? 0.0
                       : static_cast<double>(tp) /
                             static_cast<double>(positives);
    pt.false_positive_rate =
        negatives == 0 ? 0.0
                       : static_cast<double>(fp) /
                             static_cast<double>(negatives);
    curve.push_back(pt);
  }
  return curve;
}

match::DetectionScore confusion_at(const ScoredLabels& scored,
                                   double threshold) {
  match::DetectionScore s;
  for (std::size_t k = 0; k < scored.scores.size(); ++k) {
    const bool flagged = scored.scores[k] >= threshold;
    const bool is_extraneous = scored.labels[k] == 1;
    if (is_extraneous && flagged) ++s.true_positive;
    else if (is_extraneous) ++s.false_negative;
    else if (flagged) ++s.false_positive;
    else ++s.true_negative;
  }
  return s;
}

double best_f1_threshold(const ScoredLabels& scored, std::size_t grid) {
  double best_threshold = 0.5;
  double best_f1 = -1.0;
  for (std::size_t p = 0; p < grid; ++p) {
    const double threshold =
        static_cast<double>(p) / static_cast<double>(grid - 1);
    const double f1 = confusion_at(scored, threshold).f1();
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

}  // namespace geovalid::detect
