// End-to-end learned extraneous-checkin detector.
//
// Trains a logistic model on matcher-derived labels (honest = 0,
// everything else = 1) with a per-user train/test split — whole users go
// to one side, so the evaluation measures generalization to unseen users,
// which is the deployment scenario (you cannot GPS-instrument the users of
// a public dataset).
#pragma once

#include <cstdint>
#include <vector>

#include "detect/features.h"
#include "detect/logistic.h"
#include "match/pipeline.h"

namespace geovalid::detect {

/// Train/evaluate configuration.
struct DetectorConfig {
  double train_fraction = 0.7;  ///< share of users in the training split
  std::uint64_t split_seed = 13;
  LogisticConfig logistic;
};

/// A trained detector: scaler + model, plus the user split used.
struct TrainedDetector {
  Standardizer scaler;
  LogisticModel model;
  std::vector<std::size_t> train_users;  ///< indices into dataset users
  std::vector<std::size_t> test_users;

  /// Probability that each checkin of `user` is extraneous.
  [[nodiscard]] std::vector<double> score_user(
      const trace::UserRecord& user) const;
};

/// Trains on the dataset's training split, using the matcher's labels as
/// supervision. Throws std::invalid_argument when the dataset/validation
/// disagree or the training split has no checkins.
[[nodiscard]] TrainedDetector train_detector(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    const DetectorConfig& config = {});

}  // namespace geovalid::detect
