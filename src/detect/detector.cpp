#include "detect/detector.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace geovalid::detect {

std::vector<double> TrainedDetector::score_user(
    const trace::UserRecord& user) const {
  const std::vector<FeatureVector> features = extract_features(user);
  std::vector<double> scores;
  scores.reserve(features.size());
  for (const FeatureVector& f : features) {
    const std::vector<double> z =
        scaler.transform(std::span<const double>(f.data(), f.size()));
    scores.push_back(model.predict(z));
  }
  return scores;
}

TrainedDetector train_detector(const trace::Dataset& ds,
                               const match::ValidationResult& validation,
                               const DetectorConfig& config) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "train_detector: validation does not match dataset");
  }
  if (config.train_fraction <= 0.0 || config.train_fraction >= 1.0) {
    throw std::invalid_argument(
        "train_detector: train_fraction must be in (0,1)");
  }

  TrainedDetector detector;

  // Per-user split.
  std::vector<std::size_t> order(ds.user_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  stats::Rng rng(config.split_seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  const auto cut = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(order.size()));
  detector.train_users.assign(order.begin(), order.begin() + cut);
  detector.test_users.assign(order.begin() + cut, order.end());

  // Assemble the training matrix.
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  const auto users = ds.users();
  for (std::size_t u : detector.train_users) {
    const auto features = extract_features(users[u]);
    const auto& user_labels = validation.users[u].labels;
    for (std::size_t i = 0; i < features.size(); ++i) {
      rows.emplace_back(features[i].begin(), features[i].end());
      labels.push_back(
          user_labels[i] == match::CheckinClass::kHonest ? 0 : 1);
    }
  }
  if (rows.empty()) {
    throw std::invalid_argument("train_detector: no training checkins");
  }

  detector.scaler = Standardizer::fit(rows);
  for (auto& row : rows) row = detector.scaler.transform(row);
  detector.model = LogisticModel::train(rows, labels, config.logistic);
  return detector;
}

}  // namespace geovalid::detect
