// Checkin feature extraction for learned extraneous-checkin detection.
//
// §7 of the paper: "a more thorough analysis (perhaps applying machine
// learning techniques) is necessary". The hard constraint is unchanged — a
// consumer of a geosocial dataset has the checkin trace only, no GPS — so
// every feature here derives from the checkin stream itself.
#pragma once

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "trace/dataset.h"

namespace geovalid::detect {

/// Number of features per checkin.
inline constexpr std::size_t kFeatureCount = 12;

/// One checkin's feature vector.
using FeatureVector = std::array<double, kFeatureCount>;

/// Human-readable feature names, index-aligned with FeatureVector.
[[nodiscard]] std::span<const std::string_view> feature_names();

/// Features of every checkin of one user (parallel to the checkin trace):
///
///   0 log1p gap to previous checkin (minutes; burstiness, Figure 6)
///   1 log1p gap to next checkin (minutes)
///   2 neighbours within a 10-minute window (burst size)
///   3 hour-of-day, sine component (badge sprees cluster in time)
///   4 hour-of-day, cosine component
///   5 weekend flag
///   6 log1p distance from the user's checkin centroid (km; remote fakes)
///   7 log1p distance from the previous checkin (km)
///   8 log1p implied speed from the previous checkin (m/s; teleports)
///   9 user's repeat count at this venue (mayor farming)
///  10 user's share of checkins in this venue's category
///  11 log1p user's checkins per day (heavy users fake more)
[[nodiscard]] std::vector<FeatureVector> extract_features(
    const trace::UserRecord& user);

/// Features for every user of a dataset, outer index = user position.
/// Users fan out over `threads` (0 = all hardware threads); the result is
/// byte-identical at any thread count.
[[nodiscard]] std::vector<std::vector<FeatureVector>> extract_features(
    const trace::Dataset& ds, std::size_t threads = 1);

}  // namespace geovalid::detect
