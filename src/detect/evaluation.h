// Scoring of probabilistic detectors: ROC curves, AUC, and conversion to
// the DetectionScore confusion counts used across the project.
#pragma once

#include <vector>

#include "detect/detector.h"
#include "match/filters.h"

namespace geovalid::detect {

/// One operating point of a score-thresholded detector.
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
};

/// Scores + binary labels of a set of checkins (flattened across users).
struct ScoredLabels {
  std::vector<double> scores;
  std::vector<int> labels;  ///< 1 = extraneous
};

/// Scores the detector's *test* users against the matcher labels.
[[nodiscard]] ScoredLabels score_test_split(
    const TrainedDetector& detector, const trace::Dataset& ds,
    const match::ValidationResult& validation);

/// Area under the ROC curve via the rank statistic (ties get half credit).
/// Returns 0.5 when either class is absent.
[[nodiscard]] double auc(const ScoredLabels& scored);

/// ROC curve sampled at `points` evenly spaced score thresholds.
[[nodiscard]] std::vector<RocPoint> roc_curve(const ScoredLabels& scored,
                                              std::size_t points = 21);

/// Confusion counts at one threshold.
[[nodiscard]] match::DetectionScore confusion_at(const ScoredLabels& scored,
                                                 double threshold);

/// Threshold maximizing F1 over the scored sample.
[[nodiscard]] double best_f1_threshold(const ScoredLabels& scored,
                                       std::size_t grid = 41);

}  // namespace geovalid::detect
