#include "obs/export.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace geovalid::obs {
namespace {

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  json_escape(out, s);
  out << '"';
}

void json_labels(std::ostream& out, const Labels& labels) {
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    json_string(out, k);
    out << ':';
    json_string(out, v);
  }
  out << '}';
}

/// Prometheus label block: `{a="x",b="y"}`, empty string for no labels.
/// Every value — including the histogram `le` bound handed in as
/// extra_value — goes through the shared escaper.
void prom_labels(std::ostream& out, const Labels& labels,
                 const std::string* extra_key = nullptr,
                 const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << k << "=\"" << prom_escape_label_value(v) << '"';
  }
  if (extra_key != nullptr) {
    if (!first) out << ',';
    out << *extra_key << "=\"" << prom_escape_label_value(*extra_value)
        << '"';
  }
  out << '}';
}

}  // namespace

std::string prom_escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string prom_escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void write_json(const Registry& registry, std::ostream& out) {
  const std::vector<Sample> samples = registry.samples();
  out << "{\"metrics\":[";
  bool first_sample = true;
  for (const Sample& s : samples) {
    if (!first_sample) out << ',';
    first_sample = false;
    out << "\n  {\"name\":";
    json_string(out, s.info.name);
    out << ",\"type\":";
    json_string(out, to_string(s.info.type));
    out << ",\"labels\":";
    json_labels(out, s.info.labels);
    out << ",\"help\":";
    json_string(out, s.info.help);
    switch (s.info.type) {
      case MetricType::kCounter:
        out << ",\"value\":" << s.counter_value;
        break;
      case MetricType::kGauge:
        out << ",\"value\":" << s.gauge_value;
        break;
      case MetricType::kHistogram: {
        out << ",\"count\":" << s.histogram.count
            << ",\"sum\":" << s.histogram.sum << ",\"buckets\":[";
        bool first_bucket = true;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          if (s.histogram.buckets[b] == 0) continue;
          if (!first_bucket) out << ',';
          first_bucket = false;
          out << "{\"le\":" << Histogram::bucket_bound(b)
              << ",\"count\":" << s.histogram.buckets[b] << '}';
        }
        out << ']';
        break;
      }
    }
    out << '}';
  }
  out << "\n]}\n";
}

std::string to_json(const Registry& registry) {
  std::ostringstream os;
  write_json(registry, os);
  return os.str();
}

void write_json_file(const Registry& registry,
                     const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open for write: " + path.string());
  }
  write_json(registry, out);
  out.flush();
  if (!out) {
    throw std::runtime_error("write failed: " + path.string());
  }
}

void write_prometheus(const Registry& registry, std::ostream& out) {
  const std::vector<Sample> samples = registry.samples();
  const std::string* last_family = nullptr;
  for (const Sample& s : samples) {
    if (last_family == nullptr || *last_family != s.info.name) {
      out << "# HELP " << s.info.name << ' ' << prom_escape_help(s.info.help)
          << '\n';
      out << "# TYPE " << s.info.name << ' ' << to_string(s.info.type)
          << '\n';
      last_family = &s.info.name;
    }
    switch (s.info.type) {
      case MetricType::kCounter:
        out << s.info.name;
        prom_labels(out, s.info.labels);
        out << ' ' << s.counter_value << '\n';
        break;
      case MetricType::kGauge:
        out << s.info.name;
        prom_labels(out, s.info.labels);
        out << ' ' << s.gauge_value << '\n';
        break;
      case MetricType::kHistogram: {
        const std::string le = "le";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          if (s.histogram.buckets[b] == 0) continue;
          cumulative += s.histogram.buckets[b];
          const std::string bound =
              std::to_string(Histogram::bucket_bound(b));
          out << s.info.name << "_bucket";
          prom_labels(out, s.info.labels, &le, &bound);
          out << ' ' << cumulative << '\n';
        }
        const std::string inf = "+Inf";
        out << s.info.name << "_bucket";
        prom_labels(out, s.info.labels, &le, &inf);
        out << ' ' << s.histogram.count << '\n';
        out << s.info.name << "_sum";
        prom_labels(out, s.info.labels);
        out << ' ' << s.histogram.sum << '\n';
        out << s.info.name << "_count";
        prom_labels(out, s.info.labels);
        out << ' ' << s.histogram.count << '\n';
        break;
      }
    }
  }
}

std::string to_prometheus(const Registry& registry) {
  std::ostringstream os;
  write_prometheus(registry, os);
  return os.str();
}

}  // namespace geovalid::obs
