#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace geovalid::obs {

std::string_view to_string(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          std::string_view help,
                                          Labels labels, MetricType type) {
  std::sort(labels.begin(), labels.end());
  Key key{std::string(name), std::move(labels)};

  std::lock_guard<std::mutex> lock(mu_);
  const auto family = families_.find(key.first);
  if (family == families_.end()) {
    families_.emplace(key.first, type);
  } else if (family->second != type) {
    throw std::logic_error("metric '" + key.first +
                           "' registered as two different types");
  }

  const auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;

  Entry entry;
  entry.info.name = key.first;
  entry.info.help = std::string(help);
  entry.info.type = type;
  entry.info.labels = key.second;
  switch (type) {
    case MetricType::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricType::kCounter)
              .counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricType::kGauge)
              .gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               Labels labels) {
  return *find_or_create(name, help, std::move(labels),
                         MetricType::kHistogram)
              .histogram;
}

std::vector<Sample> Registry::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {  // std::map: sorted, stable
    Sample s;
    s.info = entry.info;
    switch (entry.info.type) {
      case MetricType::kCounter:
        s.counter_value = entry.counter->value();
        break;
      case MetricType::kGauge:
        s.gauge_value = entry.gauge->value();
        break;
      case MetricType::kHistogram:
        s.histogram = entry.histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> Registry::metric_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, type] : families_) names.push_back(name);
  return names;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    switch (entry.info.type) {
      case MetricType::kCounter:
        entry.counter->reset();
        break;
      case MetricType::kGauge:
        entry.gauge->reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: metric
  return *instance;  // references must outlive static-destruction order
}

}  // namespace geovalid::obs
