// Snapshot writers for the metrics Registry.
//
// Two formats, same data:
//   - JSON: machine-readable dump for the `--metrics-json` CLI flag, bench
//     tooling and tests. All values are integers, so the output is exact
//     and byte-stable.
//   - Prometheus-style text exposition: `# HELP` / `# TYPE` headers,
//     `name{label="value"} 123` samples, cumulative `_bucket{le="..."}`
//     histogram series — the format a real serving stack would scrape.
//     (Histogram bounds are the registry's base-2 integer buckets, not the
//     canonical seconds-based ones; see docs/OBSERVABILITY.md.)
//
// Both writers emit samples sorted by (name, labels): two dumps of an idle
// registry are byte-identical.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace geovalid::obs {

void write_json(const Registry& registry, std::ostream& out);
[[nodiscard]] std::string to_json(const Registry& registry);

/// Writes the JSON snapshot to `path`. Throws std::runtime_error on I/O
/// failure.
void write_json_file(const Registry& registry,
                     const std::filesystem::path& path);

void write_prometheus(const Registry& registry, std::ostream& out);
[[nodiscard]] std::string to_prometheus(const Registry& registry);

}  // namespace geovalid::obs
