// Snapshot writers for the metrics Registry.
//
// Two formats, same data:
//   - JSON: machine-readable dump for the `--metrics-json` CLI flag, bench
//     tooling and tests. All values are integers, so the output is exact
//     and byte-stable.
//   - Prometheus-style text exposition: `# HELP` / `# TYPE` headers,
//     `name{label="value"} 123` samples, cumulative `_bucket{le="..."}`
//     histogram series — the format a real serving stack would scrape.
//     (Histogram bounds are the registry's base-2 integer buckets, not the
//     canonical seconds-based ones; see docs/OBSERVABILITY.md.)
//
// Both writers emit samples sorted by (name, labels): two dumps of an idle
// registry are byte-identical.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace geovalid::obs {

/// The exposition-format content type an HTTP scrape endpoint must serve
/// (Prometheus text format 0.0.4); `geovalid serve` uses it on /metrics.
inline constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

void write_json(const Registry& registry, std::ostream& out);
[[nodiscard]] std::string to_json(const Registry& registry);

/// Writes the JSON snapshot to `path`. Throws std::runtime_error on I/O
/// failure.
void write_json_file(const Registry& registry,
                     const std::filesystem::path& path);

void write_prometheus(const Registry& registry, std::ostream& out);
[[nodiscard]] std::string to_prometheus(const Registry& registry);

/// Escapes a label value per the text exposition format: backslash, double
/// quote and newline become \\, \" and \n. Everything the exporter puts
/// between label quotes goes through here.
[[nodiscard]] std::string prom_escape_label_value(std::string_view value);

/// Escapes `# HELP` text: backslash and newline (quotes are legal there).
[[nodiscard]] std::string prom_escape_help(std::string_view help);

}  // namespace geovalid::obs
