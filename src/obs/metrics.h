// Observability primitives for the validation pipelines.
//
// The paper's pipeline is a chain of measurement stages, and a measured
// pipeline is only trustworthy when its internal rates and drop counts are
// inspectable — so every subsystem (batch core, streaming engine, trace
// ingest, application studies) reports into one process-wide Registry.
//
// Design constraints, in order:
//   1. Hot-path cost: a Counter::inc is one relaxed atomic add; a
//      Histogram::observe is two. No locks, no allocation, no syscalls.
//      The registry mutex is taken only at metric *registration* — callers
//      cache the returned reference (stable for the process lifetime).
//   2. Determinism: snapshots iterate a sorted map, so two dumps of an
//      idle registry are byte-identical (tested).
//   3. Portability: a snapshot can be written as JSON (for tooling and the
//      `--metrics-json` CLI flag) or Prometheus-style text exposition (see
//      export.h), so the same names transfer to a real serving stack.
//
// Naming convention (enforced only by review + the docs-diff test):
// `<subsystem>_<what>_<unit>`; counters end in `_total`, durations are
// integer nanoseconds and end in `_ns`. Every metric emitted at runtime
// must be documented in docs/OBSERVABILITY.md — a test diffs the registry
// against the doc.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace geovalid::obs {

/// Monotonically increasing event count. Relaxed atomics: totals are exact
/// once the writing threads are quiescent (joined or finished), which is
/// when snapshots are read.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, active workers).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed (base-2) histogram over non-negative integers. Bucket i
/// counts values whose bit width is i, i.e. [2^(i-1), 2^i - 1], with bucket
/// 0 holding exact zeros — so the full uint64 range is covered by 65
/// buckets and observe() is a bit-scan plus two relaxed adds. Factor-of-two
/// resolution is enough to steer on (latency regressions of interest are
/// >2x or show up in the sum/count mean).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  static constexpr std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive upper bound of bucket `i` (the `le` of the exposition).
  static constexpr std::uint64_t bucket_bound(std::size_t i) {
    return i == 0 ? 0
           : i >= 64
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << i) - 1;
  }

  void observe(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.sum = sum_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    return s;
  }
  [[nodiscard]] std::uint64_t count() const { return snapshot().count; }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// RAII scope tracer: records the scope's wall time (integer nanoseconds)
/// into a Histogram on destruction. A null histogram makes the timer a
/// no-op, so call sites can gate instrumentation with a single pointer.
class StageTimer {
 public:
  explicit StageTimer(Histogram* h)
      : histogram_(h),
        start_(h ? std::chrono::steady_clock::now()
                 : std::chrono::steady_clock::time_point{}) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { stop(); }

  /// Records now, instead of at scope exit. Idempotent.
  void stop() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    histogram_->observe(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    histogram_ = nullptr;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Label set of one metric instance, e.g. {{"shard", "3"}}. Keys are
/// canonicalized (sorted) at registration so the same set always names the
/// same instance.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricType t);

struct MetricInfo {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
};

/// One sampled metric instance, as returned by Registry::samples().
struct Sample {
  MetricInfo info;
  std::uint64_t counter_value = 0;   ///< valid for kCounter
  std::int64_t gauge_value = 0;      ///< valid for kGauge
  Histogram::Snapshot histogram;     ///< valid for kHistogram
};

/// Process-wide metric registry. Thread-safe; registration takes a mutex,
/// metric updates through the returned references are lock-free.
///
/// Registering the same (name, labels) pair again returns the existing
/// instance (the first help string wins); registering a name under two
/// different metric types throws std::logic_error.
class Registry {
 public:
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {});

  /// All metric instances, sorted by (name, labels) — deterministic.
  [[nodiscard]] std::vector<Sample> samples() const;

  /// Distinct metric family names, sorted (for the docs-diff test).
  [[nodiscard]] std::vector<std::string> metric_names() const;

  /// Zeroes every metric's value, keeping the registrations (cached
  /// references stay valid). For tests that assert exact totals.
  void reset_values();

 private:
  struct Entry {
    MetricInfo info;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  Entry& find_or_create(std::string_view name, std::string_view help,
                        Labels labels, MetricType type);

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::map<std::string, MetricType, std::less<>> families_;
};

/// The process-wide registry every subsystem reports into.
[[nodiscard]] Registry& registry();

}  // namespace geovalid::obs
