// Key-location (anchor) inference from a checkin trace.
//
// §7 of the paper: "even approximations of 1 or more key locations (home,
// work) will go a long way towards improving accuracy". Home and work are
// precisely the places users do NOT check in at, so their positions must be
// triangulated from the temporal structure of the checkins users do make:
// evening/weekend checkins happen near home, weekday-daytime checkins near
// work.
#pragma once

#include <optional>
#include <vector>

#include "geo/latlon.h"
#include "trace/checkin.h"

namespace geovalid::recover {

/// An inferred key location.
struct Anchor {
  geo::LatLon position;
  std::size_t support = 0;  ///< checkins that voted for this anchor
};

/// Both anchors for one user; either may be missing when the trace has no
/// events in the corresponding time window.
struct InferredAnchors {
  std::optional<Anchor> home;
  std::optional<Anchor> work;
};

/// Inference tuning.
struct AnchorConfig {
  /// Local time window treated as "evening, near home" (hours).
  double home_window_start_h = 18.0;
  double home_window_end_h = 23.5;
  /// Window treated as "working hours" on weekdays.
  double work_window_start_h = 9.0;
  double work_window_end_h = 17.0;
  /// Robustness: the anchor is the geometric median (Weiszfeld) of the
  /// window's checkins; this many iterations are ample at city scale.
  std::size_t weiszfeld_iterations = 32;

  /// Cluster cell size for the pre-clustering step. A global median would
  /// average the home-side venues against downtown dinners; instead the
  /// votes are binned into cells of this size, the densest neighbourhood
  /// (cell + 8 surrounding cells) wins, and the median is taken inside it.
  double cluster_cell_m = 900.0;

  /// Prefer votes at venues the user hit on at least this many distinct
  /// days: one-off stops are noise, repeated ones are routine (when no
  /// venue repeats, all votes are kept).
  std::size_t min_repeat_days = 2;
};

/// Infers anchors from a (preferably pre-filtered) checkin sequence.
/// `extraneous` may be empty (keep everything) or parallel to `events`
/// (true = drop that event before inference).
[[nodiscard]] InferredAnchors infer_anchors(
    std::span<const trace::Checkin> events,
    const std::vector<bool>& extraneous = {},
    const AnchorConfig& config = {});

/// Geometric median of a set of coordinates (Weiszfeld's algorithm); the
/// robust analogue of the centroid. Returns nullopt for an empty set.
[[nodiscard]] std::optional<geo::LatLon> geometric_median(
    std::span<const geo::LatLon> points, std::size_t iterations = 32);

}  // namespace geovalid::recover
