// Scoring trace recovery against GPS ground truth.
//
// The evaluation question is the paper's: how much closer to the real
// mobility trace does a geosocial trace get after (a) filtering extraneous
// checkins and (b) adding back inferred routine locations?
#pragma once

#include "match/pipeline.h"
#include "recover/upsample.h"
#include "trace/dataset.h"

namespace geovalid::recover {

/// Per-user recovery quality.
struct UserRecoveryReport {
  trace::UserId id = 0;

  /// Distance from the inferred anchors to the user's true top home/work
  /// venues (metres); negative when the anchor was not inferred.
  double home_error_m = -1.0;
  double work_error_m = -1.0;

  /// Fraction of GPS visits covered (within alpha/beta of some event) by
  /// each event stream.
  double coverage_all_checkins = 0.0;  ///< raw trace
  double coverage_honest = 0.0;        ///< extraneous removed
  double coverage_recovered = 0.0;     ///< extraneous removed + anchors added
};

/// Dataset-level aggregation.
struct RecoveryReport {
  std::vector<UserRecoveryReport> users;

  double mean_home_error_m = 0.0;   ///< over users with an inferred home
  double mean_work_error_m = 0.0;
  /// Medians are the headline numbers: anchor errors are heavy-tailed
  /// (users whose lunch routine is far from their workplace defeat the
  /// inference entirely and dominate the means).
  double median_home_error_m = 0.0;
  double median_work_error_m = 0.0;
  double mean_coverage_all = 0.0;
  double mean_coverage_honest = 0.0;
  double mean_coverage_recovered = 0.0;
};

/// Runs recovery for every user (using the matcher's labels to drop
/// extraneous checkins) and scores it against the GPS visits. `truth_home`
/// and `truth_work` are derived from each user's most-visited Residence /
/// Professional-or-College venue.
[[nodiscard]] RecoveryReport evaluate_recovery(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    const RecoveryConfig& config = {},
    const match::MatchConfig& coverage_match = {});

}  // namespace geovalid::recover
