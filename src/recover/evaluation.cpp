#include "recover/evaluation.h"

#include <map>
#include <stdexcept>

#include "geo/geodesic.h"
#include "stats/summary.h"
#include "match/matcher.h"

namespace geovalid::recover {
namespace {

/// The user's most-visited venue of the given category set, from ground
/// truth visits. Returns nullopt when no visit matches.
std::optional<geo::LatLon> true_top_venue(
    const trace::Dataset& ds, const trace::UserRecord& user,
    std::initializer_list<trace::PoiCategory> categories) {
  std::map<trace::PoiId, std::size_t> counts;
  for (const trace::Visit& v : user.visits) {
    if (v.poi == trace::kNoPoi) continue;
    const trace::Poi* poi = ds.pois().find(v.poi);
    if (poi == nullptr) continue;
    for (trace::PoiCategory c : categories) {
      if (poi->category == c) {
        ++counts[v.poi];
        break;
      }
    }
  }
  const trace::Poi* best = nullptr;
  std::size_t best_count = 0;
  for (const auto& [id, n] : counts) {
    if (n > best_count) {
      best_count = n;
      best = ds.pois().find(id);
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->location;
}

/// Visit coverage of an arbitrary event stream: reuse the paper's matching
/// algorithm by presenting the events as pseudo-checkins.
double coverage_of(std::span<const RecoveredEvent> events,
                   std::span<const trace::Visit> visits,
                   const match::MatchConfig& cfg) {
  if (visits.empty()) return 0.0;
  std::vector<trace::Checkin> pseudo;
  pseudo.reserve(events.size());
  for (const RecoveredEvent& e : events) {
    trace::Checkin c;
    c.t = e.t;
    c.location = e.position;
    pseudo.push_back(c);
  }
  // Re-match mode: coverage asks "is some event near this visit", not the
  // paper's one-to-one accounting, so let losers cascade.
  match::MatchConfig loose = cfg;
  loose.rematch_losers = true;
  const match::UserMatch m = match::match_user(pseudo, visits, loose);
  const std::size_t covered = visits.size() - m.missing_count();
  return static_cast<double>(covered) / static_cast<double>(visits.size());
}

std::vector<RecoveredEvent> as_events(
    std::span<const trace::Checkin> checkins,
    const std::vector<bool>& drop) {
  std::vector<RecoveredEvent> out;
  for (std::size_t i = 0; i < checkins.size(); ++i) {
    if (!drop.empty() && drop[i]) continue;
    out.push_back(RecoveredEvent{checkins[i].t, checkins[i].location,
                                 RecoveredKind::kObserved});
  }
  return out;
}

}  // namespace

RecoveryReport evaluate_recovery(const trace::Dataset& ds,
                                 const match::ValidationResult& validation,
                                 const RecoveryConfig& config,
                                 const match::MatchConfig& coverage_match) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "evaluate_recovery: validation does not match dataset");
  }

  RecoveryReport report;
  double home_sum = 0.0, work_sum = 0.0;
  std::size_t home_n = 0, work_n = 0;
  double cov_all = 0.0, cov_honest = 0.0, cov_rec = 0.0;
  std::size_t cov_n = 0;

  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const trace::UserRecord& user = users[u];
    const auto& labels = validation.users[u].labels;
    if (user.checkins.empty() || user.visits.empty()) continue;

    // Extraneous flags from the matcher's labels.
    std::vector<bool> extraneous(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      extraneous[i] = labels[i] != match::CheckinClass::kHonest;
    }
    std::vector<bool> keep_all(labels.size(), false);

    const auto events = user.checkins.events();
    const RecoveredTrace recovered =
        recover_trace(events, extraneous, config);

    UserRecoveryReport ur;
    ur.id = user.id;

    if (recovered.anchors.home) {
      const auto truth = true_top_venue(ds, user,
                                        {trace::PoiCategory::kResidence});
      if (truth) {
        ur.home_error_m =
            geo::distance_m(recovered.anchors.home->position, *truth);
        home_sum += ur.home_error_m;
        ++home_n;
      }
    }
    if (recovered.anchors.work) {
      const auto truth =
          true_top_venue(ds, user, {trace::PoiCategory::kProfessional,
                                    trace::PoiCategory::kCollege});
      if (truth) {
        ur.work_error_m =
            geo::distance_m(recovered.anchors.work->position, *truth);
        work_sum += ur.work_error_m;
        ++work_n;
      }
    }

    ur.coverage_all_checkins =
        coverage_of(as_events(events, keep_all), user.visits, coverage_match);
    ur.coverage_honest = coverage_of(as_events(events, extraneous),
                                     user.visits, coverage_match);
    ur.coverage_recovered =
        coverage_of(recovered.events, user.visits, coverage_match);

    cov_all += ur.coverage_all_checkins;
    cov_honest += ur.coverage_honest;
    cov_rec += ur.coverage_recovered;
    ++cov_n;

    report.users.push_back(ur);
  }

  if (home_n > 0) report.mean_home_error_m = home_sum / static_cast<double>(home_n);
  if (work_n > 0) report.mean_work_error_m = work_sum / static_cast<double>(work_n);
  std::vector<double> home_errors, work_errors;
  for (const UserRecoveryReport& u : report.users) {
    if (u.home_error_m >= 0.0) home_errors.push_back(u.home_error_m);
    if (u.work_error_m >= 0.0) work_errors.push_back(u.work_error_m);
  }
  if (!home_errors.empty()) {
    report.median_home_error_m = stats::quantile(home_errors, 0.5);
  }
  if (!work_errors.empty()) {
    report.median_work_error_m = stats::quantile(work_errors, 0.5);
  }
  if (cov_n > 0) {
    report.mean_coverage_all = cov_all / static_cast<double>(cov_n);
    report.mean_coverage_honest = cov_honest / static_cast<double>(cov_n);
    report.mean_coverage_recovered = cov_rec / static_cast<double>(cov_n);
  }
  return report;
}

}  // namespace geovalid::recover
