// Trace repair: rebuild a mobility event stream from a geosocial trace.
//
// The paper's closing point (§6.2 summary, §7): to make a checkin trace
// usable as mobility data you must BOTH remove extraneous checkins AND add
// back the missing routine locations. This module does the second half:
// given a cleaned checkin sequence and inferred home/work anchors, it
// synthesizes the routine events the user never checked in for.
#pragma once

#include <vector>

#include "recover/anchors.h"
#include "trace/checkin.h"

namespace geovalid::recover {

/// Why an event is present in a recovered trace.
enum class RecoveredKind : std::uint8_t {
  kObserved = 0,   ///< a kept (non-extraneous) checkin
  kHomeInferred,   ///< synthesized stay at the inferred home anchor
  kWorkInferred,   ///< synthesized stay at the inferred work anchor
};

/// One event of the recovered mobility stream.
struct RecoveredEvent {
  trace::TimeSec t = 0;
  geo::LatLon position;
  RecoveredKind kind = RecoveredKind::kObserved;
};

/// Synthesis knobs (defaults describe an ordinary weekday routine).
struct RecoveryConfig {
  AnchorConfig anchors;

  double home_morning_hour = 7.2;   ///< synthesized morning home stay
  double home_evening_hour = 21.5;  ///< synthesized evening home stay
  double work_morning_hour = 10.0;  ///< synthesized work presence (weekdays)
  double work_afternoon_hour = 15.0;

  /// Minimum anchor support (votes) before synthesizing events around it.
  std::size_t min_anchor_support = 3;
};

/// A fully recovered trace plus the anchors it used.
struct RecoveredTrace {
  std::vector<RecoveredEvent> events;  ///< time-ordered
  InferredAnchors anchors;
  std::size_t observed = 0;   ///< events kept from the checkin trace
  std::size_t inferred = 0;   ///< events synthesized at anchors
};

/// Builds the recovered stream:
///  1. keep checkins not flagged extraneous (`extraneous` may be empty);
///  2. infer home/work anchors from the kept events;
///  3. for every calendar day the trace covers, synthesize morning/evening
///     home events and (weekdays) work events at the anchors.
[[nodiscard]] RecoveredTrace recover_trace(
    std::span<const trace::Checkin> events,
    const std::vector<bool>& extraneous = {},
    const RecoveryConfig& config = {});

}  // namespace geovalid::recover
