#include "recover/upsample.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace geovalid::recover {
namespace {

trace::TimeSec at_hour(trace::TimeSec midnight, double hour) {
  return midnight + static_cast<trace::TimeSec>(std::lround(hour * 3600.0));
}

bool is_weekend_day(std::size_t day_index) {
  const std::size_t dow = day_index % 7;
  return dow == 4 || dow == 5;
}

}  // namespace

RecoveredTrace recover_trace(std::span<const trace::Checkin> events,
                             const std::vector<bool>& extraneous,
                             const RecoveryConfig& config) {
  if (!extraneous.empty() && extraneous.size() != events.size()) {
    throw std::invalid_argument("recover_trace: flag size mismatch");
  }

  RecoveredTrace out;

  // 1. Kept observations.
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!extraneous.empty() && extraneous[i]) continue;
    out.events.push_back(RecoveredEvent{events[i].t, events[i].location,
                                        RecoveredKind::kObserved});
  }
  out.observed = out.events.size();
  if (out.events.empty()) return out;

  // 2. Anchors from the kept events.
  out.anchors = infer_anchors(events, extraneous, config.anchors);

  const bool use_home = out.anchors.home.has_value() &&
                        out.anchors.home->support >=
                            config.min_anchor_support;
  const bool use_work = out.anchors.work.has_value() &&
                        out.anchors.work->support >=
                            config.min_anchor_support;

  // 3. Routine synthesis over the covered days.
  const trace::TimeSec first = out.events.front().t;
  const trace::TimeSec last = out.events.back().t;
  const auto first_day = static_cast<std::size_t>(
      first / trace::kSecondsPerDay);
  const auto last_day = static_cast<std::size_t>(last / trace::kSecondsPerDay);

  for (std::size_t day = first_day; day <= last_day; ++day) {
    const auto midnight =
        static_cast<trace::TimeSec>(day) * trace::kSecondsPerDay;
    if (use_home) {
      out.events.push_back(RecoveredEvent{
          at_hour(midnight, config.home_morning_hour),
          out.anchors.home->position, RecoveredKind::kHomeInferred});
      out.events.push_back(RecoveredEvent{
          at_hour(midnight, config.home_evening_hour),
          out.anchors.home->position, RecoveredKind::kHomeInferred});
    }
    if (use_work && !is_weekend_day(day)) {
      out.events.push_back(RecoveredEvent{
          at_hour(midnight, config.work_morning_hour),
          out.anchors.work->position, RecoveredKind::kWorkInferred});
      out.events.push_back(RecoveredEvent{
          at_hour(midnight, config.work_afternoon_hour),
          out.anchors.work->position, RecoveredKind::kWorkInferred});
    }
  }
  out.inferred = out.events.size() - out.observed;

  std::sort(out.events.begin(), out.events.end(),
            [](const RecoveredEvent& a, const RecoveredEvent& b) {
              return a.t < b.t;
            });
  return out;
}

}  // namespace geovalid::recover
