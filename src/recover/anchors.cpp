#include "recover/anchors.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "geo/geodesic.h"

namespace geovalid::recover {
namespace {

double hour_of_day(trace::TimeSec t) {
  return static_cast<double>(t % trace::kSecondsPerDay) / 3600.0;
}

bool is_weekend(trace::TimeSec t) {
  // Same convention as the rest of the project: the study epoch starts on
  // a Tuesday, day indices 4 and 5 of each week are Saturday/Sunday.
  const auto day_index = static_cast<std::size_t>(t / trace::kSecondsPerDay);
  const std::size_t dow = day_index % 7;
  return dow == 4 || dow == 5;
}

/// Keeps only the votes inside the densest cluster neighbourhood: votes are
/// binned into square cells of `cell_m`, the cell whose 3x3 neighbourhood
/// holds the most votes wins, and its neighbourhood's votes survive.
std::vector<geo::LatLon> densest_cluster(std::span<const geo::LatLon> votes,
                                         double cell_m) {
  if (votes.size() < 3 || cell_m <= 0.0) {
    return {votes.begin(), votes.end()};
  }
  constexpr double kPi = 3.14159265358979323846;
  const double m_per_deg = geo::kEarthRadiusMeters * kPi / 180.0;
  const double cell_lat = cell_m / m_per_deg;
  const double cos_lat =
      std::max(0.01, std::cos(votes.front().lat_deg * kPi / 180.0));
  const double cell_lon = cell_m / (m_per_deg * cos_lat);

  auto cell_of = [&](const geo::LatLon& p) {
    return std::pair<long, long>{
        static_cast<long>(std::floor(p.lat_deg / cell_lat)),
        static_cast<long>(std::floor(p.lon_deg / cell_lon))};
  };

  std::map<std::pair<long, long>, std::size_t> counts;
  for (const geo::LatLon& p : votes) ++counts[cell_of(p)];

  std::pair<long, long> best{};
  std::size_t best_count = 0;
  for (const auto& [cell, unused] : counts) {
    std::size_t neighbourhood = 0;
    for (long dx = -1; dx <= 1; ++dx) {
      for (long dy = -1; dy <= 1; ++dy) {
        const auto it = counts.find({cell.first + dx, cell.second + dy});
        if (it != counts.end()) neighbourhood += it->second;
      }
    }
    if (neighbourhood > best_count) {
      best_count = neighbourhood;
      best = cell;
    }
  }

  std::vector<geo::LatLon> kept;
  for (const geo::LatLon& p : votes) {
    const auto c = cell_of(p);
    if (std::abs(c.first - best.first) <= 1 &&
        std::abs(c.second - best.second) <= 1) {
      kept.push_back(p);
    }
  }
  return kept.empty() ? std::vector<geo::LatLon>(votes.begin(), votes.end())
                      : kept;
}

std::optional<Anchor> anchor_from(std::span<const geo::LatLon> votes,
                                  const AnchorConfig& config) {
  const std::vector<geo::LatLon> cluster =
      densest_cluster(votes, config.cluster_cell_m);
  const auto median =
      geometric_median(cluster, config.weiszfeld_iterations);
  if (!median) return std::nullopt;
  return Anchor{*median, cluster.size()};
}

}  // namespace

std::optional<geo::LatLon> geometric_median(
    std::span<const geo::LatLon> points, std::size_t iterations) {
  if (points.empty()) return std::nullopt;

  // Start from the centroid.
  double lat = 0.0, lon = 0.0;
  for (const geo::LatLon& p : points) {
    lat += p.lat_deg;
    lon += p.lon_deg;
  }
  geo::LatLon current{lat / static_cast<double>(points.size()),
                      lon / static_cast<double>(points.size())};

  for (std::size_t it = 0; it < iterations; ++it) {
    double wsum = 0.0, wlat = 0.0, wlon = 0.0;
    bool at_sample = false;
    for (const geo::LatLon& p : points) {
      const double d = geo::fast_distance_m(current, p);
      if (d < 1e-6) {
        at_sample = true;
        continue;  // Weiszfeld: skip coincident points
      }
      const double w = 1.0 / d;
      wsum += w;
      wlat += w * p.lat_deg;
      wlon += w * p.lon_deg;
    }
    if (wsum <= 0.0) return current;  // all points coincide with current
    const geo::LatLon next{wlat / wsum, wlon / wsum};
    const double moved = geo::fast_distance_m(current, next);
    current = next;
    if (moved < 0.5 && !at_sample) break;  // converged to sub-metre
  }
  return current;
}

InferredAnchors infer_anchors(std::span<const trace::Checkin> events,
                              const std::vector<bool>& extraneous,
                              const AnchorConfig& config) {
  if (!extraneous.empty() && extraneous.size() != events.size()) {
    throw std::invalid_argument("infer_anchors: flag size mismatch");
  }

  struct Vote {
    geo::LatLon where;
    trace::PoiId venue;
    std::size_t day;
  };
  std::vector<Vote> home_votes;
  std::vector<Vote> work_votes;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!extraneous.empty() && extraneous[i]) continue;
    const trace::Checkin& c = events[i];
    const double h = hour_of_day(c.t);
    const bool weekend = is_weekend(c.t);
    const auto day = static_cast<std::size_t>(c.t / trace::kSecondsPerDay);

    if (h >= config.home_window_start_h && h <= config.home_window_end_h) {
      home_votes.push_back(Vote{c.location, c.poi, day});
    } else if (!weekend && h >= config.work_window_start_h &&
               h <= config.work_window_end_h) {
      work_votes.push_back(Vote{c.location, c.poi, day});
    }
  }

  // Routine beats serendipity: keep only votes at venues the user hit on
  // several distinct days; fall back to everything when nothing repeats.
  auto repeat_filter = [&](const std::vector<Vote>& votes) {
    std::map<trace::PoiId, std::set<std::size_t>> days;
    for (const Vote& v : votes) days[v.venue].insert(v.day);
    std::vector<geo::LatLon> kept;
    for (const Vote& v : votes) {
      if (days[v.venue].size() >= config.min_repeat_days) {
        kept.push_back(v.where);
      }
    }
    if (kept.empty()) {
      for (const Vote& v : votes) kept.push_back(v.where);
    }
    return kept;
  };

  InferredAnchors anchors;
  anchors.home = anchor_from(repeat_filter(home_votes), config);
  anchors.work = anchor_from(repeat_filter(work_votes), config);
  return anchors;
}

}  // namespace geovalid::recover
