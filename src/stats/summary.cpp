#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace geovalid::stats {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;

  RunningStats rs;
  for (double x : xs) rs.add(x);

  s.count = xs.size();
  s.min = rs.min();
  s.max = rs.max();
  s.mean = rs.mean();
  s.variance = rs.variance();
  s.stddev = rs.stddev();
  s.sum = rs.mean() * static_cast<double>(xs.size());
  s.median = quantile(xs, 0.5);
  return s;
}

double quantile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: p not in [0,1]");

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> ps) {
  if (xs.empty()) throw std::invalid_argument("quantiles: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("quantiles: p not in [0,1]");
    }
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    out.push_back(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
  }
  return out;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace geovalid::stats
