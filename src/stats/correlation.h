// Pearson correlation (Table 2) and simple linear regression in log space
// (used by the power-law fits of Figure 7).
#pragma once

#include <span>

namespace geovalid::stats {

/// Pearson's product-moment correlation of two equal-length samples,
/// in [-1, 1]. Returns 0 when either sample is constant (the paper's
/// correlations are undefined there; 0 is the conventional sentinel).
/// Throws std::invalid_argument on length mismatch or n < 2.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Result of an ordinary least-squares line fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// OLS fit. Throws std::invalid_argument on length mismatch or n < 2.
[[nodiscard]] LinearFit least_squares(std::span<const double> xs,
                                      std::span<const double> ys);

/// Spearman rank correlation — a robustness companion to `pearson` used by
/// the incentive-analysis ablation (ties get average ranks).
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

}  // namespace geovalid::stats
