// Deterministic random number generation.
//
// Every stochastic component in geovalid draws from an explicitly seeded Rng
// so that dataset generation, model fitting and simulations are reproducible
// run-to-run (a requirement for the bench harnesses).
#pragma once

#include <cstdint>
#include <random>

namespace geovalid::stats {

/// A seeded 64-bit Mersenne Twister with convenience draws.
///
/// The class is intentionally a thin wrapper: all distribution logic lives in
/// samplers.h so it can be tested against closed-form moments.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi). Requires hi >= lo.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires hi >= lo.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Standard normal draw.
  [[nodiscard]] double normal() { return normal(0.0, 1.0); }

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma);

  /// Exponential draw with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Poisson draw with the given mean (>= 0).
  [[nodiscard]] std::uint64_t poisson(double mean);

  /// Derives an independent child generator; `stream` distinguishes children
  /// of the same parent. Used to give each synthetic user its own stream so
  /// user ordering does not perturb other users' data.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  /// Access to the raw engine for std:: distributions not wrapped here.
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace geovalid::stats
