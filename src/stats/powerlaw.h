// Power-law relation fitting: y = k * x^gamma, fit by ordinary least squares
// in log-log space.
//
// Section 6.1 fits movement time against movement distance with
// t = k * d^(1 - rho); this is that estimator (gamma = 1 - rho).
#pragma once

#include <span>

namespace geovalid::stats {

/// y = k * x^gamma.
struct PowerLawFit {
  double k = 0.0;
  double gamma = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;  ///< points actually used (positive x and y only)
};

/// Fits y = k x^gamma by OLS on (ln x, ln y). Pairs with non-positive x or y
/// are skipped (they have no logarithm); `n` reports how many survived.
/// Throws std::invalid_argument when fewer than 2 usable pairs remain.
[[nodiscard]] PowerLawFit fit_power_law(std::span<const double> xs,
                                        std::span<const double> ys);

/// Evaluates the fitted relation at x.
[[nodiscard]] double power_law_eval(const PowerLawFit& fit, double x);

}  // namespace geovalid::stats
