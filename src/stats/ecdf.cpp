#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace geovalid::stats {

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  for (double x : sorted_) {
    if (std::isnan(x)) throw std::invalid_argument("Ecdf: NaN sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double p) const {
  if (sorted_.empty()) throw std::logic_error("Ecdf::inverse: empty ECDF");
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("Ecdf::inverse: p not in (0,1]");
  }
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank, sorted_.size()) - 1];
}

std::vector<double> Ecdf::evaluate(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(at(x));
  return out;
}

CurveSeries sample_cdf_percent(const std::string& name, const Ecdf& ecdf,
                               std::span<const double> grid) {
  CurveSeries s;
  s.name = name;
  s.x.assign(grid.begin(), grid.end());
  s.y.reserve(grid.size());
  for (double x : grid) s.y.push_back(100.0 * ecdf.at(x));
  return s;
}

std::vector<double> log_grid(double lo, double hi, std::size_t points) {
  if (!(lo > 0.0) || !(hi > lo) || points < 2) {
    throw std::invalid_argument("log_grid: need 0 < lo < hi, points >= 2");
  }
  std::vector<double> grid;
  grid.reserve(points);
  const double step = std::log(hi / lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    grid.push_back(lo * std::exp(step * static_cast<double>(i)));
  }
  return grid;
}

std::vector<double> linear_grid(double lo, double hi, std::size_t points) {
  if (!(hi >= lo) || points < 2) {
    throw std::invalid_argument("linear_grid: need hi >= lo, points >= 2");
  }
  std::vector<double> grid;
  grid.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    grid.push_back(lo + step * static_cast<double>(i));
  }
  return grid;
}

}  // namespace geovalid::stats
