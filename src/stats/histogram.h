// Linear and logarithmic histograms, plus PDF estimation on log-spaced bins
// (the representation behind the paper's Figure 7 PDFs and the Figure 4
// category breakdown).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace geovalid::stats {

/// One histogram bin: [lo, hi) with a count.
struct Bin {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 0;
};

/// Fixed-width linear histogram over [lo, hi). Out-of-range samples are
/// counted in underflow/overflow rather than dropped silently.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] Bin bin(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }

  /// Fraction of all added samples falling in bin i (including under/over
  /// flow in the denominator).
  [[nodiscard]] double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Log-spaced histogram over [lo, hi), lo > 0. Samples <= 0 count as
/// underflow.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] Bin bin(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }

 private:
  double log_lo_;
  double log_step_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// A point of an estimated probability density function.
struct PdfPoint {
  double x = 0.0;    ///< bin geometric center
  double density = 0.0;  ///< probability mass / bin width
};

/// Estimates a PDF on log-spaced bins: density_i = (n_i / N) / width_i,
/// evaluated at the geometric center of each non-empty bin. This is the
/// standard way the Levy Walk literature (and Figure 7) plots heavy-tailed
/// PDFs. Empty input or non-positive values yield an empty result.
[[nodiscard]] std::vector<PdfPoint> log_binned_pdf(std::span<const double> xs,
                                                   double lo, double hi,
                                                   std::size_t bins);

/// A labelled categorical count, e.g. missing checkins per POI category
/// (Figure 4).
struct CategoryCount {
  std::string label;
  std::size_t count = 0;
  double percent = 0.0;  ///< of the sum over all categories
};

/// Converts raw counts into CategoryCounts with percentages.
[[nodiscard]] std::vector<CategoryCount> to_percentages(
    std::span<const std::pair<std::string, std::size_t>> counts);

}  // namespace geovalid::stats
