// Pareto (power-law tail) distribution: density, sampling support constants
// and maximum-likelihood fitting.
//
// The Levy Walk model of Section 6.1 fits movement distance and pause time
// to a Pareto distribution; this header is that fit.
#pragma once

#include <cstddef>
#include <span>

namespace geovalid::stats {

/// Pareto(x_min, alpha): pdf(x) = alpha * x_min^alpha / x^(alpha+1),
/// x >= x_min, alpha > 0.
struct ParetoParams {
  double x_min = 1.0;
  double alpha = 1.0;
};

/// Density at x (0 when x < x_min).
[[nodiscard]] double pareto_pdf(const ParetoParams& p, double x);

/// CDF at x (0 when x < x_min).
[[nodiscard]] double pareto_cdf(const ParetoParams& p, double x);

/// Quantile function; u in [0, 1). Throws std::invalid_argument otherwise.
[[nodiscard]] double pareto_quantile(const ParetoParams& p, double u);

/// Mean of the distribution; +inf when alpha <= 1.
[[nodiscard]] double pareto_mean(const ParetoParams& p);

/// Result of a maximum-likelihood Pareto fit.
struct ParetoFit {
  ParetoParams params;
  std::size_t tail_n = 0;   ///< samples >= x_min actually used by the fit
  double ks_stat = 1.0;     ///< KS distance between tail ECDF and the fit
  double log_likelihood = 0.0;
};

/// Fits alpha by MLE for a *given* x_min, using only samples >= x_min:
///   alpha = n / sum(ln(x_i / x_min)).
/// Throws std::invalid_argument when fewer than 2 samples lie in the tail
/// or x_min <= 0.
[[nodiscard]] ParetoFit fit_pareto(std::span<const double> xs, double x_min);

/// Clauset-style fit: scans candidate x_min values over the sample's support
/// and returns the fit minimizing the KS distance. `grid` caps the number of
/// candidates scanned (log-spaced over the positive sample range).
[[nodiscard]] ParetoFit fit_pareto_auto(std::span<const double> xs,
                                        std::size_t grid = 32);

}  // namespace geovalid::stats
