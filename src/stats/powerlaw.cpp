#include "stats/powerlaw.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/correlation.h"

namespace geovalid::stats {

PowerLawFit fit_power_law(std::span<const double> xs,
                          std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_power_law: length mismatch");
  }
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  if (lx.size() < 2) {
    throw std::invalid_argument("fit_power_law: fewer than 2 usable pairs");
  }
  const LinearFit line = least_squares(lx, ly);

  PowerLawFit fit;
  fit.gamma = line.slope;
  fit.k = std::exp(line.intercept);
  fit.r_squared = line.r_squared;
  fit.n = lx.size();
  return fit;
}

double power_law_eval(const PowerLawFit& fit, double x) {
  return fit.k * std::pow(x, fit.gamma);
}

}  // namespace geovalid::stats
