#include "stats/histogram.h"

#include <cmath>
#include <stdexcept>

namespace geovalid::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("LinearHistogram: need hi > lo and bins > 0");
  }
}

void LinearHistogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi
  ++counts_[idx];
}

void LinearHistogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

Bin LinearHistogram::bin(std::size_t i) const {
  return Bin{lo_ + width_ * static_cast<double>(i),
             lo_ + width_ * static_cast<double>(i + 1), counts_.at(i)};
}

double LinearHistogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : counts_(bins, 0) {
  if (!(lo > 0.0) || !(hi > lo) || bins == 0) {
    throw std::invalid_argument(
        "LogHistogram: need 0 < lo < hi and bins > 0");
  }
  log_lo_ = std::log(lo);
  log_step_ = (std::log(hi) - log_lo_) / static_cast<double>(bins);
}

void LogHistogram::add(double x) {
  ++total_;
  if (!(x > 0.0) || std::log(x) < log_lo_) {
    ++underflow_;
    return;
  }
  const double pos = (std::log(x) - log_lo_) / log_step_;
  if (pos >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(pos)];
}

void LogHistogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

Bin LogHistogram::bin(std::size_t i) const {
  const double lo = std::exp(log_lo_ + log_step_ * static_cast<double>(i));
  const double hi = std::exp(log_lo_ + log_step_ * static_cast<double>(i + 1));
  return Bin{lo, hi, counts_.at(i)};
}

std::vector<PdfPoint> log_binned_pdf(std::span<const double> xs, double lo,
                                     double hi, std::size_t bins) {
  LogHistogram hist(lo, hi, bins);
  std::size_t in_range = 0;
  for (double x : xs) {
    hist.add(x);
  }
  in_range = hist.total() - hist.underflow() - hist.overflow();
  std::vector<PdfPoint> pdf;
  if (in_range == 0) return pdf;

  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    const Bin b = hist.bin(i);
    if (b.count == 0) continue;
    const double width = b.hi - b.lo;
    const double mass =
        static_cast<double>(b.count) / static_cast<double>(in_range);
    pdf.push_back(PdfPoint{std::sqrt(b.lo * b.hi), mass / width});
  }
  return pdf;
}

std::vector<CategoryCount> to_percentages(
    std::span<const std::pair<std::string, std::size_t>> counts) {
  std::size_t total = 0;
  for (const auto& [label, n] : counts) total += n;

  std::vector<CategoryCount> out;
  out.reserve(counts.size());
  for (const auto& [label, n] : counts) {
    const double pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(n) / static_cast<double>(total);
    out.push_back(CategoryCount{label, n, pct});
  }
  return out;
}

}  // namespace geovalid::stats
