#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace geovalid::stats {
namespace {

void check_paired(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("correlation: sample length mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("correlation: need at least 2 samples");
  }
}

/// Ranks with average rank for ties.
std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double pearson(std::span<const double> xs, std::span<const double> ys) {
  check_paired(xs, ys);
  const auto n = static_cast<double>(xs.size());

  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;

  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit least_squares(std::span<const double> xs,
                        std::span<const double> ys) {
  check_paired(xs, ys);
  const auto n = static_cast<double>(xs.size());

  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;

  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    // Vertical data: slope undefined; report a flat line through the mean.
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  check_paired(xs, ys);
  const auto rx = average_ranks(xs);
  const auto ry = average_ranks(ys);
  return pearson(rx, ry);
}

}  // namespace geovalid::stats
