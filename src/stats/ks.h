// Two-sample Kolmogorov–Smirnov distance.
//
// §4.1 validates honest checkins by showing distribution agreement between
// datasets; the KS distance is the quantitative form of "the curves match".
#pragma once

#include <span>

namespace geovalid::stats {

/// Two-sample KS statistic: sup_x |F1(x) - F2(x)|, in [0, 1].
/// Throws std::invalid_argument when either sample is empty.
[[nodiscard]] double ks_two_sample(std::span<const double> a,
                                   std::span<const double> b);

/// Asymptotic p-value for the two-sample KS statistic (Smirnov's formula).
/// Small p means the samples likely come from different distributions.
[[nodiscard]] double ks_p_value(double ks_stat, std::size_t n1, std::size_t n2);

}  // namespace geovalid::stats
