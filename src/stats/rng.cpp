#include "stats/rng.h"

#include <algorithm>
#include <stdexcept>

namespace geovalid::stats {
namespace {

/// SplitMix64 step — the standard way to derive decorrelated child seeds.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform: hi < lo");
  if (hi == lo) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(clamped)(engine_);
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::normal: sigma < 0");
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

double Rng::exponential(double mean) {
  if (!(mean > 0.0)) throw std::invalid_argument("Rng::exponential: mean <= 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0.0) return 0;
  return std::poisson_distribution<std::uint64_t>(mean)(engine_);
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the stream id through SplitMix64 twice so consecutive stream ids
  // yield unrelated seeds.
  std::uint64_t state = stream ^ 0xA076'1D64'78BD'642FULL;
  std::uint64_t mixed = splitmix64(state);
  // Also mix in entropy drawn deterministically from a copy of the engine
  // state via its next output.
  std::mt19937_64 copy = engine_;
  std::uint64_t base = copy();
  state = base ^ mixed;
  return Rng(splitmix64(state));
}

}  // namespace geovalid::stats
