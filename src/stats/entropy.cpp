#include "stats/entropy.h"

#include <cmath>
#include <stdexcept>

namespace geovalid::stats {

double entropy_bits(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;

  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double entropy_bits_p(std::span<const double> probabilities) {
  double total = 0.0;
  for (double p : probabilities) {
    if (p < 0.0) throw std::invalid_argument("entropy: negative probability");
    total += p;
  }
  if (total <= 0.0) return 0.0;

  double h = 0.0;
  for (double p : probabilities) {
    if (p <= 0.0) continue;
    const double q = p / total;
    h -= q * std::log2(q);
  }
  return h;
}

double normalized_entropy(std::span<const std::size_t> counts) {
  std::size_t nonzero = 0;
  for (std::size_t c : counts) {
    if (c > 0) ++nonzero;
  }
  if (nonzero < 2) return 0.0;
  return entropy_bits(counts) / std::log2(static_cast<double>(nonzero));
}

}  // namespace geovalid::stats
