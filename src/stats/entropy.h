// Shannon entropy of categorical/visit distributions.
//
// "POI entropy" is one of the mobility metrics the paper uses when
// validating the honest-checkin set against the baseline dataset (§4.1).
#pragma once

#include <cstddef>
#include <span>

namespace geovalid::stats {

/// Shannon entropy (bits) of the distribution implied by non-negative
/// `counts`. Zero-count entries contribute nothing; all-zero input yields 0.
[[nodiscard]] double entropy_bits(std::span<const std::size_t> counts);

/// Entropy of an explicit probability vector (entries must be >= 0; they are
/// normalized internally so slightly unnormalized input is tolerated).
[[nodiscard]] double entropy_bits_p(std::span<const double> probabilities);

/// Normalized entropy in [0, 1]: entropy / log2(#nonzero categories).
/// Returns 0 when there are fewer than 2 non-zero categories.
[[nodiscard]] double normalized_entropy(std::span<const std::size_t> counts);

}  // namespace geovalid::stats
