#include "stats/pareto.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/ecdf.h"

namespace geovalid::stats {

double pareto_pdf(const ParetoParams& p, double x) {
  if (x < p.x_min) return 0.0;
  return p.alpha * std::pow(p.x_min, p.alpha) / std::pow(x, p.alpha + 1.0);
}

double pareto_cdf(const ParetoParams& p, double x) {
  if (x < p.x_min) return 0.0;
  return 1.0 - std::pow(p.x_min / x, p.alpha);
}

double pareto_quantile(const ParetoParams& p, double u) {
  if (u < 0.0 || u >= 1.0) {
    throw std::invalid_argument("pareto_quantile: u not in [0,1)");
  }
  return p.x_min * std::pow(1.0 - u, -1.0 / p.alpha);
}

double pareto_mean(const ParetoParams& p) {
  if (p.alpha <= 1.0) return std::numeric_limits<double>::infinity();
  return p.alpha * p.x_min / (p.alpha - 1.0);
}

namespace {

/// KS distance between the ECDF of `tail` (sorted ascending) and the fitted
/// Pareto CDF.
double ks_distance(std::span<const double> sorted_tail,
                   const ParetoParams& params) {
  const auto n = static_cast<double>(sorted_tail.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sorted_tail.size(); ++i) {
    const double model = pareto_cdf(params, sorted_tail[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    worst = std::max(worst, std::max(std::fabs(model - lo),
                                     std::fabs(model - hi)));
  }
  return worst;
}

}  // namespace

ParetoFit fit_pareto(std::span<const double> xs, double x_min) {
  if (!(x_min > 0.0)) {
    throw std::invalid_argument("fit_pareto: x_min must be positive");
  }
  std::vector<double> tail;
  tail.reserve(xs.size());
  for (double x : xs) {
    if (x >= x_min) tail.push_back(x);
  }
  if (tail.size() < 2) {
    throw std::invalid_argument("fit_pareto: fewer than 2 tail samples");
  }
  std::sort(tail.begin(), tail.end());

  double log_sum = 0.0;
  for (double x : tail) log_sum += std::log(x / x_min);
  if (log_sum <= 0.0) {
    // All tail samples equal x_min: degenerate, report a very steep tail.
    log_sum = std::numeric_limits<double>::min();
  }
  const auto n = static_cast<double>(tail.size());

  ParetoFit fit;
  fit.params.x_min = x_min;
  fit.params.alpha = n / log_sum;
  fit.tail_n = tail.size();
  fit.ks_stat = ks_distance(tail, fit.params);
  fit.log_likelihood = n * std::log(fit.params.alpha) +
                       n * fit.params.alpha * std::log(x_min) -
                       (fit.params.alpha + 1.0) * (log_sum + n * std::log(x_min));
  return fit;
}

ParetoFit fit_pareto_auto(std::span<const double> xs, std::size_t grid) {
  std::vector<double> positive;
  positive.reserve(xs.size());
  for (double x : xs) {
    if (x > 0.0) positive.push_back(x);
  }
  if (positive.size() < 8) {
    throw std::invalid_argument("fit_pareto_auto: need at least 8 positive samples");
  }
  std::sort(positive.begin(), positive.end());

  // Candidate x_min values: log-spaced between min and the 90th percentile
  // (leaving at least 10% of mass in the tail keeps the alpha estimate sane).
  const double lo = positive.front();
  const double hi = positive[positive.size() * 9 / 10];
  std::vector<double> candidates;
  if (hi > lo && grid >= 2) {
    candidates = log_grid(lo, hi, grid);
  } else {
    candidates = {lo};
  }

  ParetoFit best;
  best.ks_stat = std::numeric_limits<double>::infinity();
  for (double x_min : candidates) {
    // Require a minimum tail size so KS over a handful of points cannot win.
    std::size_t tail_n = positive.size() -
        static_cast<std::size_t>(std::lower_bound(positive.begin(),
                                                  positive.end(), x_min) -
                                 positive.begin());
    if (tail_n < std::max<std::size_t>(8, positive.size() / 20)) continue;
    const ParetoFit fit = fit_pareto(positive, x_min);
    if (fit.ks_stat < best.ks_stat) best = fit;
  }
  if (!std::isfinite(best.ks_stat)) {
    // All candidates were rejected (tiny sample): fall back to full-sample fit.
    best = fit_pareto(positive, lo);
  }
  return best;
}

}  // namespace geovalid::stats
