// Basic descriptive statistics over samples of doubles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace geovalid::stats {

/// Moments and order statistics of one sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1 denominator); 0 when count < 2
  double stddev = 0.0;
  double median = 0.0;
  double sum = 0.0;
};

/// Computes a Summary of `xs`. An empty span yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// p-th quantile (0 <= p <= 1) with linear interpolation between order
/// statistics (type-7, the numpy default). Throws std::invalid_argument on
/// an empty sample or p outside [0, 1].
[[nodiscard]] double quantile(std::span<const double> xs, double p);

/// Convenience: several quantiles in one sort.
[[nodiscard]] std::vector<double> quantiles(std::span<const double> xs,
                                            std::span<const double> ps);

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Streaming mean/variance accumulator (Welford). Suitable for the
/// million-point GPS traces where materializing a copy is wasteful.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace geovalid::stats
