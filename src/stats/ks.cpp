#include "stats/ks.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace geovalid::stats {

double ks_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_two_sample: empty sample");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double worst = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    worst = std::max(worst, std::fabs(fa - fb));
  }
  return worst;
}

double ks_p_value(double ks_stat, std::size_t n1, std::size_t n2) {
  const double n1d = static_cast<double>(n1);
  const double n2d = static_cast<double>(n2);
  const double en = std::sqrt(n1d * n2d / (n1d + n2d));
  const double lambda = (en + 0.12 + 0.11 / en) * ks_stat;

  // Kolmogorov distribution tail sum; converges fast for lambda > 0.3.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * lambda * lambda *
                                 static_cast<double>(j) *
                                 static_cast<double>(j));
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace geovalid::stats
