// Distribution samplers built on Rng.
//
// These cover the generative needs of the synthetic study (Zipf-ranked POI
// popularity, heavy-tailed trip lengths, bursty inter-arrival gaps) and the
// Levy Walk trace generator (truncated Pareto flights and pauses).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/pareto.h"
#include "stats/rng.h"

namespace geovalid::stats {

/// Draws from Pareto(x_min, alpha) by inverse-transform sampling.
[[nodiscard]] double sample_pareto(Rng& rng, const ParetoParams& params);

/// Draws from Pareto truncated to [x_min, x_max] (inverse transform on the
/// renormalized CDF). Requires x_max > x_min.
[[nodiscard]] double sample_truncated_pareto(Rng& rng,
                                             const ParetoParams& params,
                                             double x_max);

/// Zipf distribution over ranks {0, ..., n-1}: P(rank k) proportional to
/// 1/(k+1)^s. Precomputes the CDF once; draws are O(log n).
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  ///< cumulative masses, back() == 1
};

/// Weighted discrete sampler over arbitrary non-negative weights.
class DiscreteSampler {
 public:
  /// Requires at least one strictly positive weight.
  explicit DiscreteSampler(std::vector<double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
  std::vector<double> weights_;
};

/// Normal draw truncated to [lo, hi] by rejection (falls back to clamping
/// after a bounded number of rejections, which only triggers when the window
/// is many sigma away from the mean).
[[nodiscard]] double sample_truncated_normal(Rng& rng, double mean,
                                             double sigma, double lo,
                                             double hi);

/// Log-normal draw parameterized by the *median* and the sigma of the
/// underlying normal — more intuitive for dwell times than mu/sigma.
[[nodiscard]] double sample_lognormal_median(Rng& rng, double median,
                                             double sigma);

}  // namespace geovalid::stats
