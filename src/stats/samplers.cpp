#include "stats/samplers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace geovalid::stats {

double sample_pareto(Rng& rng, const ParetoParams& params) {
  return pareto_quantile(params, rng.uniform());
}

double sample_truncated_pareto(Rng& rng, const ParetoParams& params,
                               double x_max) {
  if (!(x_max > params.x_min)) {
    throw std::invalid_argument("sample_truncated_pareto: x_max <= x_min");
  }
  const double cdf_max = pareto_cdf(params, x_max);
  const double u = rng.uniform() * cdf_max;
  return pareto_quantile(params, u);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s < 0");
  cdf_.reserve(n);
  double cum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    cum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(cum);
  }
  for (double& c : cdf_) c /= cum;
  cdf_.back() = 1.0;  // exact despite rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  const double prev = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - prev;
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights)
    : weights_(std::move(weights)) {
  cdf_.reserve(weights_.size());
  for (double w : weights_) {
    if (w < 0.0) throw std::invalid_argument("DiscreteSampler: negative weight");
    total_ += w;
    cdf_.push_back(total_);
  }
  if (total_ <= 0.0) {
    throw std::invalid_argument("DiscreteSampler: all weights zero");
  }
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.uniform() * total_;
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return std::min(static_cast<std::size_t>(it - cdf_.begin()),
                  cdf_.size() - 1);
}

double DiscreteSampler::probability(std::size_t i) const {
  if (i >= weights_.size()) return 0.0;
  return weights_[i] / total_;
}

double sample_truncated_normal(Rng& rng, double mean, double sigma, double lo,
                               double hi) {
  if (hi < lo) throw std::invalid_argument("sample_truncated_normal: hi < lo");
  if (sigma <= 0.0) return std::clamp(mean, lo, hi);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = rng.normal(mean, sigma);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

double sample_lognormal_median(Rng& rng, double median, double sigma) {
  if (!(median > 0.0)) {
    throw std::invalid_argument("sample_lognormal_median: median <= 0");
  }
  return median * std::exp(rng.normal(0.0, sigma));
}

}  // namespace geovalid::stats
