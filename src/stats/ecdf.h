// Empirical cumulative distribution functions.
//
// Every CDF figure in the paper (Figures 2, 3, 5, 6, 8) is an ECDF of some
// derived quantity; this class is the shared representation the bench
// harnesses print.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace geovalid::stats {

/// An immutable empirical CDF built from a sample.
class Ecdf {
 public:
  Ecdf() = default;

  /// Builds the ECDF of `xs` (copied and sorted; NaNs rejected with
  /// std::invalid_argument).
  explicit Ecdf(std::span<const double> xs);

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// F(x) = fraction of samples <= x. 0 for empty ECDFs.
  [[nodiscard]] double at(double x) const;

  /// Generalized inverse: smallest sample value v with F(v) >= p,
  /// p in (0, 1]. Throws on empty ECDF or p outside (0, 1].
  [[nodiscard]] double inverse(double p) const;

  /// The sorted sample (support points of the step function).
  [[nodiscard]] std::span<const double> sorted_values() const {
    return sorted_;
  }

  /// Evaluates the ECDF at each of `xs` (convenience for plotting grids).
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> xs) const;

 private:
  std::vector<double> sorted_;
};

/// A named series sampled on a grid — the printable form of one curve in a
/// paper figure.
struct CurveSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Samples `ecdf` on `grid` and labels the result, percent scale (0..100)
/// to match the paper's axes.
[[nodiscard]] CurveSeries sample_cdf_percent(const std::string& name,
                                             const Ecdf& ecdf,
                                             std::span<const double> grid);

/// Builds a logarithmically spaced grid [lo, hi] with `points` entries.
/// Requires 0 < lo < hi and points >= 2.
[[nodiscard]] std::vector<double> log_grid(double lo, double hi,
                                           std::size_t points);

/// Builds a linearly spaced grid [lo, hi] with `points` entries.
[[nodiscard]] std::vector<double> linear_grid(double lo, double hi,
                                              std::size_t points);

}  // namespace geovalid::stats
