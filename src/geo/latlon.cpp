#include "geo/latlon.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace geovalid::geo {

bool is_valid(const LatLon& p) {
  if (std::isnan(p.lat_deg) || std::isnan(p.lon_deg)) return false;
  return std::fabs(p.lat_deg) <= 90.0 && std::fabs(p.lon_deg) <= 180.0;
}

double normalize_lon_deg(double lon_deg) {
  double lon = std::fmod(lon_deg, 360.0);
  if (lon <= -180.0) lon += 360.0;
  if (lon > 180.0) lon -= 360.0;
  return lon;
}

std::string to_string(const LatLon& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f,%.6f", p.lat_deg, p.lon_deg);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const LatLon& p) {
  return os << to_string(p);
}

}  // namespace geovalid::geo
