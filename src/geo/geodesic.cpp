#include "geo/geodesic.h"

#include <algorithm>
#include <cmath>

namespace geovalid::geo {
namespace {

constexpr double kPi = 3.14159265358979323846;

constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

}  // namespace

double distance_m(const LatLon& a, const LatLon& b) {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = deg_to_rad(b.lat_deg - a.lat_deg);
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);

  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  // Clamp guards against h slightly exceeding 1 from floating-point error
  // on antipodal pairs.
  const double c = 2.0 * std::asin(std::sqrt(std::clamp(h, 0.0, 1.0)));
  return kEarthRadiusMeters * c;
}

double fast_distance_m(const LatLon& a, const LatLon& b) {
  const double mean_lat = deg_to_rad((a.lat_deg + b.lat_deg) / 2.0);
  const double dx = deg_to_rad(b.lon_deg - a.lon_deg) * std::cos(mean_lat);
  const double dy = deg_to_rad(b.lat_deg - a.lat_deg);
  return kEarthRadiusMeters * std::sqrt(dx * dx + dy * dy);
}

double bound_distance_m(const LatLon& a, const LatLon& b) {
  // Two independent lower bounds on the great-circle distance
  // d = 2R asin(sqrt(h)), h = sin^2(dlat/2) + cos(lat1) cos(lat2)
  // sin^2(dlon/2):
  //
  //   meridian: h >= sin^2(dlat/2), so d >= R * |dlat|  (exact when the
  //             points share a longitude);
  //   parallel: sqrt(h) >= min(cos lat1, cos lat2) * sin(dlon/2) and
  //             sin(x) >= (2/pi) x on [0, pi/2], so
  //             d >= (2/pi) R min(cos lat1, cos lat2) |dlon|.
  //
  // The max of the two is still a lower bound. The 1 - 1e-9 margin keeps
  // floating-point rounding from nudging the meridian bound past the
  // haversine on pure latitude-delta pairs, where the two are equal in
  // exact arithmetic.
  const double dlat = std::abs(deg_to_rad(b.lat_deg - a.lat_deg));
  double dlon_deg = std::abs(b.lon_deg - a.lon_deg);
  if (dlon_deg > 180.0) dlon_deg = 360.0 - dlon_deg;
  const double dlon = deg_to_rad(dlon_deg);
  const double cos_min =
      std::max(0.0, std::min(std::cos(deg_to_rad(a.lat_deg)),
                             std::cos(deg_to_rad(b.lat_deg))));
  const double meridian = kEarthRadiusMeters * dlat;
  const double parallel = kEarthRadiusMeters * (2.0 / kPi) * cos_min * dlon;
  return std::max(meridian, parallel) * (1.0 - 1e-9);
}

double initial_bearing_deg(const LatLon& a, const LatLon& b) {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);

  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  const double bearing = rad_to_deg(std::atan2(y, x));
  return std::fmod(bearing + 360.0, 360.0);
}

LatLon destination(const LatLon& origin, double bearing_deg,
                   double distance_meters) {
  const double delta = distance_meters / kEarthRadiusMeters;
  const double theta = deg_to_rad(bearing_deg);
  const double lat1 = deg_to_rad(origin.lat_deg);
  const double lon1 = deg_to_rad(origin.lon_deg);

  const double lat2 =
      std::asin(std::sin(lat1) * std::cos(delta) +
                std::cos(lat1) * std::sin(delta) * std::cos(theta));
  const double lon2 =
      lon1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(lat1),
                        std::cos(delta) - std::sin(lat1) * std::sin(lat2));
  return LatLon{rad_to_deg(lat2), normalize_lon_deg(rad_to_deg(lon2))};
}

double speed_mps(const LatLon& a, const LatLon& b, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return distance_m(a, b) / seconds;
}

}  // namespace geovalid::geo
