// Geographic bounding boxes, used for spatial pre-filtering in the
// checkin-to-visit matcher and for describing synthetic city extents.
#pragma once

#include <optional>

#include "geo/latlon.h"

namespace geovalid::geo {

/// An axis-aligned lat/lon rectangle. Invariant (enforced by extend/contains
/// semantics, not by construction): min <= max componentwise once any point
/// has been added. Does not handle antimeridian crossing — the paper's data
/// is city-scale.
struct BBox {
  double min_lat_deg = 0.0;
  double min_lon_deg = 0.0;
  double max_lat_deg = 0.0;
  double max_lon_deg = 0.0;

  friend constexpr auto operator<=>(const BBox&, const BBox&) = default;
};

/// Smallest box containing all points of `points`; nullopt when empty.
template <typename Range>
[[nodiscard]] std::optional<BBox> bounding_box(const Range& points) {
  std::optional<BBox> box;
  for (const LatLon& p : points) {
    if (!box) {
      box = BBox{p.lat_deg, p.lon_deg, p.lat_deg, p.lon_deg};
      continue;
    }
    if (p.lat_deg < box->min_lat_deg) box->min_lat_deg = p.lat_deg;
    if (p.lon_deg < box->min_lon_deg) box->min_lon_deg = p.lon_deg;
    if (p.lat_deg > box->max_lat_deg) box->max_lat_deg = p.lat_deg;
    if (p.lon_deg > box->max_lon_deg) box->max_lon_deg = p.lon_deg;
  }
  return box;
}

/// True when `p` lies inside `box` (inclusive on all edges).
[[nodiscard]] bool contains(const BBox& box, const LatLon& p);

/// Expands a box by `margin_m` metres in every direction. The longitude
/// margin is scaled by the box's central latitude.
[[nodiscard]] BBox expanded(const BBox& box, double margin_meters);

/// Geographic center of the box.
[[nodiscard]] LatLon center(const BBox& box);

/// Diagonal length of the box, metres. A quick "how big is this dataset"
/// measure used in dataset summaries.
[[nodiscard]] double diagonal_m(const BBox& box);

}  // namespace geovalid::geo
