#include "geo/projection.h"

#include <cmath>
#include <stdexcept>

namespace geovalid::geo {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kMetersPerDegree = kEarthRadiusMeters * kPi / 180.0;

}  // namespace

double plane_distance_m(const PlanePoint& a, const PlanePoint& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

LocalProjection::LocalProjection(const LatLon& origin) : origin_(origin) {
  if (!is_valid(origin)) {
    throw std::invalid_argument("LocalProjection: invalid origin coordinate");
  }
  cos_origin_lat_ = std::cos(origin.lat_deg * kPi / 180.0);
  meters_per_deg_lat_ = kMetersPerDegree;
  meters_per_deg_lon_ = kMetersPerDegree * cos_origin_lat_;
}

PlanePoint LocalProjection::to_plane(const LatLon& p) const {
  return PlanePoint{
      (p.lon_deg - origin_.lon_deg) * meters_per_deg_lon_,
      (p.lat_deg - origin_.lat_deg) * meters_per_deg_lat_,
  };
}

LatLon LocalProjection::to_geo(const PlanePoint& p) const {
  return LatLon{
      origin_.lat_deg + p.y_m / meters_per_deg_lat_,
      origin_.lon_deg + p.x_m / meters_per_deg_lon_,
  };
}

}  // namespace geovalid::geo
