#include "geo/bbox.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesic.h"

namespace geovalid::geo {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kMetersPerDegree = kEarthRadiusMeters * kPi / 180.0;

}  // namespace

bool contains(const BBox& box, const LatLon& p) {
  return p.lat_deg >= box.min_lat_deg && p.lat_deg <= box.max_lat_deg &&
         p.lon_deg >= box.min_lon_deg && p.lon_deg <= box.max_lon_deg;
}

BBox expanded(const BBox& box, double margin_meters) {
  const double dlat = margin_meters / kMetersPerDegree;
  const double mid_lat = (box.min_lat_deg + box.max_lat_deg) / 2.0;
  const double cos_lat =
      std::max(0.01, std::cos(mid_lat * kPi / 180.0));  // avoid pole blowup
  const double dlon = margin_meters / (kMetersPerDegree * cos_lat);
  return BBox{box.min_lat_deg - dlat, box.min_lon_deg - dlon,
              box.max_lat_deg + dlat, box.max_lon_deg + dlon};
}

LatLon center(const BBox& box) {
  return LatLon{(box.min_lat_deg + box.max_lat_deg) / 2.0,
                (box.min_lon_deg + box.max_lon_deg) / 2.0};
}

double diagonal_m(const BBox& box) {
  return distance_m(LatLon{box.min_lat_deg, box.min_lon_deg},
                    LatLon{box.max_lat_deg, box.max_lon_deg});
}

}  // namespace geovalid::geo
