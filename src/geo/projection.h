// Local tangent-plane projection.
//
// The MANET simulator and the Levy Walk generator work in flat metre
// coordinates; this projection maps city-scale geographic data into a local
// east/north plane anchored at a reference point, and back.
#pragma once

#include "geo/latlon.h"

namespace geovalid::geo {

/// A point in a local east/north tangent plane, metres.
struct PlanePoint {
  double x_m = 0.0;  ///< metres east of the projection origin
  double y_m = 0.0;  ///< metres north of the projection origin

  friend constexpr auto operator<=>(const PlanePoint&,
                                    const PlanePoint&) = default;
};

/// Euclidean distance between two plane points, metres.
[[nodiscard]] double plane_distance_m(const PlanePoint& a, const PlanePoint& b);

/// Equirectangular projection anchored at a reference coordinate.
///
/// Error vs. true geodesic distance stays below ~0.3% out to 100 km from the
/// origin, which is ample for the paper's 100 km x 100 km MANET arena.
class LocalProjection {
 public:
  /// Creates a projection anchored at `origin` (must satisfy is_valid()).
  explicit LocalProjection(const LatLon& origin);

  [[nodiscard]] const LatLon& origin() const { return origin_; }

  /// Geographic -> plane.
  [[nodiscard]] PlanePoint to_plane(const LatLon& p) const;

  /// Plane -> geographic (inverse of to_plane up to floating-point error).
  [[nodiscard]] LatLon to_geo(const PlanePoint& p) const;

 private:
  LatLon origin_;
  double cos_origin_lat_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace geovalid::geo
