// Geographic coordinate types used throughout geovalid.
//
// All angles are stored in decimal degrees (WGS-84 datum). The library never
// mixes radians into public interfaces; conversions are internal to the
// geodesic routines.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

namespace geovalid::geo {

/// Number of metres in one kilometre. Kept here so distance-unit conversions
/// read as intent rather than magic numbers.
inline constexpr double kMetersPerKilometer = 1000.0;

/// Mean Earth radius (IUGG), metres. Used by the haversine formula.
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A WGS-84 geographic position in decimal degrees.
///
/// Latitude is positive north, longitude positive east. The type is a plain
/// value: cheap to copy, totally ordered (lexicographically by lat then lon)
/// so it can key ordered containers.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend constexpr auto operator<=>(const LatLon&, const LatLon&) = default;
};

/// Returns true when `p` is a physically meaningful coordinate:
/// |lat| <= 90 and |lon| <= 180, and neither component is NaN.
[[nodiscard]] bool is_valid(const LatLon& p);

/// Normalizes a longitude into (-180, 180]. Latitude is not wrapped (a
/// latitude outside [-90, 90] is a bug, not a wrap-around).
[[nodiscard]] double normalize_lon_deg(double lon_deg);

/// Renders "lat,lon" with 6 decimal places (~0.1 m resolution), the format
/// used by the CSV codecs.
[[nodiscard]] std::string to_string(const LatLon& p);

std::ostream& operator<<(std::ostream& os, const LatLon& p);

}  // namespace geovalid::geo
