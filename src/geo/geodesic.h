// Great-circle distance and bearing computations on the WGS-84 sphere.
//
// The matching algorithm in the paper operates at city scale (alpha = 500 m)
// where the spherical haversine formula is accurate to well under a metre,
// so no ellipsoidal corrections are needed.
#pragma once

#include "geo/latlon.h"

namespace geovalid::geo {

/// Great-circle distance between two positions, in metres (haversine).
/// Numerically stable for both antipodal and very close points.
[[nodiscard]] double distance_m(const LatLon& a, const LatLon& b);

/// Fast approximate distance using an equirectangular projection, metres.
/// Within 0.1% of haversine for separations under ~50 km; used by hot loops
/// (visit detection over millions of GPS samples).
[[nodiscard]] double fast_distance_m(const LatLon& a, const LatLon& b);

/// Cheap *lower bound* on distance_m: guaranteed never to exceed the
/// haversine distance for any valid coordinate pair (tested against it),
/// so `bound_distance_m(a, b) > r` proves `distance_m(a, b) > r` without
/// paying for the trig-heavy exact formula. Used to gate the haversine in
/// the matcher's candidate generation and the POI grid's radius scan.
/// Within ~36% of the true distance for city-scale separations (the
/// longitude component carries a 2/pi slack factor), which is plenty to
/// reject the far candidates that dominate those scans.
[[nodiscard]] double bound_distance_m(const LatLon& a, const LatLon& b);

/// Initial bearing from `a` to `b`, degrees clockwise from true north,
/// in [0, 360).
[[nodiscard]] double initial_bearing_deg(const LatLon& a, const LatLon& b);

/// Destination point reached by travelling `distance_m` metres from `origin`
/// along `bearing_deg` (degrees clockwise from north) on a great circle.
[[nodiscard]] LatLon destination(const LatLon& origin, double bearing_deg,
                                 double distance_meters);

/// Average speed implied by moving between two positions over `seconds`,
/// metres/second. Returns 0 when `seconds <= 0`.
[[nodiscard]] double speed_mps(const LatLon& a, const LatLon& b,
                               double seconds);

/// Unit helpers used by the driveby-checkin classifier (threshold is 4 mph
/// in the paper).
[[nodiscard]] constexpr double mph_to_mps(double mph) { return mph * 0.44704; }
[[nodiscard]] constexpr double mps_to_mph(double mps) { return mps / 0.44704; }

}  // namespace geovalid::geo
