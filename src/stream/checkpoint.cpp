#include "stream/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "stream/snapshot_io.h"

namespace geovalid::stream {
namespace {

constexpr std::string_view kFilePrefix = "checkpoint-";
constexpr std::string_view kFileSuffix = ".gvck";

[[noreturn]] void corrupt(const std::string& what) {
  throw CheckpointError(CheckpointError::Kind::kCorrupt,
                        "checkpoint: " + what);
}

bool is_checkpoint_name(const std::string& name) {
  return name.size() > kFilePrefix.size() + kFileSuffix.size() &&
         name.compare(0, kFilePrefix.size(), kFilePrefix) == 0 &&
         name.compare(name.size() - kFileSuffix.size(), kFileSuffix.size(),
                      kFileSuffix) == 0;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) corrupt("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

std::string encode_checkpoint(const Checkpoint& ck) {
  SnapshotWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u64(ck.cursor);
  w.u64(ck.payload.size());
  std::string out = w.take();
  out += ck.payload;
  SnapshotWriter trailer;
  trailer.u32(crc32(out));
  out += trailer.bytes();
  return out;
}

Checkpoint decode_checkpoint(std::string_view bytes) {
  // Header (magic..size) is 24 bytes, trailer 4.
  if (bytes.size() < 28) corrupt("truncated header");
  SnapshotReader header(bytes.substr(0, 24));
  if (header.u32() != kCheckpointMagic) corrupt("bad magic");
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion) {
    throw CheckpointError(
        CheckpointError::Kind::kVersionMismatch,
        "checkpoint: format version " + std::to_string(version) +
            ", this binary writes version " +
            std::to_string(kCheckpointVersion));
  }
  Checkpoint ck;
  ck.cursor = header.u64();
  const std::uint64_t size = header.u64();
  if (bytes.size() != 24 + size + 4) corrupt("truncated payload");
  SnapshotReader trailer(bytes.substr(24 + size, 4));
  if (trailer.u32() != crc32(bytes.substr(0, 24 + size))) {
    corrupt("checksum mismatch");
  }
  ck.payload.assign(bytes.substr(24, size));
  return ck;
}

std::filesystem::path write_checkpoint(const std::filesystem::path& dir,
                                       const Checkpoint& ck) {
  // Registry lookups are fine here: checkpointing happens once per
  // interval, not per event.
  obs::StageTimer timer(&obs::registry().histogram(
      "stream_checkpoint_write_ns",
      "Wall time to encode and atomically write one checkpoint "
      "(nanoseconds)"));
  std::filesystem::create_directories(dir);
  char name[48];
  std::snprintf(name, sizeof(name), "checkpoint-%020llu.gvck",
                static_cast<unsigned long long>(ck.cursor));
  const std::filesystem::path final_path = dir / name;
  const std::filesystem::path tmp_path = dir / (std::string(name) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot write " +
                               tmp_path.string());
    }
    const std::string bytes = encode_checkpoint(ck);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("checkpoint: short write to " +
                               tmp_path.string());
    }
  }
  std::filesystem::rename(tmp_path, final_path);
  obs::registry()
      .counter("stream_checkpoints_total",
               "Checkpoints successfully written to disk")
      .inc();
  obs::registry()
      .histogram("stream_checkpoint_bytes",
                 "Encoded size of each written checkpoint (bytes)")
      .observe(24 + ck.payload.size() + 4);
  return final_path;
}

std::optional<Checkpoint> restore_latest(const std::filesystem::path& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return std::nullopt;
  std::vector<std::filesystem::path> candidates;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        is_checkpoint_name(entry.path().filename().string())) {
      candidates.push_back(entry.path());
    }
  }
  if (candidates.empty()) return std::nullopt;
  // The zero-padded cursor makes lexicographic order == cursor order.
  std::sort(candidates.begin(), candidates.end());
  std::optional<CheckpointError> first_error;
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    try {
      Checkpoint ck = decode_checkpoint(read_file(*it));
      obs::registry()
          .counter("stream_checkpoint_restores_total",
                   "Successful checkpoint restores (one per resumed run)")
          .inc();
      return ck;
    } catch (const CheckpointError& e) {
      if (e.kind() == CheckpointError::Kind::kVersionMismatch) throw;
      if (!first_error) first_error = e;
      // Corrupt (torn write, bit rot): fall back to the next-newest.
    } catch (const SnapshotError& e) {
      if (!first_error) {
        first_error = CheckpointError(CheckpointError::Kind::kCorrupt,
                                      std::string("checkpoint: ") + e.what());
      }
    }
  }
  throw *first_error;
}

}  // namespace geovalid::stream
