#include "stream/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "trace/time.h"

#include "obs/metrics.h"
#include "stream/checkpoint.h"
#include "stream/faults.h"
#include "stream/online_matcher.h"
#include "stream/online_visit_detector.h"
#include "stream/quarantine.h"
#include "stream/snapshot_io.h"

namespace geovalid::stream {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - start)
                      .count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

/// Deterministic, platform-independent user -> shard mix (splitmix64
/// finalizer). Plain modulo would do, but sequential study ids would then
/// stripe shards unevenly under small N.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over serialized config fields — the checkpoint fingerprint.
std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void save_partition(SnapshotWriter& w, const match::Partition& p) {
  w.u64(p.honest);
  w.u64(p.extraneous);
  w.u64(p.missing);
  w.u64(p.checkins);
  w.u64(p.visits);
  for (const std::size_t n : p.by_class) w.u64(n);
}

match::Partition load_partition(SnapshotReader& r) {
  match::Partition p;
  p.honest = static_cast<std::size_t>(r.u64());
  p.extraneous = static_cast<std::size_t>(r.u64());
  p.missing = static_cast<std::size_t>(r.u64());
  p.checkins = static_cast<std::size_t>(r.u64());
  p.visits = static_cast<std::size_t>(r.u64());
  for (std::size_t& n : p.by_class) n = static_cast<std::size_t>(r.u64());
  return p;
}

void add_partition(match::Partition& into, const match::Partition& p) {
  into.honest += p.honest;
  into.extraneous += p.extraneous;
  into.missing += p.missing;
  into.checkins += p.checkins;
  into.visits += p.visits;
  for (std::size_t c = 0; c < p.by_class.size(); ++c) {
    into.by_class[c] += p.by_class[c];
  }
}

/// Advances `totals` by the (non-negative, fields are increment-only)
/// growth of a user's partition across one pipeline step.
void add_partition_delta(match::Partition& totals,
                         const match::Partition& after,
                         const match::Partition& before) {
  totals.honest += after.honest - before.honest;
  totals.extraneous += after.extraneous - before.extraneous;
  totals.missing += after.missing - before.missing;
  totals.checkins += after.checkins - before.checkins;
  totals.visits += after.visits - before.visits;
  for (std::size_t c = 0; c < after.by_class.size(); ++c) {
    totals.by_class[c] += after.by_class[c] - before.by_class[c];
  }
}

bool partition_equal(const match::Partition& a, const match::Partition& b) {
  return a.honest == b.honest && a.extraneous == b.extraneous &&
         a.missing == b.missing && a.checkins == b.checkins &&
         a.visits == b.visits && a.by_class == b.by_class;
}

/// Per-user incremental pipeline: raw events in, verdicts out. The matcher
/// sinks into the user's own partition; the shard mirrors every step's
/// delta into its running totals, so partition() stays the cheap per-shard
/// sum while each user's share remains queryable (the serve layer's
/// /v1/users/{id}/verdicts endpoint).
struct UserPipeline {
  match::Partition verdicts;  ///< declared before matcher: it is the sink
  OnlineVisitDetector detector;
  OnlineMatcher matcher;
  trace::TimeSec last_event_t = 0;
  bool saw_event = false;

  // Online checkin-interarrival statistics (Welford, minutes): the
  // burstiness inputs, updated per applied checkin.
  trace::TimeSec last_checkin_t = 0;
  std::uint64_t checkins_seen = 0;
  std::uint64_t gap_count = 0;
  double gap_mean_min = 0.0;
  double gap_m2 = 0.0;

  explicit UserPipeline(const StreamEngineConfig& config)
      : detector(config.detector),
        matcher(config.match, config.classifier, verdicts) {}

  void observe_checkin_time(trace::TimeSec t) {
    if (checkins_seen > 0) {
      const double gap_min = trace::to_minutes(t - last_checkin_t);
      gap_count += 1;
      const double d = gap_min - gap_mean_min;
      gap_mean_min += d / static_cast<double>(gap_count);
      gap_m2 += d * (gap_min - gap_mean_min);
    }
    checkins_seen += 1;
    last_checkin_t = t;
  }
};

UserVerdicts make_user_verdicts(trace::UserId id, const UserPipeline& p) {
  UserVerdicts v;
  v.id = id;
  v.partition = p.verdicts;
  v.checkins_seen = p.checkins_seen;
  v.gap_count = p.gap_count;
  v.gap_mean_min = p.gap_mean_min;
  v.gap_m2 = p.gap_m2;
  return v;
}

/// Cached metric handles; all null when StreamEngineConfig::metrics is
/// false, which turns every instrumentation site into a predictable
/// null-check. Registered once in the StreamEngine constructor so the
/// registry mutex never appears on the hot path.
struct ShardMetrics {
  obs::Counter* events_gps = nullptr;
  obs::Counter* events_checkin = nullptr;
  obs::Counter* shard_events = nullptr;    ///< per-shard label
  obs::Counter* stalls = nullptr;          ///< per-shard label
  obs::Gauge* mailbox_depth = nullptr;     ///< per-shard label
  obs::Histogram* stall_wait_ns = nullptr;
  obs::Histogram* batch_latency_ns = nullptr;
  obs::Counter* verdict_honest = nullptr;
  obs::Counter* verdict_extraneous = nullptr;
  obs::Counter* verdict_missing = nullptr;
  obs::Counter* checkins = nullptr;
  obs::Counter* visits = nullptr;
  obs::Counter* scored = nullptr;       ///< per-shard label; model only
  obs::Gauge* scored_users = nullptr;   ///< per-shard label; model only
};

}  // namespace

struct StreamEngine::Shard {
  /// One mailbox handoff: the event batch plus its enqueue time, so the
  /// worker can record queue-wait + processing latency per batch.
  struct Batch {
    std::vector<Event> events;
    Clock::time_point enqueued;
  };

  // Mailbox (producer <-> worker). Whole batches are handed over by move —
  // the lock is taken once per ~batch_size events and no Event is ever
  // copied across the boundary.
  std::mutex mu;
  std::condition_variable cv_producer;  // signalled when space frees up
  std::condition_variable cv_worker;    // signalled when batches/close arrive
  std::condition_variable cv_idle;      // signalled when the worker goes idle
  std::deque<Batch> mailbox;  // batches, FIFO
  std::size_t capacity_batches = 1;
  bool closed = false;
  bool busy = false;  ///< worker holds an unprocessed chunk (see drain())
  /// Cleared by shutdown(): join without flushing open per-user state —
  /// the crash-simulation path, where recovery must come from a checkpoint.
  bool finalize_on_close = true;

  std::size_t index = 0;          ///< this shard's position in shards_
  std::uint64_t fault_seq = 0;    ///< worker-local event ordinal (fault hook)

  // Worker-owned state.
  std::unordered_map<trace::UserId, UserPipeline> users;
  match::Partition totals;
  match::Partition counted;  ///< portion of `totals` already in the counters

  // Online scoring (engaged only when the engine has a model). The scorer
  // is worker-owned like `users`; queries read it under the same drain()
  // quiescence contract.
  std::optional<score::OnlineScorer> scorer;
  std::uint64_t scored_total = 0;
  std::uint64_t scored_counted = 0;  ///< portion already in the counter

  ShardMetrics metrics;

  // Published results.
  mutable std::mutex snapshot_mu;
  match::Partition snapshot;
  std::atomic<std::size_t> processed{0};
  std::exception_ptr error;

  std::thread worker;

  void process(const Event& e, const StreamEngineConfig& config) {
    if (config.faults != nullptr) {
      config.faults->on_shard_event(index, fault_seq++);
    }
    auto [it, inserted] = users.try_emplace(e.user, config);
    UserPipeline& p = it->second;

    const trace::TimeSec t = e.time();
    if (p.saw_event && t < p.last_event_t) {
      if (config.quarantine != nullptr) {
        // Graceful degradation: the event is never applied (replaying a
        // late event would change verdicts vs the batch pipeline), only
        // triaged — recoverably late vs stale — and dead-lettered.
        config.quarantine->record(
            e, p.last_event_t - t <= config.reorder_window
                   ? QuarantineReason::kLateTimestamp
                   : QuarantineReason::kStaleTimestamp);
        return;
      }
      std::ostringstream os;
      os << "StreamEngine: events for user " << e.user
         << " regressed in time (" << t << " after " << p.last_event_t << ")";
      throw std::invalid_argument(os.str());
    }
    p.last_event_t = t;
    p.saw_event = true;

    const match::Partition before = p.verdicts;
    if (e.kind == Event::Kind::kGps) {
      p.matcher.observe_gps(e.gps);
      if (auto visit = p.detector.push(e.gps)) p.matcher.push_visit(*visit);
    } else {
      p.observe_checkin_time(t);
      if (scorer) {
        scorer->observe(e.user, e.checkin);
        ++scored_total;
      }
      p.matcher.push_checkin(e.checkin);
    }
    p.matcher.advance(t, p.detector.open_window_start().value_or(t));
    add_partition_delta(totals, p.verdicts, before);
  }

  void run(const StreamEngineConfig& config) {
    bool failed = false;
    bool finalize = true;
    while (true) {
      std::deque<Batch> work;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_worker.wait(lock, [&] { return !mailbox.empty() || closed; });
        if (mailbox.empty() && closed) {
          finalize = finalize_on_close;
          break;
        }
        work.swap(mailbox);
        busy = true;  // drain() must not report idle while this chunk runs
        if (metrics.mailbox_depth) metrics.mailbox_depth->set(0);
      }
      cv_producer.notify_one();
      std::size_t n = 0, n_gps = 0, n_checkin = 0;
      for (const Batch& batch : work) {
        n += batch.events.size();
        for (const Event& e : batch.events) {
          (e.kind == Event::Kind::kGps ? n_gps : n_checkin) += 1;
        }
        if (!failed) {
          try {
            for (const Event& e : batch.events) process(e, config);
          } catch (...) {
            // Record the first failure, then keep draining so the producer
            // never deadlocks on a full mailbox.
            error = std::current_exception();
            failed = true;
          }
        }
        if (metrics.batch_latency_ns) {
          metrics.batch_latency_ns->observe(ns_since(batch.enqueued));
        }
      }
      processed.fetch_add(n, std::memory_order_relaxed);
      if (metrics.shard_events) {
        // One flush per drained chunk, not per event: the counters are
        // shared across shards, so per-event increments would bounce the
        // cache line between workers.
        metrics.shard_events->inc(n);
        metrics.events_gps->inc(n_gps);
        metrics.events_checkin->inc(n_checkin);
      }
      publish();
      {
        std::lock_guard<std::mutex> lock(mu);
        busy = false;
      }
      cv_idle.notify_all();
    }
    if (!failed && finalize) {
      for (auto& [id, p] : users) {
        const match::Partition before = p.verdicts;
        if (auto visit = p.detector.finish()) p.matcher.push_visit(*visit);
        p.matcher.finish();
        add_partition_delta(totals, p.verdicts, before);
      }
    }
    publish();
  }

  void publish() {
    // Verdict counters advance by the delta since the last publish; the
    // partition fields are increment-only, so deltas are non-negative and
    // the counter totals equal partition() exactly once the run drains.
    if (metrics.verdict_honest) {
      metrics.verdict_honest->inc(totals.honest - counted.honest);
      metrics.verdict_extraneous->inc(totals.extraneous - counted.extraneous);
      metrics.verdict_missing->inc(totals.missing - counted.missing);
      metrics.checkins->inc(totals.checkins - counted.checkins);
      metrics.visits->inc(totals.visits - counted.visits);
      counted = totals;
    }
    if (metrics.scored) {
      metrics.scored->inc(scored_total - scored_counted);
      scored_counted = scored_total;
      metrics.scored_users->set(
          static_cast<std::int64_t>(scorer->user_count()));
    }
    std::lock_guard<std::mutex> lock(snapshot_mu);
    snapshot = totals;
  }
};

StreamEngine::StreamEngine(StreamEngineConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.mailbox_capacity < config_.batch_size) {
    config_.mailbox_capacity = config_.batch_size;
  }
  shards_.reserve(config_.shards);
  staging_.resize(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = s;
    shards_.back()->capacity_batches =
        std::max<std::size_t>(1, config_.mailbox_capacity / config_.batch_size);
    if (config_.model != nullptr) {
      shards_.back()->scorer.emplace(*config_.model);
    }
    staging_[s].reserve(config_.batch_size);
  }
  if (config_.metrics) {
    obs::Registry& r = obs::registry();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardMetrics& m = shards_[s]->metrics;
      const obs::Labels shard_label{{"shard", std::to_string(s)}};
      m.events_gps = &r.counter("stream_events_total",
                                "Events consumed by shard workers, by kind",
                                {{"kind", "gps"}});
      m.events_checkin = &r.counter("stream_events_total",
                                    "Events consumed by shard workers, by kind",
                                    {{"kind", "checkin"}});
      m.shard_events =
          &r.counter("stream_shard_events_total",
                     "Events consumed per shard (shard balance)", shard_label);
      m.stalls = &r.counter(
          "stream_backpressure_stalls_total",
          "Producer blocks on a full shard mailbox", shard_label);
      m.mailbox_depth = &r.gauge("stream_shard_mailbox_batches",
                                 "Batches queued in the shard mailbox",
                                 shard_label);
      m.stall_wait_ns = &r.histogram(
          "stream_backpressure_wait_ns",
          "Producer wall time spent blocked on full mailboxes (nanoseconds)");
      m.batch_latency_ns = &r.histogram(
          "stream_batch_latency_ns",
          "Mailbox handoff to batch fully processed (nanoseconds); one "
          "sample per batch, the engine's event-latency proxy");
      static constexpr std::string_view kVerdictHelp =
          "Streaming verdicts by partition field";
      m.verdict_honest = &r.counter("stream_verdicts_total", kVerdictHelp,
                                    {{"verdict", "honest"}});
      m.verdict_extraneous = &r.counter("stream_verdicts_total", kVerdictHelp,
                                        {{"verdict", "extraneous"}});
      m.verdict_missing = &r.counter("stream_verdicts_total", kVerdictHelp,
                                     {{"verdict", "missing"}});
      m.checkins = &r.counter("stream_checkins_total",
                              "Checkins processed by the streaming engine");
      m.visits = &r.counter(
          "stream_visits_total",
          "Visits detected online from GPS by the streaming engine");
      if (config_.model != nullptr) {
        m.scored = &r.counter(
            "score_checkins_scored_total",
            "Checkins scored through the loaded detection model",
            shard_label);
        m.scored_users = &r.gauge(
            "score_users_tracked",
            "Users with at least one scored checkin", shard_label);
      }
    }
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, sh = shard.get()] { sh->run(config_); });
  }
}

StreamEngine::~StreamEngine() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; finish() rethrows for callers who care.
  }
}

std::size_t StreamEngine::shard_of(trace::UserId user) const {
  return static_cast<std::size_t>(mix64(user) % shards_.size());
}

bool StreamEngine::push(const Event& e) {
  return push_from(e, staging_, nullptr);
}

bool StreamEngine::push_from(const Event& e,
                             std::vector<std::vector<Event>>& staging,
                             std::uint64_t* stall_count) {
  if (finished_) {
    throw std::logic_error("StreamEngine::push called after finish()");
  }
  pushed_.fetch_add(1, std::memory_order_relaxed);
  if (config_.quarantine != nullptr) {
    // Payload validation happens producer-side (no per-user history
    // needed), so garbage never reaches the geodesic math or even a shard.
    if (const auto reason = validate_event(e, config_.known_users)) {
      config_.quarantine->record(e, *reason);
      return false;
    }
  }
  const std::size_t s = shard_of(e.user);
  staging[s].push_back(e);
  if (staging[s].size() >= config_.batch_size) {
    hand_off(s, staging[s], stall_count);
  }
  return true;
}

void StreamEngine::hand_off(std::size_t shard_index, std::vector<Event>& staged,
                            std::uint64_t* stall_count) {
  if (staged.empty()) return;
  Shard& shard = *shards_[shard_index];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    const bool full = shard.mailbox.size() >= shard.capacity_batches;
    if (full) {
      if (shard.metrics.stalls) shard.metrics.stalls->inc();
      if (stall_count != nullptr) ++*stall_count;
    }
    {
      obs::StageTimer stall(full ? shard.metrics.stall_wait_ns : nullptr);
      shard.cv_producer.wait(lock, [&] {
        return shard.mailbox.size() < shard.capacity_batches;
      });
    }
    shard.mailbox.push_back(
        Shard::Batch{std::move(staged), Clock::now()});
    if (shard.metrics.mailbox_depth) {
      shard.metrics.mailbox_depth->set(
          static_cast<std::int64_t>(shard.mailbox.size()));
    }
  }
  shard.cv_worker.notify_one();
  staged = std::vector<Event>();
  staged.reserve(config_.batch_size);
}

StreamEngine::Producer::Producer(StreamEngine& engine) : engine_(engine) {
  staging_.resize(engine_.shards_.size());
  for (auto& s : staging_) s.reserve(engine_.config_.batch_size);
}

bool StreamEngine::Producer::push(const Event& e) {
  return engine_.push_from(e, staging_, &stalls_);
}

std::size_t StreamEngine::Producer::stage_batch(
    std::span<const Event> events) {
  if (engine_.finished_) {
    throw std::logic_error("StreamEngine::push called after finish()");
  }
  if (events.empty()) return 0;
  engine_.pushed_.fetch_add(events.size(), std::memory_order_relaxed);
  std::size_t accepted = 0;
  for (const Event& e : events) {
    if (engine_.config_.quarantine != nullptr) {
      if (const auto reason =
              validate_event(e, engine_.config_.known_users)) {
        engine_.config_.quarantine->record(e, *reason);
        continue;
      }
    }
    staging_[engine_.shard_of(e.user)].push_back(e);
    ++accepted;
  }
  // One handoff per touched shard for the whole span — a full frame rides
  // into a mailbox under a single lock acquisition, even when it exceeds
  // batch_size (a mailbox batch is a vector of any length; the cap counts
  // batches, and workers drain whole batches regardless of size).
  for (std::size_t s = 0; s < staging_.size(); ++s) {
    if (staging_[s].size() >= engine_.config_.batch_size) {
      engine_.hand_off(s, staging_[s], &stalls_);
    }
  }
  return accepted;
}

void StreamEngine::Producer::flush() {
  for (std::size_t s = 0; s < staging_.size(); ++s) {
    engine_.hand_off(s, staging_[s], &stalls_);
  }
}

void StreamEngine::finish() {
  if (finished_) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    hand_off(s, staging_[s], nullptr);
  }
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->closed = true;
    }
    shard->cv_worker.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  finished_ = true;
  for (auto& shard : shards_) {
    if (shard->error) std::rethrow_exception(shard->error);
  }
}

void StreamEngine::drain() {
  if (finished_) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    hand_off(s, staging_[s], nullptr);
  }
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv_idle.wait(
        lock, [&] { return shard->mailbox.empty() && !shard->busy; });
  }
  for (auto& shard : shards_) {
    if (shard->error) std::rethrow_exception(shard->error);
  }
  if (config_.quarantine != nullptr) config_.quarantine->flush();
}

void StreamEngine::shutdown() {
  if (finished_) return;
  // No staging flush: staged-but-unsent events are lost, exactly as a
  // crash would lose them.
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->finalize_on_close = false;
      shard->closed = true;
    }
    shard->cv_worker.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  finished_ = true;
}

std::uint64_t StreamEngine::config_fingerprint() const {
  // Semantic pipeline parameters only: anything that changes verdicts.
  // Shard count, batch size, mailbox depth and metrics are execution
  // details — a checkpoint is portable across them by design.
  SnapshotWriter w;
  w.f64(config_.match.alpha_m);
  w.i64(config_.match.beta);
  w.boolean(config_.match.rematch_losers);
  w.boolean(config_.match.reference_matcher);
  w.f64(config_.classifier.remote_threshold_m);
  w.f64(config_.classifier.driveby_speed_mps);
  w.i64(config_.classifier.max_gps_gap);
  w.f64(config_.detector.radius_m);
  w.i64(config_.detector.min_duration);
  w.i64(config_.detector.max_sample_gap);
  w.f64(config_.detector.stationary.accel_variance_max);
  w.u64(config_.detector.stationary.wifi_stable_samples);
  w.i64(config_.reorder_window);
  // Appended only when scoring is on: model-less fingerprints are
  // unchanged (old checkpoints still load), while a checkpoint written
  // under one model refuses to resume under another or with scoring off.
  if (config_.model != nullptr) w.u64(config_.model->fingerprint());
  return fnv1a64(w.bytes());
}

std::string StreamEngine::save_state() {
  drain();
  SnapshotWriter w;
  // State only grows between periodic checkpoints; last size + slack makes
  // the serialization a single allocation on the steady-state path.
  w.reserve(last_state_bytes_ + last_state_bytes_ / 4 + 4096);
  w.u64(config_fingerprint());

  // Verdict totals, summed across shards. After drain() every shard has
  // published, so snapshots equal worker-side totals.
  save_partition(w, partition());

  // Per-user pipelines, globally sorted by id: the bytes are a pure
  // function of the pushed event prefix, independent of the shard count.
  // Reading worker-owned maps is safe here — drain() left every worker
  // idle, and the mailbox mutex handshake orders their writes before our
  // reads.
  std::vector<std::pair<trace::UserId, const UserPipeline*>> all;
  for (const auto& shard : shards_) {
    for (const auto& [id, p] : shard->users) all.emplace_back(id, &p);
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(all.size());
  for (const auto& [id, p] : all) {
    w.u32(id);
    w.boolean(p->saw_event);
    w.i64(p->last_event_t);
    save_partition(w, p->verdicts);
    w.u64(p->checkins_seen);
    w.i64(p->last_checkin_t);
    w.u64(p->gap_count);
    w.f64(p->gap_mean_min);
    w.f64(p->gap_m2);
    p->detector.save(w);
    p->matcher.save(w);
    // Scorer state rides in the same per-user section, gated on the model
    // (whose fingerprint is already part of the payload's config print).
    if (config_.model != nullptr) {
      shards_[shard_of(id)]->scorer->save_user(w, id);
    }
  }
  std::string out = w.take();
  last_state_bytes_ = out.size();
  return out;
}

void StreamEngine::load_state(std::string_view payload) {
  if (finished_) {
    throw std::logic_error("StreamEngine::load_state called after finish()");
  }
  if (pushed_.load(std::memory_order_relaxed) != 0) {
    throw std::logic_error(
        "StreamEngine::load_state requires a fresh engine (nothing pushed)");
  }
  SnapshotReader r(payload);
  const std::uint64_t fingerprint = r.u64();
  if (fingerprint != config_fingerprint()) {
    throw CheckpointError(
        CheckpointError::Kind::kConfigMismatch,
        "checkpoint: pipeline config differs from the one that wrote the "
        "snapshot; resuming would silently change verdicts");
  }
  const match::Partition restored = load_partition(r);

  match::Partition user_sum;
  const std::uint64_t user_count = r.u64();
  for (std::uint64_t i = 0; i < user_count; ++i) {
    const trace::UserId id = r.u32();
    Shard& shard = *shards_[shard_of(id)];
    auto [it, inserted] = shard.users.try_emplace(id, config_);
    if (!inserted) {
      throw SnapshotError("snapshot: duplicate user id");
    }
    UserPipeline& p = it->second;
    p.saw_event = r.boolean();
    p.last_event_t = r.i64();
    p.verdicts = load_partition(r);
    p.checkins_seen = r.u64();
    p.last_checkin_t = r.i64();
    p.gap_count = r.u64();
    p.gap_mean_min = r.f64();
    p.gap_m2 = r.f64();
    p.detector.load(r);
    p.matcher.load(r);
    if (config_.model != nullptr) shard.scorer->load_user(r, id);
    // Restored history lands in the owning shard's totals, so per-user
    // shares and per-shard sums stay consistent across a resume.
    add_partition(shard.totals, p.verdicts);
    add_partition(user_sum, p.verdicts);
  }
  if (!r.exhausted()) {
    throw SnapshotError("snapshot: trailing bytes after engine state");
  }
  // The global partition is redundant with the per-user shares by
  // construction; a mismatch means the payload is internally inconsistent
  // (impossible for honest files — the container CRC already passed).
  if (!partition_equal(user_sum, restored)) {
    throw SnapshotError(
        "snapshot: per-user verdicts do not sum to the stored totals");
  }

  // `counted` absorbs the restored history, so the verdict *counters*
  // report only post-restore work — the metrics registry must not re-emit
  // history that was already emitted before the crash.
  for (auto& shard : shards_) {
    shard->counted = shard->totals;
    std::lock_guard<std::mutex> lock(shard->snapshot_mu);
    shard->snapshot = shard->totals;
  }
}

match::Partition StreamEngine::partition() const {
  match::Partition sum;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->snapshot_mu);
    const match::Partition& p = shard->snapshot;
    sum.honest += p.honest;
    sum.extraneous += p.extraneous;
    sum.missing += p.missing;
    sum.checkins += p.checkins;
    sum.visits += p.visits;
    for (std::size_t c = 0; c < p.by_class.size(); ++c) {
      sum.by_class[c] += p.by_class[c];
    }
  }
  return sum;
}

std::size_t StreamEngine::events_processed() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->processed.load(std::memory_order_relaxed);
  }
  return n;
}

// The query API reads worker-owned maps, so each call quiesces the engine
// first (drain() is a no-op after finish(), when the workers are joined).
// Producer thread only, like push().

std::optional<UserVerdicts> StreamEngine::user_verdicts(trace::UserId user) {
  drain();
  const Shard& shard = *shards_[shard_of(user)];
  const auto it = shard.users.find(user);
  if (it == shard.users.end()) return std::nullopt;
  return make_user_verdicts(user, it->second);
}

std::vector<UserVerdicts> StreamEngine::all_user_verdicts() {
  drain();
  std::vector<UserVerdicts> out;
  for (const auto& shard : shards_) {
    for (const auto& [id, p] : shard->users) {
      out.push_back(make_user_verdicts(id, p));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UserVerdicts& a, const UserVerdicts& b) {
              return a.id < b.id;
            });
  return out;
}

std::size_t StreamEngine::user_count() {
  drain();
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->users.size();
  return n;
}

std::optional<score::UserScoreSnapshot> StreamEngine::user_score(
    trace::UserId user) {
  if (config_.model == nullptr) return std::nullopt;
  drain();
  return shards_[shard_of(user)]->scorer->user_score(user);
}

std::vector<score::SuspectEntry> StreamEngine::top_suspects(std::size_t k) {
  if (config_.model == nullptr || k == 0) return {};
  drain();
  // Each shard's top-k is a superset of its contribution to the global
  // top-k; merge and re-rank with the same total order the shards used.
  std::vector<score::SuspectEntry> merged;
  for (const auto& shard : shards_) {
    std::vector<score::SuspectEntry> part = shard->scorer->suspects(k);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const score::SuspectEntry& a, const score::SuspectEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

double UserVerdicts::extraneous_ratio() const {
  if (partition.checkins == 0) return 0.0;
  return static_cast<double>(partition.extraneous) /
         static_cast<double>(partition.checkins);
}

double UserVerdicts::gap_stddev_min() const {
  if (gap_count == 0) return 0.0;
  return std::sqrt(gap_m2 / static_cast<double>(gap_count));
}

double UserVerdicts::burstiness() const {
  if (gap_count == 0) return 0.0;
  const double sigma = gap_stddev_min();
  const double denom = sigma + gap_mean_min;
  return denom == 0.0 ? 0.0 : (sigma - gap_mean_min) / denom;
}

}  // namespace geovalid::stream
