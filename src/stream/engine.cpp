#include "stream/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "stream/online_matcher.h"
#include "stream/online_visit_detector.h"

namespace geovalid::stream {
namespace {

/// Deterministic, platform-independent user -> shard mix (splitmix64
/// finalizer). Plain modulo would do, but sequential study ids would then
/// stripe shards unevenly under small N.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Per-user incremental pipeline: raw events in, verdicts out.
struct UserPipeline {
  OnlineVisitDetector detector;
  OnlineMatcher matcher;
  trace::TimeSec last_event_t = 0;
  bool saw_event = false;

  UserPipeline(const StreamEngineConfig& config, match::Partition& sink)
      : detector(config.detector),
        matcher(config.match, config.classifier, sink) {}
};

}  // namespace

struct StreamEngine::Shard {
  // Mailbox (producer <-> worker). Whole batches are handed over by move —
  // the lock is taken once per ~batch_size events and no Event is ever
  // copied across the boundary.
  std::mutex mu;
  std::condition_variable cv_producer;  // signalled when space frees up
  std::condition_variable cv_worker;    // signalled when batches/close arrive
  std::deque<std::vector<Event>> mailbox;  // batches, FIFO
  std::size_t capacity_batches = 1;
  bool closed = false;

  // Worker-owned state.
  std::unordered_map<trace::UserId, UserPipeline> users;
  match::Partition totals;

  // Published results.
  mutable std::mutex snapshot_mu;
  match::Partition snapshot;
  std::atomic<std::size_t> processed{0};
  std::exception_ptr error;

  std::thread worker;

  void process(const Event& e, const StreamEngineConfig& config) {
    auto [it, inserted] =
        users.try_emplace(e.user, config, totals);
    UserPipeline& p = it->second;

    const trace::TimeSec t = e.time();
    if (p.saw_event && t < p.last_event_t) {
      std::ostringstream os;
      os << "StreamEngine: events for user " << e.user
         << " regressed in time (" << t << " after " << p.last_event_t << ")";
      throw std::invalid_argument(os.str());
    }
    p.last_event_t = t;
    p.saw_event = true;

    if (e.kind == Event::Kind::kGps) {
      p.matcher.observe_gps(e.gps);
      if (auto visit = p.detector.push(e.gps)) p.matcher.push_visit(*visit);
    } else {
      p.matcher.push_checkin(e.checkin);
    }
    p.matcher.advance(t, p.detector.open_window_start().value_or(t));
  }

  void run(const StreamEngineConfig& config) {
    bool failed = false;
    while (true) {
      std::deque<std::vector<Event>> work;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_worker.wait(lock, [&] { return !mailbox.empty() || closed; });
        if (mailbox.empty() && closed) break;
        work.swap(mailbox);
      }
      cv_producer.notify_one();
      std::size_t n = 0;
      for (const std::vector<Event>& batch : work) {
        n += batch.size();
        if (failed) continue;
        try {
          for (const Event& e : batch) process(e, config);
        } catch (...) {
          // Record the first failure, then keep draining so the producer
          // never deadlocks on a full mailbox.
          error = std::current_exception();
          failed = true;
        }
      }
      processed.fetch_add(n, std::memory_order_relaxed);
      publish();
    }
    if (!failed) {
      for (auto& [id, p] : users) {
        if (auto visit = p.detector.finish()) p.matcher.push_visit(*visit);
        p.matcher.finish();
      }
    }
    publish();
  }

  void publish() {
    std::lock_guard<std::mutex> lock(snapshot_mu);
    snapshot = totals;
  }
};

StreamEngine::StreamEngine(StreamEngineConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.mailbox_capacity < config_.batch_size) {
    config_.mailbox_capacity = config_.batch_size;
  }
  shards_.reserve(config_.shards);
  staging_.resize(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity_batches =
        std::max<std::size_t>(1, config_.mailbox_capacity / config_.batch_size);
    staging_[s].reserve(config_.batch_size);
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, sh = shard.get()] { sh->run(config_); });
  }
}

StreamEngine::~StreamEngine() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; finish() rethrows for callers who care.
  }
}

std::size_t StreamEngine::shard_of(trace::UserId user) const {
  return static_cast<std::size_t>(mix64(user) % shards_.size());
}

void StreamEngine::push(const Event& e) {
  if (finished_) {
    throw std::logic_error("StreamEngine::push called after finish()");
  }
  const std::size_t s = shard_of(e.user);
  staging_[s].push_back(e);
  if (staging_[s].size() >= config_.batch_size) flush_staging(s);
}

void StreamEngine::flush_staging(std::size_t shard_index) {
  std::vector<Event>& staged = staging_[shard_index];
  if (staged.empty()) return;
  Shard& shard = *shards_[shard_index];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.cv_producer.wait(lock, [&] {
      return shard.mailbox.size() < shard.capacity_batches;
    });
    shard.mailbox.push_back(std::move(staged));
  }
  shard.cv_worker.notify_one();
  staged = std::vector<Event>();
  staged.reserve(config_.batch_size);
}

void StreamEngine::finish() {
  if (finished_) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) flush_staging(s);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->closed = true;
    }
    shard->cv_worker.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  finished_ = true;
  for (auto& shard : shards_) {
    if (shard->error) std::rethrow_exception(shard->error);
  }
}

match::Partition StreamEngine::partition() const {
  match::Partition sum;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->snapshot_mu);
    const match::Partition& p = shard->snapshot;
    sum.honest += p.honest;
    sum.extraneous += p.extraneous;
    sum.missing += p.missing;
    sum.checkins += p.checkins;
    sum.visits += p.visits;
    for (std::size_t c = 0; c < p.by_class.size(); ++c) {
      sum.by_class[c] += p.by_class[c];
    }
  }
  return sum;
}

std::size_t StreamEngine::events_processed() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->processed.load(std::memory_order_relaxed);
  }
  return n;
}

}  // namespace geovalid::stream
