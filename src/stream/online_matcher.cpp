#include "stream/online_matcher.h"

#include <algorithm>

#include "geo/geodesic.h"

namespace geovalid::stream {
namespace {

/// upper_bound over the sample window: first sample with t > key.
template <typename Deque>
auto first_after(const Deque& window, trace::TimeSec key) {
  return std::upper_bound(
      window.begin(), window.end(), key,
      [](trace::TimeSec t, const trace::GpsPoint& p) { return t < p.t; });
}

}  // namespace

OnlineMatcher::OnlineMatcher(const match::MatchConfig& match_config,
                             const match::ClassifierConfig& classifier_config,
                             match::Partition& sink)
    : match_config_(match_config),
      classifier_config_(classifier_config),
      sink_(&sink) {}

void OnlineMatcher::push_checkin(const trace::Checkin& c) {
  ++sink_->checkins;
  pending_checkins_.push_back(c);
}

void OnlineMatcher::push_visit(const trace::Visit& v) {
  ++sink_->visits;
  pending_visits_.push_back(v);
}

void OnlineMatcher::observe_gps(const trace::GpsPoint& p) {
  if (total_gps_ == 0) first_gps_t_ = p.t;
  ++total_gps_;
  last_gps_t_ = p.t;
  gps_window_.push_back(p);

  // This sample closes the speed bracket of every deferred checkin older
  // than it (deferred entries are in time order).
  while (!deferred_.empty() && deferred_.front().t < p.t) {
    const auto label = classify_now(deferred_.front(), /*at_end=*/false);
    ++sink_->by_class[static_cast<std::size_t>(*label)];
    deferred_.pop_front();
  }
}

void OnlineMatcher::advance(trace::TimeSec watermark,
                            trace::TimeSec visit_start_barrier) {
  watermark_ = saw_event_ ? std::max(watermark_, watermark) : watermark;
  saw_event_ = true;

  const trace::TimeSec beta = match_config_.beta;
  const bool checkins_safe =
      pending_checkins_.empty() ||
      pending_checkins_.back().t + beta <= visit_start_barrier;
  const bool visits_safe = pending_visits_.empty() ||
                           pending_visits_.back().end + beta <= watermark_;
  if ((!pending_checkins_.empty() || !pending_visits_.empty()) &&
      checkins_safe && visits_safe) {
    finalize_pending(/*at_end=*/false);
  }
  prune_gps_window();
}

void OnlineMatcher::finish() {
  if (!pending_checkins_.empty() || !pending_visits_.empty()) {
    finalize_pending(/*at_end=*/true);
  }
  while (!deferred_.empty()) {
    const auto label = classify_now(deferred_.front(), /*at_end=*/true);
    ++sink_->by_class[static_cast<std::size_t>(*label)];
    deferred_.pop_front();
  }
  gps_window_.clear();
}

void OnlineMatcher::finalize_pending(bool at_end) {
  const match::UserMatch m =
      match::match_user(pending_checkins_, pending_visits_, match_config_);

  for (std::size_t i = 0; i < pending_checkins_.size(); ++i) {
    if (m.checkins[i].visit.has_value()) {
      ++sink_->honest;
      ++sink_->by_class[static_cast<std::size_t>(match::CheckinClass::kHonest)];
    } else {
      ++sink_->extraneous;
      resolve_or_defer(pending_checkins_[i], at_end);
    }
  }
  for (std::size_t j = 0; j < pending_visits_.size(); ++j) {
    if (!m.visit_matched[j]) ++sink_->missing;
  }
  pending_checkins_.clear();
  pending_visits_.clear();
}

void OnlineMatcher::resolve_or_defer(const trace::Checkin& c, bool at_end) {
  if (const auto label = classify_now(c, at_end)) {
    ++sink_->by_class[static_cast<std::size_t>(*label)];
  } else {
    deferred_.push_back(c);
  }
}

std::optional<match::CheckinClass> OnlineMatcher::classify_now(
    const trace::Checkin& c, bool at_end) const {
  // sample_at(c.t): the newest sample at or before the checkin. Every
  // sample the pruning cutoff discarded is older than max_gps_gap relative
  // to any checkin still resolvable here, so a miss below gets the same
  // kUnclassified verdict the batch classifier would reach via its gap
  // check.
  auto it = first_after(gps_window_, c.t);
  const trace::GpsPoint* sample =
      it == gps_window_.begin() ? nullptr : &*std::prev(it);
  if (sample == nullptr || c.t - sample->t > classifier_config_.max_gps_gap) {
    return match::CheckinClass::kUnclassified;
  }
  if (geo::distance_m(sample->position, c.location) >
      classifier_config_.remote_threshold_m) {
    return match::CheckinClass::kRemote;
  }
  // Driveby vs superfluous needs speed_at(c.t), whose bracketing sample
  // after c.t may not have arrived yet.
  if (c.t >= last_gps_t_ && !at_end) return std::nullopt;
  return speed_at(c.t) > classifier_config_.driveby_speed_mps
             ? match::CheckinClass::kDriveby
             : match::CheckinClass::kSuperfluous;
}

double OnlineMatcher::speed_at(trace::TimeSec t) const {
  if (total_gps_ < 2 || t < first_gps_t_ || t > last_gps_t_) return 0.0;
  auto it = first_after(gps_window_, t);
  if (it == gps_window_.begin()) return 0.0;
  if (it == gps_window_.end()) --it;  // t is the final sample: last segment
  const trace::GpsPoint& after = *it;
  const trace::GpsPoint& before = *std::prev(it);
  const auto dt = static_cast<double>(after.t - before.t);
  if (dt <= 0.0) return 0.0;
  return geo::distance_m(before.position, after.position) / dt;
}

namespace {

void save_checkin(SnapshotWriter& w, const trace::Checkin& c) {
  w.i64(c.t);
  w.u32(c.poi);
  w.u8(static_cast<std::uint8_t>(c.category));
  w.f64(c.location.lat_deg);
  w.f64(c.location.lon_deg);
}

trace::Checkin load_checkin(SnapshotReader& r) {
  trace::Checkin c;
  c.t = r.i64();
  c.poi = r.u32();
  const std::uint8_t cat = r.u8();
  if (cat >= trace::kPoiCategoryCount) {
    throw SnapshotError("snapshot: checkin category out of domain");
  }
  c.category = static_cast<trace::PoiCategory>(cat);
  c.location.lat_deg = r.f64();
  c.location.lon_deg = r.f64();
  return c;
}

void save_visit(SnapshotWriter& w, const trace::Visit& v) {
  w.i64(v.start);
  w.i64(v.end);
  w.f64(v.centroid.lat_deg);
  w.f64(v.centroid.lon_deg);
  w.u32(v.poi);
}

trace::Visit load_visit(SnapshotReader& r) {
  trace::Visit v;
  v.start = r.i64();
  v.end = r.i64();
  v.centroid.lat_deg = r.f64();
  v.centroid.lon_deg = r.f64();
  v.poi = r.u32();
  return v;
}

void save_gps(SnapshotWriter& w, const trace::GpsPoint& p) {
  w.i64(p.t);
  w.f64(p.position.lat_deg);
  w.f64(p.position.lon_deg);
  w.boolean(p.has_fix);
  w.u32(p.wifi_fingerprint);
  w.f64(p.accel_variance);
}

trace::GpsPoint load_gps(SnapshotReader& r) {
  trace::GpsPoint p;
  p.t = r.i64();
  p.position.lat_deg = r.f64();
  p.position.lon_deg = r.f64();
  p.has_fix = r.boolean();
  p.wifi_fingerprint = r.u32();
  p.accel_variance = r.f64();
  return p;
}

}  // namespace

void OnlineMatcher::save(SnapshotWriter& w) const {
  w.i64(watermark_);
  w.boolean(saw_event_);
  w.u64(pending_checkins_.size());
  for (const trace::Checkin& c : pending_checkins_) save_checkin(w, c);
  w.u64(pending_visits_.size());
  for (const trace::Visit& v : pending_visits_) save_visit(w, v);
  w.u64(deferred_.size());
  for (const trace::Checkin& c : deferred_) save_checkin(w, c);
  w.u64(gps_window_.size());
  for (const trace::GpsPoint& p : gps_window_) save_gps(w, p);
  w.u64(total_gps_);
  w.i64(first_gps_t_);
  w.i64(last_gps_t_);
}

void OnlineMatcher::load(SnapshotReader& r) {
  watermark_ = r.i64();
  saw_event_ = r.boolean();
  pending_checkins_.clear();
  pending_checkins_.resize(r.length());
  for (trace::Checkin& c : pending_checkins_) c = load_checkin(r);
  pending_visits_.clear();
  pending_visits_.resize(r.length());
  for (trace::Visit& v : pending_visits_) v = load_visit(r);
  deferred_.clear();
  deferred_.resize(r.length());
  for (trace::Checkin& c : deferred_) c = load_checkin(r);
  gps_window_.clear();
  gps_window_.resize(r.length());
  for (trace::GpsPoint& p : gps_window_) p = load_gps(r);
  total_gps_ = static_cast<std::size_t>(r.u64());
  first_gps_t_ = r.i64();
  last_gps_t_ = r.i64();
}

void OnlineMatcher::prune_gps_window() {
  trace::TimeSec oldest = watermark_;
  if (!pending_checkins_.empty()) {
    oldest = std::min(oldest, pending_checkins_.front().t);
  }
  if (!deferred_.empty()) oldest = std::min(oldest, deferred_.front().t);
  const trace::TimeSec cutoff = oldest - classifier_config_.max_gps_gap;
  while (gps_window_.size() > 2 && gps_window_.front().t < cutoff) {
    gps_window_.pop_front();
  }
}

}  // namespace geovalid::stream
