// Record-level graceful degradation for the streaming engine.
//
// A production feed carries corrupt rows: NaN coordinates from broken GPS
// firmware, timestamps from the wrong epoch, ids that never enrolled. The
// engine used to have exactly two behaviours for such records — propagate
// garbage into the geodesic math, or abort the whole run from finish().
// With a Quarantine attached, malformed or implausible events are instead
// routed to a dead-letter file with a machine-readable reason code, counted
// in `stream_quarantined_total{reason=...}`, and the engine keeps serving
// the healthy records.
//
// Dead-letter semantics are at-least-once: after a crash + `--resume`, the
// events between the restored checkpoint cursor and the crash point are
// re-fed and re-quarantined, so the file may repeat records (dedupe on
// (user, t, reason) downstream if exact-once matters). The per-run counters
// are exact.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_set>

#include "stream/event.h"

namespace geovalid::obs {
class Counter;
}  // namespace geovalid::obs

namespace geovalid::stream {

/// Why a record was refused. The enum order is the dead-letter file's and
/// the metrics label's stable vocabulary — append, never reorder.
enum class QuarantineReason : std::uint8_t {
  /// NaN / infinite / out-of-range latitude or longitude.
  kBadCoordinates = 0,
  /// Timestamp negative or beyond trace::kMaxEventTime (would overflow the
  /// matcher's `t + beta` window arithmetic).
  kTimestampOverflow,
  /// Per-user timestamp regression within the engine's reorder window:
  /// slightly late, likely recoverable by buffering upstream.
  kLateTimestamp,
  /// Per-user timestamp regression beyond the reorder window: stale data.
  kStaleTimestamp,
  /// User id not in the configured enrollment set.
  kUnknownUser,
  /// Wire-protocol line that never parsed into an Event: bad verb, wrong
  /// field count, junk numerics, or a line over the serve size cap. Only
  /// produced via record_raw() — there is no Event to attach.
  kMalformedLine,
  /// Binary wire frame that never decoded into records: bad magic, unknown
  /// version, header over the caps, CRC mismatch, undecodable payload, or
  /// a frame truncated by a disconnect. Only produced via record_raw(),
  /// with a hex-prefix detail instead of raw bytes (serve/wire.h).
  kMalformedFrame,
};

inline constexpr std::size_t kQuarantineReasonCount = 7;

/// Stable reason-code string (the metrics label and dead-letter column).
[[nodiscard]] std::string_view to_string(QuarantineReason reason);

struct QuarantineConfig {
  /// Dead-letter CSV destination; empty quarantines count-only (no file).
  /// The file is opened in append mode so a resumed run keeps extending it.
  std::filesystem::path dead_letter_path;

  /// Register and bump `stream_quarantined_total{reason=...}` counters.
  bool metrics = true;
};

/// Thread-safe dead-letter sink. record() is called from the producer
/// thread (payload validation) and from shard workers (timestamp-order
/// violations), so counts are atomics and file appends take a mutex —
/// quarantine is the cold path, its cost is irrelevant.
class Quarantine {
 public:
  explicit Quarantine(QuarantineConfig config = {});

  /// Appends one dead-letter record and bumps the reason's counters.
  void record(const Event& e, QuarantineReason reason);

  /// Dead-letters a raw input line that never became an Event (the serve
  /// wire path: unparseable, oversized, or truncated by a disconnect). The
  /// line lands sanitized in the `detail` column — commas and control
  /// bytes become spaces, long lines are clipped — so the CSV stays a CSV.
  void record_raw(std::string_view raw_line, QuarantineReason reason);

  [[nodiscard]] std::uint64_t count(QuarantineReason reason) const {
    return counts_[static_cast<std::size_t>(reason)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const;

  /// Flushes the dead-letter stream (called by the engine on drain, so a
  /// checkpoint never outruns its dead letters).
  void flush();

 private:
  QuarantineConfig config_;
  std::array<std::atomic<std::uint64_t>, kQuarantineReasonCount> counts_{};
  std::array<obs::Counter*, kQuarantineReasonCount> counters_{};
  std::mutex io_mu_;
  std::ofstream out_;
};

/// Producer-side payload validation: coordinates, timestamp bounds, user
/// enrollment. Returns the reason to quarantine `e`, or nullopt when the
/// record is plausible. Timestamp *ordering* is validated later, in the
/// owning shard (it needs per-user history).
[[nodiscard]] std::optional<QuarantineReason> validate_event(
    const Event& e, const std::unordered_set<trace::UserId>* known_users);

}  // namespace geovalid::stream
