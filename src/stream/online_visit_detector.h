// Incremental stay-point detection: the push-API twin of
// trace::VisitDetector.
//
// The batch detector scans a complete GpsTrace; this one accepts samples
// one at a time and emits each visit the moment a later sample (or the end
// of the stream) closes its window. For any sample sequence, the visits
// emitted here are byte-identical to VisitDetector::detect over the same
// sequence — the streaming engine's batch-equivalence guarantee rests on
// that property, which tests/test_stream_visits.cpp enforces over random
// traces.
//
// State is O(1) per user: the running window centroid, the window bounds,
// and the previous sample's WiFi fingerprint (the stationary classifier's
// only cross-sample dependency).
#pragma once

#include <optional>

#include "stream/snapshot_io.h"
#include "trace/visit_detector.h"

namespace geovalid::stream {

class OnlineVisitDetector {
 public:
  explicit OnlineVisitDetector(trace::VisitDetectorConfig config = {});

  /// Feeds the next sample (timestamps must be non-decreasing; mirrors
  /// GpsTrace order). Returns the visit this sample closed, if any.
  std::optional<trace::Visit> push(const trace::GpsPoint& p);

  /// Ends the stream: closes and possibly emits the in-progress window.
  /// The detector is reusable afterwards (state fully reset).
  std::optional<trace::Visit> finish();

  /// Start time of the in-progress candidate window, if one is open. Any
  /// visit emitted in the future starts at or after this time — the
  /// matcher's finalization barrier depends on it.
  [[nodiscard]] std::optional<trace::TimeSec> open_window_start() const;

  [[nodiscard]] const trace::VisitDetectorConfig& config() const {
    return config_;
  }

  /// Checkpoint support: serializes every cross-sample field (classifier
  /// run state + candidate window), so a load()ed detector continues the
  /// stream bit-identically to one that never stopped.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  [[nodiscard]] trace::MotionState classify(const trace::GpsPoint& p);
  [[nodiscard]] std::optional<trace::Visit> close_window();

  trace::VisitDetectorConfig config_;

  // Stationary-classifier state (see trace::classify_motion): length of the
  // current run of consecutive samples sharing a non-zero fingerprint.
  bool has_prev_sample_ = false;
  std::uint32_t prev_fingerprint_ = 0;
  std::size_t wifi_run_ = 0;

  // Candidate-window state (see VisitDetector::detect).
  bool in_window_ = false;
  double lat_sum_ = 0.0;
  double lon_sum_ = 0.0;
  std::size_t fix_count_ = 0;
  trace::TimeSec window_start_ = 0;
  trace::TimeSec window_end_ = 0;
};

}  // namespace geovalid::stream
