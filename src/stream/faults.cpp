#include "stream/faults.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

namespace geovalid::stream {
namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& what) {
  throw std::invalid_argument("fault spec '" + std::string(spec) +
                              "': " + what);
}

/// splitmix64 finalizer — the same mix the engine uses for shard hashing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Counter-based uniform double in [0, 1): hash of (seed, offset, lane).
double uniform01(std::uint64_t seed, std::uint64_t offset,
                 std::uint64_t lane) {
  const std::uint64_t h = mix64(mix64(seed ^ mix64(lane)) ^ offset);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t parse_u64(std::string_view spec, std::string_view s,
                        const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    bad_spec(spec, std::string(what) + " expects a non-negative integer, got '" +
                       std::string(s) + "'");
  }
  return v;
}

double parse_rate(std::string_view spec, std::string_view s) {
  double v = 0.0;
  char buf[64];
  if (s.empty() || s.size() >= sizeof(buf)) {
    bad_spec(spec, "corrupt expects a probability");
  }
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  v = std::strtod(buf, &end);
  if (end != buf + s.size() || !(v > 0.0) || v > 1.0) {
    bad_spec(spec, "corrupt expects a probability in (0, 1], got '" +
                       std::string(s) + "'");
  }
  return v;
}

}  // namespace

FaultPlan parse_fault_spec(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  bool any = false;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view clause =
        spec.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    start = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (clause.empty()) {
      if (spec.empty()) break;
      bad_spec(spec, "empty clause");
    }
    any = true;
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      bad_spec(spec, "clause '" + std::string(clause) +
                         "' is not of the form key=value");
    }
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    if (key == "corrupt") {
      plan.corrupt_rate = parse_rate(spec, value);
    } else if (key == "kill") {
      plan.kill_at = parse_u64(spec, value, "kill");
      if (plan.kill_at == 0) bad_spec(spec, "kill offset must be positive");
    } else if (key == "seed") {
      plan.seed = parse_u64(spec, value, "seed");
    } else if (key == "stall") {
      // stall=SHARD@OFFSET:MS
      const std::size_t at = value.find('@');
      const std::size_t colon = value.find(':', at);
      if (at == std::string_view::npos || colon == std::string_view::npos) {
        bad_spec(spec, "stall expects SHARD@OFFSET:MILLIS, got '" +
                           std::string(value) + "'");
      }
      FaultPlan::Stall stall;
      stall.shard = static_cast<std::size_t>(
          parse_u64(spec, value.substr(0, at), "stall shard"));
      stall.after_events =
          parse_u64(spec, value.substr(at + 1, colon - at - 1), "stall offset");
      stall.millis = static_cast<std::uint32_t>(
          parse_u64(spec, value.substr(colon + 1), "stall millis"));
      plan.stalls.push_back(stall);
    } else {
      bad_spec(spec, "unknown clause '" + std::string(key) + "'");
    }
  }
  if (!any && !spec.empty()) bad_spec(spec, "no clauses");
  return plan;
}

std::vector<std::uint64_t> FaultInjector::corrupt_stream(
    std::vector<Event>& events) const {
  std::vector<std::uint64_t> corrupted;
  if (!(plan_.corrupt_rate > 0.0)) return corrupted;

  // Clean per-user timestamps seen so far — corrupted events are excluded,
  // matching the engine, whose quarantine drops them before they advance
  // the per-user clock.
  std::unordered_map<trace::UserId, trace::TimeSec> last_clean_t;

  for (std::uint64_t i = 0; i < events.size(); ++i) {
    Event& e = events[i];
    if (uniform01(plan_.seed, i, 0) >= plan_.corrupt_rate) {
      last_clean_t[e.user] = e.time();
      continue;
    }

    geo::LatLon& pos =
        e.kind == Event::Kind::kGps ? e.gps.position : e.checkin.location;
    trace::TimeSec& t = e.kind == Event::Kind::kGps ? e.gps.t : e.checkin.t;

    std::uint64_t kind = mix64(mix64(plan_.seed ^ 0xFA17u) ^ i) % 8;
    const auto prev = last_clean_t.find(e.user);
    if (kind == 6 && prev == last_clean_t.end()) {
      // A stale timestamp needs per-user history; a first event falls back
      // to a corruption the quarantine catches unconditionally.
      kind = 0;
    }
    switch (kind) {
      case 0:
        pos.lat_deg = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        pos.lon_deg = std::numeric_limits<double>::infinity();
        break;
      case 2:
        pos.lat_deg = 91.5;
        break;
      case 3:
        pos.lon_deg = -212.75;
        break;
      case 4:
        t = -1 - static_cast<trace::TimeSec>(i % 1000);
        break;
      case 5:
        t = trace::kMaxEventTime + 1 + static_cast<trace::TimeSec>(i % 1000);
        break;
      case 6:
        // Regress far behind the user's clean clock: stale beyond any
        // plausible reorder window.
        t = prev->second - trace::days(400);
        if (t < 0) t = -1;  // still rejected (timestamp_overflow)
        break;
      case 7:
        e.user |= 0x80000000u;  // outside any enrolled id space
        break;
      default:
        break;
    }
    corrupted.push_back(i);
  }
  return corrupted;
}

void FaultInjector::on_shard_event(std::size_t shard,
                                   std::uint64_t shard_offset) const {
  for (const FaultPlan::Stall& s : plan_.stalls) {
    if (s.shard == shard && s.after_events == shard_offset && s.millis > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(s.millis));
    }
  }
}

NetFaultPlan parse_net_fault_spec(std::string_view spec) {
  NetFaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view clause =
        spec.substr(start, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma - start);
    start = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (clause.empty()) {
      if (spec.empty()) break;
      bad_spec(spec, "empty clause");
    }
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      bad_spec(spec, "clause '" + std::string(clause) +
                         "' is not of the form key=value");
    }
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(spec, value, "seed");
      continue;
    }
    NetFault fault;
    if (key == "netdrop") {
      fault.kind = NetFaultKind::kDrop;
    } else if (key == "netreset") {
      fault.kind = NetFaultKind::kReset;
    } else if (key == "netstall") {
      fault.kind = NetFaultKind::kStall;
    } else {
      bad_spec(spec, "unknown clause '" + std::string(key) + "'");
    }
    // TARGET@COUNT, with a :MILLIS tail for netstall only.
    const std::size_t at = value.find('@');
    if (at == std::string_view::npos || at == 0) {
      bad_spec(spec, std::string(key) + " expects TARGET@COUNT" +
                         (fault.kind == NetFaultKind::kStall ? ":MILLIS"
                                                             : "") +
                         ", got '" + std::string(value) + "'");
    }
    fault.target = std::string(value.substr(0, at));
    std::string_view tail = value.substr(at + 1);
    if (fault.kind == NetFaultKind::kStall) {
      const std::size_t colon = tail.find(':');
      if (colon == std::string_view::npos) {
        bad_spec(spec, "netstall expects TARGET@COUNT:MILLIS, got '" +
                           std::string(value) + "'");
      }
      fault.millis = static_cast<std::uint32_t>(
          parse_u64(spec, tail.substr(colon + 1), "netstall millis"));
      if (fault.millis == 0) {
        bad_spec(spec, "netstall millis must be positive");
      }
      tail = tail.substr(0, colon);
    }
    fault.after_records =
        parse_u64(spec, tail, (std::string(key) + " count").c_str());
    if (fault.after_records == 0) {
      bad_spec(spec, std::string(key) + " count must be positive");
    }
    plan.faults.push_back(std::move(fault));
  }
  return plan;
}

NetFaultInjector::Triggered NetFaultInjector::on_records(
    std::string_view target, std::uint64_t n) {
  Triggered out;
  if (plan_.faults.empty() || n == 0) return out;
  std::uint64_t& count = counts_[std::string(target)];
  const std::uint64_t before = count;
  count += n;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    if (fired_[i]) continue;
    const NetFault& f = plan_.faults[i];
    if (f.target != target) continue;
    if (before < f.after_records && count >= f.after_records) {
      fired_[i] = true;
      switch (f.kind) {
        case NetFaultKind::kDrop:
          out.drop = true;
          break;
        case NetFaultKind::kReset:
          out.reset = true;
          break;
        case NetFaultKind::kStall:
          out.stall_millis = std::max(out.stall_millis, f.millis);
          break;
      }
    }
  }
  return out;
}

std::uint32_t backoff_with_jitter(std::uint32_t base_ms, std::uint32_t cap_ms,
                                  std::uint32_t attempt, std::uint64_t seed,
                                  std::uint64_t lane) {
  if (base_ms == 0) base_ms = 1;
  if (cap_ms < base_ms) cap_ms = base_ms;
  // base * 2^attempt without overflow: once the shift alone clears the
  // cap, the product would too.
  std::uint64_t backoff = base_ms;
  if (attempt >= 32 || (backoff << attempt) >= cap_ms) {
    backoff = cap_ms;
  } else {
    backoff <<= attempt;
  }
  const double jitter = 0.5 + 0.5 * uniform01(seed, attempt, lane);
  const double ms = static_cast<double>(backoff) * jitter;
  return static_cast<std::uint32_t>(ms < 1.0 ? 1.0 : ms);
}

}  // namespace geovalid::stream
