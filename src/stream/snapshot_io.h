// Binary snapshot encoding for the streaming engine's checkpoint payloads.
//
// The writer/reader pair defines the byte-level vocabulary every piece of
// checkpointable state speaks: fixed-width little-endian integers and
// bit-cast doubles, so a payload produced on any platform restores
// bit-identically on any other. Nothing here knows about files, headers or
// checksums — that container lives in stream/checkpoint.h; this layer is
// shared by the engine, the online detector and the online matcher, whose
// save()/load() methods are the single source of truth for what state a
// shard carries.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace geovalid::stream {

/// Thrown by SnapshotReader when a payload ends early or contains a value
/// outside its field's domain. The checkpoint container's CRC makes this
/// unreachable for honest files; it exists so a corrupt payload fails loud
/// instead of restoring garbage state.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends fixed-width little-endian fields to a growing byte buffer.
/// Multi-byte fields are staged in a local array and appended as one block:
/// one capacity check per field instead of one per byte, which matters when
/// a checkpoint serializes hundreds of thousands of fields on the engine's
/// quiesce path.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) {
      b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    buf_.append(b, sizeof(b));
  }

  void u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    buf_.append(b, sizeof(b));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Bit-exact: the double's IEEE-754 pattern, not a decimal rendering.
  void f64(double v);

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed opaque byte string (u64 count + raw bytes): how one
  /// payload embeds another (the serve checkpoint wraps the engine's).
  void blob(std::string_view bytes) {
    u64(bytes.size());
    buf_.append(bytes);
  }

  /// Pre-sizes the buffer; callers that know the approximate payload size
  /// (the engine remembers its last checkpoint's) avoid regrowth copies.
  void reserve(std::size_t n) { buf_.reserve(n); }

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Consumes fields written by SnapshotWriter, in the same order. Every read
/// bounds-checks; overrunning the payload throws SnapshotError.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(next()); }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64();

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw SnapshotError("snapshot: boolean field out of domain");
    return v != 0;
  }

  /// Size prefix of a following sequence, bounded so a corrupt length can
  /// never trigger a multi-gigabyte allocation before the next read fails.
  std::size_t length();

  /// Reads a SnapshotWriter::blob(): bounded length prefix + raw bytes.
  std::string blob() {
    const std::size_t n = length();
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  char next() {
    require(1);
    return data_[pos_++];
  }

  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw SnapshotError("snapshot: payload truncated");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) over `data`. The
/// checkpoint container stores this over its payload so torn or bit-flipped
/// files are rejected instead of restored.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

}  // namespace geovalid::stream
