#include "stream/snapshot_io.h"

#include <array>
#include <bit>

namespace geovalid::stream {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

std::size_t SnapshotReader::length() {
  const std::uint64_t n = u64();
  // A sequence element is at least one byte, so a valid length can never
  // exceed the bytes left in the payload.
  if (n > remaining()) {
    throw SnapshotError("snapshot: sequence length exceeds payload");
  }
  return static_cast<std::size_t>(n);
}

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace geovalid::stream
