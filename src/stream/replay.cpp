#include "stream/replay.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace geovalid::stream {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

obs::Histogram& replay_stage_ns(const char* stage) {
  return obs::registry().histogram(
      "stream_replay_stage_ns",
      "Wall time of replay stages (nanoseconds); one sample per replay",
      {{"stage", stage}});
}

}  // namespace

std::vector<Event> flatten_dataset(const trace::Dataset& ds) {
  std::size_t total = 0;
  for (const trace::UserRecord& u : ds.users()) {
    total += u.gps.size() + u.checkins.size();
  }

  std::vector<Event> events;
  events.reserve(total);
  for (const trace::UserRecord& u : ds.users()) {
    for (const trace::GpsPoint& p : u.gps.points()) {
      events.push_back(Event::gps_sample(u.id, p));
    }
    for (const trace::Checkin& c : u.checkins.events()) {
      events.push_back(Event::checkin_event(u.id, c));
    }
  }
  // Stable: equal timestamps keep per-user insertion order, so each user's
  // stream stays time-ordered after the global merge.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.time() < b.time();
                   });
  return events;
}

ReplayStats replay_events(std::span<const Event> events, StreamEngine& engine,
                          const ReplayConfig& config) {
  ReplayStats stats;
  const std::uint64_t size = events.size();
  const std::uint64_t begin =
      std::min<std::uint64_t>(config.resume_cursor, size);

  const bool throttled = config.rate_events_per_sec > 0.0;
  // Re-sync the pacing clock every chunk rather than every event: a sleep
  // per event would cap the achievable rate at the scheduler's granularity.
  const std::size_t chunk =
      throttled ? std::max<std::size_t>(
                      1, static_cast<std::size_t>(
                             config.rate_events_per_sec / 100.0))
                : 0;

  const bool snapshotting =
      config.snapshot_interval_seconds > 0.0 && config.on_snapshot != nullptr;
  const bool checkpointing = config.checkpoint_interval_events > 0 &&
                             config.on_checkpoint != nullptr;

  const auto start = Clock::now();
  auto next_snapshot =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      config.snapshot_interval_seconds));
  std::uint64_t cursor = begin;
  {
    obs::StageTimer feed_timer(&replay_stage_ns("feed"));
    for (std::uint64_t i = begin; i < size; ++i) {
      if (config.kill_at > 0 && i >= config.kill_at) {
        stats.killed = true;
        break;
      }
      if ((config.stop != nullptr && *config.stop != 0) ||
          (config.stop_after > 0 && i >= config.stop_after)) {
        stats.interrupted = true;
        break;
      }
      const Event& e = events[i];
      if (e.kind == Event::Kind::kGps) {
        ++stats.gps_samples;
      } else {
        ++stats.checkins;
      }
      engine.push(e);
      cursor = i + 1;
      const std::uint64_t fed = cursor - begin;
      if (checkpointing && fed % config.checkpoint_interval_events == 0) {
        engine.drain();
        config.on_checkpoint(cursor);
      }
      if (throttled && fed % chunk == 0) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(fed) /
                            config.rate_events_per_sec));
        std::this_thread::sleep_until(due);
      }
      // The clock read is amortized over 256 events so the snapshot check
      // costs nothing at full feed rates.
      if (snapshotting && (i & 0xFF) == 0xFF && Clock::now() >= next_snapshot) {
        config.on_snapshot();
        next_snapshot = Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                config.snapshot_interval_seconds));
      }
    }
  }
  stats.cursor = cursor;
  stats.events = static_cast<std::size_t>(cursor - begin);
  stats.feed_seconds = seconds_since(start);

  const auto drain_start = Clock::now();
  {
    obs::StageTimer drain_timer(&replay_stage_ns("drain"));
    if (stats.killed) {
      // Simulated crash: abandon in-flight state. No checkpoint — recovery
      // must come from the last periodic one, as after a real crash.
      engine.shutdown();
    } else if (stats.interrupted) {
      // Graceful shutdown: quiesce and hand the exact stop cursor to the
      // checkpoint callback, then leave without end-of-stream finalization
      // (the stream is not over, merely paused until --resume).
      engine.drain();
      if (config.on_checkpoint != nullptr) config.on_checkpoint(cursor);
      engine.shutdown();
    } else {
      engine.finish();
    }
  }
  stats.drain_seconds = seconds_since(drain_start);

  stats.wall_seconds = stats.feed_seconds + stats.drain_seconds;
  if (stats.wall_seconds > 0.0) {
    stats.events_per_sec =
        static_cast<double>(stats.events) / stats.wall_seconds;
  }
  return stats;
}

ReplayStats replay_dataset(const trace::Dataset& ds, StreamEngine& engine,
                           const ReplayConfig& config) {
  const std::vector<Event> events = flatten_dataset(ds);
  return replay_events(events, engine, config);
}

}  // namespace geovalid::stream
