// Deterministic fault injection for the streaming engine.
//
// Robustness claims are only as good as the failures they were tested
// against, so the crash-recovery and quarantine test suites (and the CLI's
// `--inject-faults`) drive the engine through *reproducible* disasters:
// corrupted records, stalled shards, and a simulated crash at an exact
// stream offset. Everything is derived from a user-supplied seed via
// counter-based hashing — no global RNG state — so the same spec + seed
// always corrupts the same records in the same way, which is what lets a
// test assert "quarantined count == injected count, verdicts identical to
// the clean run minus exactly those records".
//
// Spec grammar (clauses comma-separated, each `key=value`):
//
//   corrupt=R         corrupt each record with probability R in (0, 1]
//   kill=N            simulate a crash before stream offset N (no
//                     checkpoint is written — recovery must come from the
//                     last periodic one)
//   stall=S@N:MS      shard S sleeps MS milliseconds before processing its
//                     N-th event (exercises backpressure + liveness)
//   seed=K            corruption RNG seed (default 1)
//
// Example: `corrupt=0.01,stall=1@500:20,kill=9000,seed=7`.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "stream/event.h"

namespace geovalid::stream {

struct FaultPlan {
  /// Per-record corruption probability in [0, 1].
  double corrupt_rate = 0.0;

  /// Simulated crash: the replay driver stops abruptly before feeding the
  /// event at this absolute stream offset. 0 = never.
  std::uint64_t kill_at = 0;

  struct Stall {
    std::size_t shard = 0;          ///< shard index that stalls
    std::uint64_t after_events = 0; ///< fires before its N-th processed event
    std::uint32_t millis = 0;       ///< stall duration
  };
  std::vector<Stall> stalls;

  std::uint64_t seed = 1;
};

/// Parses the spec grammar above; throws std::invalid_argument with a
/// pointed message on any malformed clause.
[[nodiscard]] FaultPlan parse_fault_spec(std::string_view spec);

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Deterministically corrupts records in place (NaN/inf/out-of-range
  /// coordinates, timestamp overflow, stale timestamps, unknown user ids)
  /// and returns the corrupted offsets. Every corruption is chosen so the
  /// engine's quarantine provably rejects it: stale-timestamp corruption is
  /// only applied to a user's non-first event, and unknown-user corruption
  /// sets the id's top bit (callers must enroll the original id space via
  /// StreamEngineConfig::known_users).
  std::vector<std::uint64_t> corrupt_stream(std::vector<Event>& events) const;

  /// Shard-worker hook: called with the shard's local event ordinal before
  /// each event is processed; sleeps when a stall clause matches.
  void on_shard_event(std::size_t shard, std::uint64_t shard_offset) const;

 private:
  FaultPlan plan_;
};

}  // namespace geovalid::stream
