// Deterministic fault injection for the streaming engine.
//
// Robustness claims are only as good as the failures they were tested
// against, so the crash-recovery and quarantine test suites (and the CLI's
// `--inject-faults`) drive the engine through *reproducible* disasters:
// corrupted records, stalled shards, and a simulated crash at an exact
// stream offset. Everything is derived from a user-supplied seed via
// counter-based hashing — no global RNG state — so the same spec + seed
// always corrupts the same records in the same way, which is what lets a
// test assert "quarantined count == injected count, verdicts identical to
// the clean run minus exactly those records".
//
// Spec grammar (clauses comma-separated, each `key=value`):
//
//   corrupt=R         corrupt each record with probability R in (0, 1]
//   kill=N            simulate a crash before stream offset N (no
//                     checkpoint is written — recovery must come from the
//                     last periodic one)
//   stall=S@N:MS      shard S sleeps MS milliseconds before processing its
//                     N-th event (exercises backpressure + liveness)
//   seed=K            corruption RNG seed (default 1)
//
// Example: `corrupt=0.01,stall=1@500:20,kill=9000,seed=7`.
//
// The *network* grammar (NetFaultPlan / parse_net_fault_spec) extends the
// same philosophy to the transport layer. Targets are named — a backend
// ring name in the cluster router, a connection index in the loadgen —
// and triggers are record counters, not wall clocks, so a chaos drill
// replays identically:
//
//   netdrop=T@N       after N records queued for target T, its connection
//                     is severed gracefully (FIN) — the failure surfaces
//                     as peer EOF, not as a send error
//   netstall=T@N:MS   after N records, sends to T stall (as if the kernel
//                     returned EAGAIN) for MS milliseconds
//   netreset=T@N      after N records, the next send to T fails abruptly,
//                     as if the kernel returned ECONNRESET
//   seed=K            jitter seed for the paired backoff schedule
//
// Example: `netreset=b1@500,netstall=b2@100:250,seed=7`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stream/event.h"

namespace geovalid::stream {

struct FaultPlan {
  /// Per-record corruption probability in [0, 1].
  double corrupt_rate = 0.0;

  /// Simulated crash: the replay driver stops abruptly before feeding the
  /// event at this absolute stream offset. 0 = never.
  std::uint64_t kill_at = 0;

  struct Stall {
    std::size_t shard = 0;          ///< shard index that stalls
    std::uint64_t after_events = 0; ///< fires before its N-th processed event
    std::uint32_t millis = 0;       ///< stall duration
  };
  std::vector<Stall> stalls;

  std::uint64_t seed = 1;
};

/// Parses the spec grammar above; throws std::invalid_argument with a
/// pointed message on any malformed clause.
[[nodiscard]] FaultPlan parse_fault_spec(std::string_view spec);

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Deterministically corrupts records in place (NaN/inf/out-of-range
  /// coordinates, timestamp overflow, stale timestamps, unknown user ids)
  /// and returns the corrupted offsets. Every corruption is chosen so the
  /// engine's quarantine provably rejects it: stale-timestamp corruption is
  /// only applied to a user's non-first event, and unknown-user corruption
  /// sets the id's top bit (callers must enroll the original id space via
  /// StreamEngineConfig::known_users).
  std::vector<std::uint64_t> corrupt_stream(std::vector<Event>& events) const;

  /// Shard-worker hook: called with the shard's local event ordinal before
  /// each event is processed; sleeps when a stall clause matches.
  void on_shard_event(std::size_t shard, std::uint64_t shard_offset) const;

 private:
  FaultPlan plan_;
};

enum class NetFaultKind : std::uint8_t { kDrop, kStall, kReset };

struct NetFault {
  NetFaultKind kind = NetFaultKind::kReset;
  std::string target;              ///< backend ring name / connection index
  std::uint64_t after_records = 0; ///< fires when the target's count reaches this
  std::uint32_t millis = 0;        ///< stall duration (kStall only)
};

struct NetFaultPlan {
  std::vector<NetFault> faults;
  std::uint64_t seed = 1;
  [[nodiscard]] bool empty() const { return faults.empty(); }
};

/// Parses the network grammar above; throws std::invalid_argument with a
/// pointed message on any malformed clause. An empty spec is a valid
/// empty plan.
[[nodiscard]] NetFaultPlan parse_net_fault_spec(std::string_view spec);

/// Arms NetFaultPlan clauses from per-target record counters. Each clause
/// fires exactly once, when its target's running count first reaches
/// `after_records` — counter-based, so the same spec against the same
/// record sequence always severs the same connection at the same record.
/// Thread-compatible, not thread-safe: the router loop is single-threaded
/// and the loadgen consults it under its own lock.
class NetFaultInjector {
 public:
  explicit NetFaultInjector(NetFaultPlan plan)
      : plan_(std::move(plan)), fired_(plan_.faults.size(), false) {}

  [[nodiscard]] const NetFaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool empty() const { return plan_.empty(); }

  /// Everything this advance triggered. At most one connection-severing
  /// kind (reset wins over drop when both cross on the same record) plus
  /// an optional stall window.
  struct Triggered {
    bool drop = false;
    bool reset = false;
    std::uint32_t stall_millis = 0;
  };

  /// Advances `target`'s record counter by `n` and returns the clauses
  /// whose thresholds that advance crossed.
  Triggered on_records(std::string_view target, std::uint64_t n);

 private:
  NetFaultPlan plan_;
  std::vector<bool> fired_;
  std::unordered_map<std::string, std::uint64_t> counts_;
};

/// Deterministic jittered exponential backoff: min(cap, base * 2^attempt)
/// scaled by a counter-based uniform in [0.5, 1.0). Shared by the router's
/// reconnect loop and the loadgen's retry loop so chaos drills replay the
/// same schedule from the same seed.
[[nodiscard]] std::uint32_t backoff_with_jitter(std::uint32_t base_ms,
                                                std::uint32_t cap_ms,
                                                std::uint32_t attempt,
                                                std::uint64_t seed,
                                                std::uint64_t lane);

}  // namespace geovalid::stream
