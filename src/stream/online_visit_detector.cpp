#include "stream/online_visit_detector.h"

#include "geo/geodesic.h"

namespace geovalid::stream {

OnlineVisitDetector::OnlineVisitDetector(trace::VisitDetectorConfig config)
    : config_(config) {}

trace::MotionState OnlineVisitDetector::classify(const trace::GpsPoint& p) {
  // Incremental transcription of trace::classify_motion: the WiFi run
  // counter is the only state carried between samples.
  if (has_prev_sample_ && p.wifi_fingerprint != 0 &&
      p.wifi_fingerprint == prev_fingerprint_) {
    ++wifi_run_;
  } else {
    wifi_run_ = 0;
  }
  has_prev_sample_ = true;
  prev_fingerprint_ = p.wifi_fingerprint;

  if (p.has_fix) return trace::MotionState::kUnknown;  // GPS logic decides

  const bool accel_quiet =
      p.accel_variance <= config_.stationary.accel_variance_max;
  const bool wifi_stable = wifi_run_ >= config_.stationary.wifi_stable_samples;

  if (accel_quiet && (wifi_stable || p.wifi_fingerprint != 0)) {
    return trace::MotionState::kStationary;
  }
  if (!accel_quiet) return trace::MotionState::kMoving;
  return trace::MotionState::kUnknown;
}

std::optional<trace::Visit> OnlineVisitDetector::close_window() {
  std::optional<trace::Visit> emitted;
  if (in_window_ && fix_count_ > 0 &&
      window_end_ - window_start_ >= config_.min_duration) {
    const auto n = static_cast<double>(fix_count_);
    emitted = trace::Visit{window_start_, window_end_,
                           geo::LatLon{lat_sum_ / n, lon_sum_ / n}};
  }
  lat_sum_ = lon_sum_ = 0.0;
  fix_count_ = 0;
  in_window_ = false;
  return emitted;
}

std::optional<trace::Visit> OnlineVisitDetector::push(
    const trace::GpsPoint& p) {
  const trace::MotionState motion = classify(p);

  std::optional<trace::Visit> emitted;
  if (in_window_ && p.t - window_end_ > config_.max_sample_gap) {
    emitted = close_window();
  }

  if (!p.has_fix) {
    // Sensor evidence decides whether an ongoing stay continues.
    if (!in_window_) return emitted;
    if (motion == trace::MotionState::kMoving) {
      auto closed = close_window();
      if (closed) emitted = closed;
    } else {
      // Stationary or unknown: optimistically extend; a later far-away fix
      // will terminate the window anyway.
      window_end_ = p.t;
    }
    return emitted;
  }

  if (!in_window_) {
    lat_sum_ = p.position.lat_deg;
    lon_sum_ = p.position.lon_deg;
    fix_count_ = 1;
    window_start_ = window_end_ = p.t;
    in_window_ = true;
    return emitted;
  }

  const auto n = static_cast<double>(fix_count_);
  const geo::LatLon centroid{lat_sum_ / n, lon_sum_ / n};
  const double dist = geo::fast_distance_m(centroid, p.position);
  if (dist <= config_.radius_m) {
    lat_sum_ += p.position.lat_deg;
    lon_sum_ += p.position.lon_deg;
    ++fix_count_;
    window_end_ = p.t;
  } else {
    auto closed = close_window();
    if (closed) emitted = closed;
    lat_sum_ = p.position.lat_deg;
    lon_sum_ = p.position.lon_deg;
    fix_count_ = 1;
    window_start_ = window_end_ = p.t;
    in_window_ = true;
  }
  return emitted;
}

std::optional<trace::Visit> OnlineVisitDetector::finish() {
  auto emitted = close_window();
  has_prev_sample_ = false;
  prev_fingerprint_ = 0;
  wifi_run_ = 0;
  return emitted;
}

std::optional<trace::TimeSec> OnlineVisitDetector::open_window_start() const {
  if (!in_window_) return std::nullopt;
  return window_start_;
}

void OnlineVisitDetector::save(SnapshotWriter& w) const {
  w.boolean(has_prev_sample_);
  w.u32(prev_fingerprint_);
  w.u64(wifi_run_);
  w.boolean(in_window_);
  w.f64(lat_sum_);
  w.f64(lon_sum_);
  w.u64(fix_count_);
  w.i64(window_start_);
  w.i64(window_end_);
}

void OnlineVisitDetector::load(SnapshotReader& r) {
  has_prev_sample_ = r.boolean();
  prev_fingerprint_ = r.u32();
  wifi_run_ = static_cast<std::size_t>(r.u64());
  in_window_ = r.boolean();
  lat_sum_ = r.f64();
  lon_sum_ = r.f64();
  fix_count_ = static_cast<std::size_t>(r.u64());
  window_start_ = r.i64();
  window_end_ = r.i64();
}

}  // namespace geovalid::stream
