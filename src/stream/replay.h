// Replay driver: feeds a batch trace::Dataset through the streaming engine
// as the live deployment would have seen it — every user's GPS samples and
// checkins merged into one global timestamp-ordered event stream.
//
// This is how the engine is validated against the batch pipeline (replay a
// generated study, compare partitions) and how it is benchmarked
// (bench_stream_throughput replays unthrottled and reports events/sec).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "stream/engine.h"
#include "trace/dataset.h"

namespace geovalid::stream {

struct ReplayConfig {
  /// Target feed rate in events per second; 0 replays as fast as the
  /// engine accepts events.
  double rate_events_per_sec = 0.0;

  /// When > 0 and on_snapshot is set, on_snapshot() is invoked from the
  /// feed loop roughly every this many seconds (checked every 256 events,
  /// so very slow feeds tick late, never early). The CLI uses this to
  /// print periodic metrics snapshots during `geovalid stream`.
  double snapshot_interval_seconds = 0.0;
  std::function<void()> on_snapshot;
};

struct ReplayStats {
  std::size_t events = 0;
  std::size_t gps_samples = 0;
  std::size_t checkins = 0;

  double feed_seconds = 0.0;   ///< pushing (includes throttle sleeps)
  double drain_seconds = 0.0;  ///< finish(): last push -> all verdicts final
  double wall_seconds = 0.0;   ///< feed + drain
  double events_per_sec = 0.0; ///< events / wall_seconds
};

/// Flattens a dataset into the merged event stream, ordered by timestamp
/// (ties keep each user's GPS-before-checkin file order, so per-user time
/// order — the engine's only requirement — always holds).
[[nodiscard]] std::vector<Event> flatten_dataset(const trace::Dataset& ds);

/// Pushes `events` (already per-user time-ordered) into `engine`, then
/// finishes it. Returns throughput/latency counters.
ReplayStats replay_events(std::span<const Event> events, StreamEngine& engine,
                          const ReplayConfig& config = {});

/// flatten_dataset + replay_events in one call.
ReplayStats replay_dataset(const trace::Dataset& ds, StreamEngine& engine,
                           const ReplayConfig& config = {});

}  // namespace geovalid::stream
