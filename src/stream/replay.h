// Replay driver: feeds a batch trace::Dataset through the streaming engine
// as the live deployment would have seen it — every user's GPS samples and
// checkins merged into one global timestamp-ordered event stream.
//
// This is how the engine is validated against the batch pipeline (replay a
// generated study, compare partitions) and how it is benchmarked
// (bench_stream_throughput replays unthrottled and reports events/sec).
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "stream/engine.h"
#include "trace/dataset.h"

namespace geovalid::stream {

struct ReplayConfig {
  /// Target feed rate in events per second; 0 replays as fast as the
  /// engine accepts events.
  double rate_events_per_sec = 0.0;

  /// When > 0 and on_snapshot is set, on_snapshot() is invoked from the
  /// feed loop roughly every this many seconds (checked every 256 events,
  /// so very slow feeds tick late, never early). The CLI uses this to
  /// print periodic metrics snapshots during `geovalid stream`.
  double snapshot_interval_seconds = 0.0;
  std::function<void()> on_snapshot;

  /// Resume support: skip events before this absolute stream offset (they
  /// are covered by the checkpoint the engine was restored from).
  std::uint64_t resume_cursor = 0;

  /// When > 0 and on_checkpoint is set, the feed loop calls
  /// StreamEngine::drain() and then on_checkpoint(cursor) every this many
  /// fed events (cursor = absolute offset of the next unfed event, so the
  /// engine state handed to the callback covers exactly [0, cursor)).
  std::uint64_t checkpoint_interval_events = 0;
  std::function<void(std::uint64_t cursor)> on_checkpoint;

  /// Cooperative stop flag (safe to set from a signal handler). When it
  /// becomes non-zero the feed loop stops, drains, takes a final
  /// checkpoint (if configured) and returns with `interrupted` set — the
  /// graceful SIGTERM path.
  const volatile std::sig_atomic_t* stop = nullptr;

  /// Deterministic graceful stop before feeding this absolute offset —
  /// exactly the `stop` path, minus the signal-delivery timing. 0 = never.
  std::uint64_t stop_after = 0;

  /// Simulated crash: stop abruptly before feeding this absolute offset —
  /// no drain, no checkpoint, engine shut down mid-flight. 0 = never.
  /// Drives the crash-recovery equivalence tests.
  std::uint64_t kill_at = 0;
};

struct ReplayStats {
  std::size_t events = 0;  ///< events fed this run (excludes skipped prefix)
  std::size_t gps_samples = 0;
  std::size_t checkins = 0;

  double feed_seconds = 0.0;   ///< pushing (includes throttle sleeps)
  double drain_seconds = 0.0;  ///< finish(): last push -> all verdicts final
  double wall_seconds = 0.0;   ///< feed + drain
  double events_per_sec = 0.0; ///< events / wall_seconds

  /// Absolute offset of the first event NOT applied to the engine: the
  /// stream length after a full run, the stop/kill point otherwise.
  std::uint64_t cursor = 0;
  bool interrupted = false;  ///< stopped gracefully via ReplayConfig::stop
  bool killed = false;       ///< stopped abruptly via ReplayConfig::kill_at
};

/// Flattens a dataset into the merged event stream, ordered by timestamp
/// (ties keep each user's GPS-before-checkin file order, so per-user time
/// order — the engine's only requirement — always holds).
[[nodiscard]] std::vector<Event> flatten_dataset(const trace::Dataset& ds);

/// Pushes `events` (already per-user time-ordered) into `engine`, then
/// finishes it. Returns throughput/latency counters.
ReplayStats replay_events(std::span<const Event> events, StreamEngine& engine,
                          const ReplayConfig& config = {});

/// flatten_dataset + replay_events in one call.
ReplayStats replay_dataset(const trace::Dataset& ds, StreamEngine& engine,
                           const ReplayConfig& config = {});

}  // namespace geovalid::stream
