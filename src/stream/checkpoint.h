// Checkpoint container: versioned, checksummed snapshots on disk.
//
// A checkpoint freezes the full streaming-engine state at an exact stream
// offset (the *cursor*): every user's detector window and matcher queues,
// plus the verdict totals accumulated so far. The container wraps the
// engine payload (StreamEngine::save_state()) in a magic + version header,
// the cursor, and a trailing CRC-32, so restore can tell "valid snapshot"
// from "torn write" from "newer format than this binary understands".
//
// On-disk layout (all integers little-endian):
//
//   u32  magic      "GVCP"
//   u32  version    kCheckpointVersion
//   u64  cursor     absolute stream offset the payload covers
//   u64  size       payload byte count
//   ...  payload    StreamEngine::save_state() bytes
//   u32  crc32      over everything above
//
// Files are named `checkpoint-<cursor, zero-padded>.gvck` and written
// atomically (tmp + rename), so a crash mid-write leaves at worst a stray
// tmp file, never a half checkpoint under the real name. restore_latest()
// walks candidates newest-first and skips corrupt ones — a torn latest
// checkpoint costs one interval of replay, not the run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace geovalid::stream {

inline constexpr std::uint32_t kCheckpointMagic = 0x50435647;  // "GVCP"
/// Format revision 2: engine payloads carry per-user verdict shares and
/// interarrival statistics (the serve query endpoints); v1 payloads are
/// refused with kVersionMismatch rather than restored without them.
inline constexpr std::uint32_t kCheckpointVersion = 2;

class CheckpointError : public std::runtime_error {
 public:
  enum class Kind {
    kCorrupt,          ///< bad magic, truncated, or checksum mismatch
    kVersionMismatch,  ///< well-formed but written by a different format rev
    kConfigMismatch,   ///< payload was produced under a different pipeline
                       ///< config (resuming would change verdicts silently)
  };

  CheckpointError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct Checkpoint {
  /// Absolute stream offset: events [0, cursor) are inside the payload;
  /// resume re-feeds from `cursor`.
  std::uint64_t cursor = 0;

  /// StreamEngine::save_state() bytes (opaque to the container).
  std::string payload;
};

/// Serializes the container around the payload (header + CRC).
[[nodiscard]] std::string encode_checkpoint(const Checkpoint& ck);

/// Validates and unwraps a container. Throws CheckpointError kCorrupt on
/// bad magic / truncation / checksum mismatch, kVersionMismatch when the
/// format revision differs.
[[nodiscard]] Checkpoint decode_checkpoint(std::string_view bytes);

/// Atomically writes `dir/checkpoint-<cursor>.gvck` (tmp + rename),
/// creating `dir` if needed. Returns the final path.
std::filesystem::path write_checkpoint(const std::filesystem::path& dir,
                                       const Checkpoint& ck);

/// Loads the newest valid checkpoint in `dir`. Corrupt files are skipped
/// (falling back to the next-newest). Returns nullopt when the directory
/// is missing or holds no checkpoint files; throws kVersionMismatch if the
/// newest well-formed file speaks a different format revision (refusing is
/// safer than silently resuming from an older snapshot), and kCorrupt when
/// candidates exist but every one fails validation.
[[nodiscard]] std::optional<Checkpoint> restore_latest(
    const std::filesystem::path& dir);

}  // namespace geovalid::stream
