// Incremental §4 validation for one user: bounded-memory matching plus the
// §5.1 extraneous-checkin taxonomy, with verdicts emitted as soon as they
// are safe.
//
// The batch pipeline (match::validate_dataset) sees a user's complete
// checkin and visit arrays at once. Online, neither side is complete: a
// checkin may still match a visit whose stay is in progress, and a visit
// may still be claimed by a checkin that has not happened yet. The matcher
// therefore keeps a *pending window* per user and finalizes it the moment
// the matching thresholds rule out any interaction with the future:
//
//   - a future checkin (time >= watermark) can match a pending visit v only
//     if watermark < v.end + beta;
//   - a future visit (start >= barrier, where the barrier is the open
//     stay-window start reported by OnlineVisitDetector, or the watermark
//     when no stay is open) can match a pending checkin c only if
//     barrier < c.t + beta.
//
// When neither holds for anything pending, the window is a closed group: no
// candidate edge crosses its boundary, so running the exact batch algorithm
// (match::match_user) on the group alone yields the same assignment the
// batch run would. Summing group results therefore reproduces the batch
// partition *exactly* — the engine's keystone invariant, enforced on whole
// studies by tests/test_stream_engine.cpp.
//
// Memory is O(pending window), which the matching thresholds bound: a group
// stays open only while events keep arriving within beta of each other
// (plus the span of an ongoing stay), so state decays to zero across any
// quiet period — e.g. nightly, when phones stop recording. Nothing is
// proportional to trace length.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "match/classifier.h"
#include "match/matcher.h"
#include "match/pipeline.h"
#include "stream/snapshot_io.h"

namespace geovalid::stream {

class OnlineMatcher {
 public:
  /// Verdict counts are accumulated straight into `sink` (typically the
  /// owning shard's partition), so aggregation costs nothing per event.
  OnlineMatcher(const match::MatchConfig& match_config,
                const match::ClassifierConfig& classifier_config,
                match::Partition& sink);

  /// Feeds the user's next checkin (non-decreasing timestamps).
  void push_checkin(const trace::Checkin& c);

  /// Feeds a visit closed by the visit detector (emission order).
  void push_visit(const trace::Visit& v);

  /// Feeds a raw GPS sample — classification evidence only; visit detection
  /// happens upstream. Must be called for every sample, in time order.
  void observe_gps(const trace::GpsPoint& p);

  /// Advances event time. `watermark` is the timestamp of the event just
  /// processed; `visit_start_barrier` is the earliest start any future
  /// visit can have (the detector's open-window start, or the watermark).
  /// Finalizes the pending window when it can no longer match the future.
  void advance(trace::TimeSec watermark, trace::TimeSec visit_start_barrier);

  /// End of stream: finalizes everything still pending.
  void finish();

  // Introspection (tests assert the memory bound through these).
  [[nodiscard]] std::size_t pending_checkins() const {
    return pending_checkins_.size();
  }
  [[nodiscard]] std::size_t pending_visits() const {
    return pending_visits_.size();
  }
  [[nodiscard]] std::size_t deferred_classifications() const {
    return deferred_.size();
  }
  [[nodiscard]] std::size_t gps_buffer_size() const {
    return gps_window_.size();
  }

  /// Checkpoint support: serializes the full pending window (checkins,
  /// visits, deferred classifications, pruned GPS buffer) plus the
  /// watermark, so a load()ed matcher emits exactly the verdicts the
  /// uninterrupted run would have. Config and sink are not serialized —
  /// the restoring engine provides both.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  void finalize_pending(bool at_end);
  void resolve_or_defer(const trace::Checkin& c, bool at_end);
  void prune_gps_window();

  /// Exact replica of match::classify_user's per-checkin logic against the
  /// retained sample window. nullopt = the verdict needs the first GPS
  /// sample after c.t, which has not arrived (never returned when at_end).
  [[nodiscard]] std::optional<match::CheckinClass> classify_now(
      const trace::Checkin& c, bool at_end) const;

  /// Exact replica of trace::GpsTrace::speed_at over the full sample
  /// history (the window invariant keeps every sample it consults).
  [[nodiscard]] double speed_at(trace::TimeSec t) const;

  match::MatchConfig match_config_;
  match::ClassifierConfig classifier_config_;
  match::Partition* sink_;

  trace::TimeSec watermark_ = 0;
  bool saw_event_ = false;

  // The pending window. Checkins are in time order; visits in emission
  // order (stay-points are disjoint, so also start- and end-ordered).
  std::vector<trace::Checkin> pending_checkins_;
  std::vector<trace::Visit> pending_visits_;

  // Extraneous checkins whose driveby-vs-superfluous verdict waits for the
  // GPS sample closing their speed bracket.
  std::deque<trace::Checkin> deferred_;

  // Recent GPS samples, pruned to those the classifier may still consult:
  // everything newer than (oldest unresolved checkin - max_gps_gap), plus
  // the last two samples for the end-of-trace speed segment.
  std::deque<trace::GpsPoint> gps_window_;
  std::size_t total_gps_ = 0;
  trace::TimeSec first_gps_t_ = 0;
  trace::TimeSec last_gps_t_ = 0;
};

}  // namespace geovalid::stream
