// The unit of work of the streaming engine: one geosocial observation.
//
// A production deployment sees two interleaved feeds per user — the
// per-minute GPS log and the Foursquare checkin stream. The engine consumes
// them as a single merged sequence of Events; the only ordering requirement
// is that each *user's* events arrive with non-decreasing timestamps (the
// global stream may interleave users arbitrarily).
#pragma once

#include <cstdint>
#include <type_traits>

#include "trace/checkin.h"
#include "trace/gps.h"

namespace geovalid::stream {

/// One observation of one user. A plain tagged union (not a std::variant):
/// the engine copies events through per-shard mailboxes by the million, so
/// the layout stays trivially copyable and as compact as the larger payload
/// — the producer's copy bandwidth is the engine's throughput ceiling.
struct Event {
  enum class Kind : std::uint8_t {
    kGps,      ///< `gps` is valid
    kCheckin,  ///< `checkin` is valid
  };

  Kind kind = Kind::kGps;
  trace::UserId user = 0;
  union {
    trace::GpsPoint gps;
    trace::Checkin checkin;
  };

  Event() : gps{} {}

  [[nodiscard]] trace::TimeSec time() const {
    return kind == Kind::kGps ? gps.t : checkin.t;
  }

  [[nodiscard]] static Event gps_sample(trace::UserId user,
                                        const trace::GpsPoint& p) {
    Event e;
    e.kind = Kind::kGps;
    e.user = user;
    e.gps = p;
    return e;
  }

  [[nodiscard]] static Event checkin_event(trace::UserId user,
                                           const trace::Checkin& c) {
    Event e;
    e.kind = Kind::kCheckin;
    e.user = user;
    e.checkin = c;
    return e;
  }
};

static_assert(std::is_trivially_copyable_v<Event>,
              "mailbox handoff relies on memcpy-able events");

}  // namespace geovalid::stream
