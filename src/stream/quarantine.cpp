#include "stream/quarantine.h"

#include <stdexcept>
#include <string>

#include "geo/latlon.h"
#include "obs/metrics.h"

namespace geovalid::stream {
namespace {

geo::LatLon event_position(const Event& e) {
  return e.kind == Event::Kind::kGps ? e.gps.position : e.checkin.location;
}

}  // namespace

std::string_view to_string(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kBadCoordinates:
      return "bad_coordinates";
    case QuarantineReason::kTimestampOverflow:
      return "timestamp_overflow";
    case QuarantineReason::kLateTimestamp:
      return "late_timestamp";
    case QuarantineReason::kStaleTimestamp:
      return "stale_timestamp";
    case QuarantineReason::kUnknownUser:
      return "unknown_user";
    case QuarantineReason::kMalformedLine:
      return "malformed_line";
    case QuarantineReason::kMalformedFrame:
      return "malformed_frame";
  }
  return "unknown";
}

Quarantine::Quarantine(QuarantineConfig config) : config_(std::move(config)) {
  if (config_.metrics) {
    // Pre-register every reason so a snapshot shows explicit zeros once
    // quarantine is enabled — absence then means "quarantine off", not
    // "nothing quarantined".
    for (std::size_t i = 0; i < kQuarantineReasonCount; ++i) {
      counters_[i] = &obs::registry().counter(
          "stream_quarantined_total",
          "Stream records routed to the dead-letter path, by reason",
          {{"reason",
            std::string(to_string(static_cast<QuarantineReason>(i)))}});
    }
  }
  if (!config_.dead_letter_path.empty()) {
    const bool existed = std::filesystem::exists(config_.dead_letter_path);
    out_.open(config_.dead_letter_path, std::ios::app);
    if (!out_) {
      throw std::runtime_error("quarantine: cannot open dead-letter file " +
                               config_.dead_letter_path.string());
    }
    out_.precision(10);
    if (!existed) out_ << "reason,user,kind,t,lat,lon,detail\n";
  }
}

void Quarantine::record(const Event& e, QuarantineReason reason) {
  counts_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  if (counters_[static_cast<std::size_t>(reason)] != nullptr) {
    counters_[static_cast<std::size_t>(reason)]->inc();
  }
  if (out_.is_open()) {
    const geo::LatLon pos = event_position(e);
    std::lock_guard<std::mutex> lock(io_mu_);
    out_ << to_string(reason) << ',' << e.user << ','
         << (e.kind == Event::Kind::kGps ? "gps" : "checkin") << ','
         << e.time() << ',' << pos.lat_deg << ',' << pos.lon_deg << ",\n";
  }
}

void Quarantine::record_raw(std::string_view raw_line,
                            QuarantineReason reason) {
  counts_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  if (counters_[static_cast<std::size_t>(reason)] != nullptr) {
    counters_[static_cast<std::size_t>(reason)]->inc();
  }
  if (out_.is_open()) {
    // The offending bytes are untrusted: clip, and squash anything that
    // would break the CSV shape (separators, control bytes) to spaces.
    constexpr std::size_t kDetailCap = 200;
    std::string detail(raw_line.substr(0, kDetailCap));
    for (char& c : detail) {
      if (c == ',' || static_cast<unsigned char>(c) < 0x20) c = ' ';
    }
    std::lock_guard<std::mutex> lock(io_mu_);
    out_ << to_string(reason) << ",,raw,,,," << detail << '\n';
  }
}

std::uint64_t Quarantine::total() const {
  std::uint64_t n = 0;
  for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

void Quarantine::flush() {
  if (!out_.is_open()) return;
  std::lock_guard<std::mutex> lock(io_mu_);
  out_.flush();
}

std::optional<QuarantineReason> validate_event(
    const Event& e, const std::unordered_set<trace::UserId>* known_users) {
  if (!geo::is_valid(event_position(e))) {
    return QuarantineReason::kBadCoordinates;
  }
  const trace::TimeSec t = e.time();
  if (t < 0 || t > trace::kMaxEventTime) {
    return QuarantineReason::kTimestampOverflow;
  }
  if (known_users != nullptr && known_users->count(e.user) == 0) {
    return QuarantineReason::kUnknownUser;
  }
  return std::nullopt;
}

}  // namespace geovalid::stream
