// Sharded streaming validation engine.
//
// Users are hashed onto N shards; each shard is a worker thread owning the
// per-user state (OnlineVisitDetector + OnlineMatcher) of its users, so no
// user's state is ever touched by two threads. The producer pushes Events,
// which are staged into per-shard batches and handed over through bounded
// mailboxes (blocking the producer when a shard falls behind —
// backpressure, not unbounded buffering). Each shard accumulates its own
// match::Partition; partition() sums the published per-shard snapshots at
// any time during the run and is exact after finish().
//
// Ordering contract: each user's events must be pushed with non-decreasing
// timestamps (violations throw from finish()). Different users may
// interleave arbitrarily — shard-local processing order equals push order
// per user, which is all the incremental pipeline needs, so the final
// partition is independent of the shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "match/pipeline.h"
#include "stream/event.h"
#include "trace/visit_detector.h"

namespace geovalid::stream {

struct StreamEngineConfig {
  /// Worker threads; each owns an exclusive slice of the user population.
  std::size_t shards = 1;

  /// Events a shard mailbox holds before push() blocks the producer.
  std::size_t mailbox_capacity = 1 << 16;

  /// Events staged producer-side per shard before a mailbox handoff; the
  /// batch amortizes the mailbox lock across hundreds of events.
  std::size_t batch_size = 512;

  /// Report into the process-wide obs::registry(): per-shard event counts
  /// and mailbox depth, backpressure stalls, batch latency, verdict
  /// totals. Counter flushes are amortized per batch, so the overhead is
  /// well under the 5% budget (bench_stream_throughput measures it).
  /// Disable for A/B overhead measurement.
  bool metrics = true;

  match::MatchConfig match;
  match::ClassifierConfig classifier;
  trace::VisitDetectorConfig detector;
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineConfig config = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Routes one event to its user's shard. Single producer thread; blocks
  /// when that shard's mailbox is full. Must not be called after finish().
  void push(const Event& e);

  /// Flushes staged batches, drains every shard, finalizes all per-user
  /// state and joins the workers. Rethrows the first worker error (e.g. an
  /// out-of-order user stream). Idempotent.
  void finish();

  /// Live verdict totals: sum of the per-shard snapshots, each published
  /// after a processed batch. Exact once finish() returned.
  [[nodiscard]] match::Partition partition() const;

  /// Events fully processed by the workers (not merely enqueued).
  [[nodiscard]] std::size_t events_processed() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(trace::UserId user) const;
  [[nodiscard]] const StreamEngineConfig& config() const { return config_; }

 private:
  struct Shard;

  void flush_staging(std::size_t shard_index);

  StreamEngineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<Event>> staging_;  // producer-side, per shard
  bool finished_ = false;
};

}  // namespace geovalid::stream
