// Sharded streaming validation engine.
//
// Users are hashed onto N shards; each shard is a worker thread owning the
// per-user state (OnlineVisitDetector + OnlineMatcher) of its users, so no
// user's state is ever touched by two threads. The producer pushes Events,
// which are staged into per-shard batches and handed over through bounded
// mailboxes (blocking the producer when a shard falls behind —
// backpressure, not unbounded buffering). Each shard accumulates its own
// match::Partition; partition() sums the published per-shard snapshots at
// any time during the run and is exact after finish().
//
// Ordering contract: each user's events must be pushed with non-decreasing
// timestamps (violations throw from finish()). Different users may
// interleave arbitrarily — shard-local processing order equals push order
// per user, which is all the incremental pipeline needs, so the final
// partition is independent of the shard count.
//
// Producers: push() serves the common single-producer case. Additional
// concurrent producer threads each take their own Producer handle (private
// per-shard staging, handoff under the owning shard's mutex only — no
// engine-global lock). The quiescence points (drain/finish/save_state)
// still assume a single caller with every Producer flushed and parked;
// the serve layer's reactor pause gate provides exactly that rendezvous.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "match/pipeline.h"
#include "score/scorer.h"
#include "stream/event.h"
#include "trace/visit_detector.h"

namespace geovalid::stream {

class FaultInjector;
class Quarantine;

/// One user's live validation state, as served by the query API: the
/// user's share of the verdict partition plus online checkin-interarrival
/// statistics (Welford mean/M2 over gaps in minutes — the §5.3 burstiness
/// inputs, computed incrementally instead of from a stored gap list).
struct UserVerdicts {
  trace::UserId id = 0;
  match::Partition partition;       ///< this user's verdict share
  std::uint64_t checkins_seen = 0;  ///< applied (non-quarantined) checkins
  std::uint64_t gap_count = 0;      ///< interarrival gaps = checkins_seen - 1
  double gap_mean_min = 0.0;        ///< mean gap, minutes
  double gap_m2 = 0.0;              ///< Welford sum of squared deviations

  /// Extraneous share of this user's checkins (Figure 5 prevalence); 0.0
  /// when the user has no checkins yet.
  [[nodiscard]] double extraneous_ratio() const;

  /// Population standard deviation of the interarrival gaps, minutes.
  [[nodiscard]] double gap_stddev_min() const;

  /// Burstiness B = (sigma - mu) / (sigma + mu) of the interarrival gaps:
  /// +1 bursty, 0 Poisson-like, -1 periodic. 0.0 until the user has gaps.
  [[nodiscard]] double burstiness() const;
};

struct StreamEngineConfig {
  /// Worker threads; each owns an exclusive slice of the user population.
  std::size_t shards = 1;

  /// Events a shard mailbox holds before push() blocks the producer.
  std::size_t mailbox_capacity = 1 << 16;

  /// Events staged producer-side per shard before a mailbox handoff; the
  /// batch amortizes the mailbox lock across hundreds of events.
  std::size_t batch_size = 512;

  /// Report into the process-wide obs::registry(): per-shard event counts
  /// and mailbox depth, backpressure stalls, batch latency, verdict
  /// totals. Counter flushes are amortized per batch, so the overhead is
  /// well under the 5% budget (bench_stream_throughput measures it).
  /// Disable for A/B overhead measurement.
  bool metrics = true;

  match::MatchConfig match;
  match::ClassifierConfig classifier;
  trace::VisitDetectorConfig detector;

  /// Optional dead-letter sink (see stream/quarantine.h). When set,
  /// malformed records — bad coordinates, timestamp overflow, unknown
  /// users, per-user timestamp regressions — are recorded there and
  /// skipped, and the engine keeps running; when null, regressions throw
  /// from finish() as before and payloads are not validated.
  Quarantine* quarantine = nullptr;

  /// Per-user timestamp regressions up to this bound are quarantined as
  /// `late_timestamp` (slightly late — fixable by buffering upstream);
  /// larger ones as `stale_timestamp`. Pure reason-code triage: a late
  /// event is never applied, because replaying it would silently change
  /// verdicts relative to the batch pipeline. Only read when `quarantine`
  /// is set.
  trace::TimeSec reorder_window = 0;

  /// Enrolled user ids; events for other ids quarantine as `unknown_user`.
  /// Null disables the check. Only read when `quarantine` is set.
  const std::unordered_set<trace::UserId>* known_users = nullptr;

  /// Deterministic fault injection (tests and `--inject-faults`): shard
  /// workers call FaultInjector::on_shard_event before each event.
  const FaultInjector* faults = nullptr;

  /// Live fake-checkin scoring (serve --model): each shard scores every
  /// applied checkin through this model as it arrives, and the query API
  /// (user_score/top_suspects) serves exact batch-equivalent scores. The
  /// model must outlive the engine; null disables scoring entirely. The
  /// model's fingerprint joins the config fingerprint, so a checkpoint
  /// written under one model refuses to resume under another.
  const score::ScoreModel* model = nullptr;
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineConfig config = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Routes one event to its user's shard. Single producer thread; blocks
  /// when that shard's mailbox is full. Must not be called after finish().
  /// Returns false when the event was quarantined producer-side (payload
  /// validation) and never reached a shard — callers tracking in-flight
  /// depth (serve's ingest-lag gauge) only count `true` pushes.
  bool push(const Event& e);

  /// A handle for one additional producer thread (the serve layer's
  /// reactors). Each handle owns private per-shard staging, so concurrent
  /// producers only ever meet at a shard's mailbox mutex — there is no
  /// engine-global lock anywhere on the ingest path. Contract:
  ///   * one thread per handle (the handle itself is not thread-safe);
  ///   * all of a given user's events must flow through a single handle —
  ///     mailbox FIFO order is per-user order only then;
  ///   * every handle must be flush()ed and its thread parked before
  ///     drain()/finish()/save_state()/user_verdicts() run (the serve
  ///     layer's pause gate provides that rendezvous);
  ///   * a handle must not outlive its engine.
  class Producer {
   public:
    explicit Producer(StreamEngine& engine);
    Producer(const Producer&) = delete;
    Producer& operator=(const Producer&) = delete;

    /// Same contract and return value as StreamEngine::push, from this
    /// handle's thread; blocks on the target shard's mailbox when full.
    bool push(const Event& e);

    /// Bulk push for a whole decoded batch (the serve layer's binary frame
    /// path): validates and stages every event, then hands each touched
    /// shard's staging to its mailbox at most once — one lock acquisition
    /// per shard per call instead of one per `batch_size` boundary. The
    /// observable semantics equal pushing the span element-by-element
    /// (same order, same quarantine verdicts); only the handoff batching
    /// differs. Returns how many events were accepted (not quarantined),
    /// matching push()'s per-event return.
    std::size_t stage_batch(std::span<const Event> events);

    /// Hands every staged batch to its shard mailbox. Must run before any
    /// engine-wide quiescence point; cheap no-op when nothing is staged.
    void flush();

    /// Times this handle found a mailbox full and had to wait (monotone;
    /// the serve layer mirrors it into serve_reactor_stalls_total).
    [[nodiscard]] std::uint64_t stalls() const { return stalls_; }

   private:
    StreamEngine& engine_;
    std::vector<std::vector<Event>> staging_;  // per shard
    std::uint64_t stalls_ = 0;
  };

  /// Flushes staged batches, drains every shard, finalizes all per-user
  /// state and joins the workers. Rethrows the first worker error (e.g. an
  /// out-of-order user stream). Idempotent.
  void finish();

  /// Quiesces the engine without ending the stream: flushes all staged
  /// batches and blocks until every shard's mailbox is empty and its worker
  /// idle. On return, partition() is exact for everything pushed so far and
  /// no worker touches per-user state until the next push — the window in
  /// which save_state() may run. Rethrows the first worker error (a
  /// poisoned engine cannot be checkpointed). The engine keeps running.
  void drain();

  /// Joins the workers without end-of-stream finalization: open visit
  /// windows and pending matcher state are abandoned, not flushed into the
  /// partition. This is the crash-simulation / SIGKILL path — recovery must
  /// come from a checkpoint, exactly as after a real crash. Worker errors
  /// are not rethrown. Idempotent with finish().
  void shutdown();

  /// Serializes the complete engine state (verdict totals + every user's
  /// verdict share, interarrival statistics, detector, matcher and
  /// ordering clock) after an implicit drain(). The
  /// bytes are deterministic and shard-count independent: users are written
  /// globally sorted by id, so the same pushed prefix yields byte-identical
  /// state regardless of `shards`. The payload starts with a fingerprint of
  /// the semantic pipeline config (matcher/classifier/detector parameters —
  /// not shard count or batch size), which load_state() verifies.
  [[nodiscard]] std::string save_state();

  /// Restores save_state() bytes into a fresh engine (nothing pushed yet).
  /// The restored run may use a different shard count. Throws
  /// CheckpointError{kConfigMismatch} when the payload was produced under a
  /// different pipeline config, SnapshotError on malformed bytes.
  void load_state(std::string_view payload);

  /// Live verdict totals: sum of the per-shard snapshots, each published
  /// after a processed batch. Exact once finish() returned.
  [[nodiscard]] match::Partition partition() const;

  /// One user's verdict share and interarrival statistics, exact as of
  /// everything pushed so far (implicit drain(); producer thread only).
  /// nullopt when the engine has never seen the user.
  [[nodiscard]] std::optional<UserVerdicts> user_verdicts(trace::UserId user);

  /// Every tracked user, globally sorted by id (implicit drain(); producer
  /// thread only). Sums of the per-user partitions equal partition().
  [[nodiscard]] std::vector<UserVerdicts> all_user_verdicts();

  /// Users tracked across all shards (implicit drain(); producer thread
  /// only).
  [[nodiscard]] std::size_t user_count();

  /// True when the engine was configured with a scoring model.
  [[nodiscard]] bool scoring_enabled() const {
    return config_.model != nullptr;
  }

  /// One user's live detection score (implicit drain(); producer thread
  /// only). nullopt when scoring is disabled or the user has no applied
  /// checkins. The `score` field is bit-identical to averaging the batch
  /// detector's per-checkin scores over the same trace.
  [[nodiscard]] std::optional<score::UserScoreSnapshot> user_score(
      trace::UserId user);

  /// Engine-wide top-k suspects, merged across shards (score desc, user
  /// id asc; implicit drain(); producer thread only).
  /// Empty when scoring is disabled. Byte-deterministic: independent of
  /// shard count and producer interleaving.
  [[nodiscard]] std::vector<score::SuspectEntry> top_suspects(std::size_t k);

  /// Events fully processed by the workers (not merely enqueued).
  [[nodiscard]] std::size_t events_processed() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(trace::UserId user) const;
  [[nodiscard]] const StreamEngineConfig& config() const { return config_; }

 private:
  struct Shard;

  /// Shared push path: validate, stage into `staging`, hand off full
  /// batches. push() passes the engine's own staging; Producer handles pass
  /// theirs.
  bool push_from(const Event& e, std::vector<std::vector<Event>>& staging,
                 std::uint64_t* stall_count);

  /// Moves one staged batch into its shard's mailbox, blocking while the
  /// mailbox is full. Takes only that shard's mutex — safe from any number
  /// of concurrent producers.
  void hand_off(std::size_t shard_index, std::vector<Event>& staged,
                std::uint64_t* stall_count);

  [[nodiscard]] std::uint64_t config_fingerprint() const;

  StreamEngineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<Event>> staging_;  // producer-side, per shard
  /// Events accepted across all producers (incl. quarantined); atomic only
  /// so concurrent Producer handles may bump it without a lock.
  std::atomic<std::uint64_t> pushed_{0};
  std::size_t last_state_bytes_ = 0;  ///< previous save_state() payload size
  bool finished_ = false;
};

}  // namespace geovalid::stream
