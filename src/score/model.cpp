#include "score/model.h"

#include <fstream>
#include <vector>

#include "stream/checkpoint.h"
#include "stream/snapshot_io.h"

namespace geovalid::score {
namespace {

/// Same FNV-1a the engine's config fingerprint uses; over the encoded
/// artifact so any parameter change (or format change) changes the print.
std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ScoreModel ScoreModel::from_detector(
    const detect::TrainedDetector& detector) {
  ScoreModel m;
  m.scaler_ = detector.scaler;
  m.model_ = detector.model;
  return m;
}

double ScoreModel::score(const detect::FeatureVector& f) const {
  const std::vector<double> z =
      scaler_.transform(std::span<const double>(f.data(), f.size()));
  return model_.predict(z);
}

std::uint64_t ScoreModel::fingerprint() const { return fnv1a64(encode()); }

std::string ScoreModel::encode() const {
  stream::SnapshotWriter w;
  w.u32(kModelMagic);
  w.u32(kModelVersion);
  w.u64(scaler_.dimensions());
  for (const double v : scaler_.mean()) w.f64(v);
  for (const double v : scaler_.stddev()) w.f64(v);
  for (const double v : model_.weights()) w.f64(v);
  w.f64(model_.bias());
  std::string bytes = w.take();
  stream::SnapshotWriter trailer;
  trailer.u32(stream::crc32(bytes));
  bytes += trailer.bytes();
  return bytes;
}

ScoreModel ScoreModel::decode(std::string_view bytes) {
  using stream::CheckpointError;
  if (bytes.size() < 12) {
    throw CheckpointError(CheckpointError::Kind::kCorrupt,
                          "model: artifact truncated");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  stream::SnapshotReader crc_reader(bytes.substr(bytes.size() - 4));
  if (crc_reader.u32() != stream::crc32(body)) {
    throw CheckpointError(CheckpointError::Kind::kCorrupt,
                          "model: checksum mismatch");
  }
  try {
    stream::SnapshotReader r(body);
    if (r.u32() != kModelMagic) {
      throw CheckpointError(CheckpointError::Kind::kCorrupt,
                            "model: bad magic");
    }
    const std::uint32_t version = r.u32();
    if (version != kModelVersion) {
      throw CheckpointError(
          CheckpointError::Kind::kVersionMismatch,
          "model: format revision " + std::to_string(version) +
              ", this binary speaks " + std::to_string(kModelVersion));
    }
    const std::uint64_t dims = r.u64();
    if (dims != detect::kFeatureCount) {
      throw CheckpointError(
          CheckpointError::Kind::kVersionMismatch,
          "model: " + std::to_string(dims) + " features, this binary has " +
              std::to_string(detect::kFeatureCount));
    }
    std::vector<double> mean(dims), sigma(dims), weights(dims);
    for (double& v : mean) v = r.f64();
    for (double& v : sigma) v = r.f64();
    for (double& v : weights) v = r.f64();
    const double bias = r.f64();
    if (!r.exhausted()) {
      throw CheckpointError(CheckpointError::Kind::kCorrupt,
                            "model: trailing bytes after parameters");
    }
    ScoreModel m;
    m.scaler_ = detect::Standardizer::from_params(mean, sigma);
    m.model_ = detect::LogisticModel::from_params(weights, bias);
    return m;
  } catch (const stream::SnapshotError& e) {
    throw CheckpointError(CheckpointError::Kind::kCorrupt, e.what());
  }
}

void save_model(const std::filesystem::path& path, const ScoreModel& model) {
  namespace fs = std::filesystem;
  if (path.has_parent_path()) fs::create_directories(path.parent_path());
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    const std::string bytes = model.encode();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("model: cannot write " + tmp.string());
    }
  }
  fs::rename(tmp, path);
}

ScoreModel load_model(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw stream::CheckpointError(
        stream::CheckpointError::Kind::kCorrupt,
        "model: cannot open for read: " + path.string());
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return ScoreModel::decode(bytes);
}

}  // namespace geovalid::score
