// Persisted scoring model for the live fake-checkin detection service.
//
// A ScoreModel is the deployable half of detect/'s offline training: the
// fitted Standardizer plus the trained LogisticModel, frozen into a
// versioned, CRC-trailed artifact (`geovalid train` writes one, `serve
// --model` loads it). Scoring goes through the *same* transform/predict
// code the batch detector uses — Standardizer::transform and
// LogisticModel::predict — so an online score can be bit-identical to the
// batch `TrainedDetector::score_user` path by construction, not by
// re-implementation.
//
// On-disk layout (all integers little-endian, doubles bit-cast — the
// snapshot_io vocabulary, mirroring the checkpoint container):
//
//   u32  magic      "GVSM"
//   u32  version    kModelVersion
//   u64  dims       feature count (must equal detect::kFeatureCount)
//   f64  mean[dims]
//   f64  sigma[dims]
//   f64  weights[dims]
//   f64  bias
//   u32  crc32      over everything above
//
// Load failures throw stream::CheckpointError (kCorrupt for bad magic /
// truncation / CRC mismatch, kVersionMismatch for a different format
// revision) so the CLI maps them onto the existing exit-code-4 contract.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "detect/detector.h"
#include "detect/features.h"
#include "detect/logistic.h"

namespace geovalid::score {

inline constexpr std::uint32_t kModelMagic = 0x4D535647;  // "GVSM"
inline constexpr std::uint32_t kModelVersion = 1;

/// An immutable, loaded scoring model. Thread-safe to share by const
/// reference: scoring only reads the scaler/model parameters.
class ScoreModel {
 public:
  /// Freezes the deployable parameters out of an offline training run.
  [[nodiscard]] static ScoreModel from_detector(
      const detect::TrainedDetector& detector);

  /// Probability that a checkin with feature vector `f` is extraneous —
  /// exactly `model.predict(scaler.transform(f))`, the batch scoring path.
  [[nodiscard]] double score(const detect::FeatureVector& f) const;

  [[nodiscard]] const detect::Standardizer& scaler() const { return scaler_; }
  [[nodiscard]] const detect::LogisticModel& model() const { return model_; }

  /// FNV-1a over the artifact bytes: folded into the engine's config
  /// fingerprint so a checkpoint written under one model refuses to resume
  /// under another (the scores would silently change).
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Artifact codec. decode() throws stream::CheckpointError on corrupt
  /// or version-mismatched bytes.
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static ScoreModel decode(std::string_view bytes);

 private:
  detect::Standardizer scaler_;
  detect::LogisticModel model_;
};

/// Atomically writes the artifact (tmp + rename, like write_checkpoint).
void save_model(const std::filesystem::path& path, const ScoreModel& model);

/// Reads and validates an artifact. Throws stream::CheckpointError when
/// the file is unreadable, corrupt, or a different format revision.
[[nodiscard]] ScoreModel load_model(const std::filesystem::path& path);

}  // namespace geovalid::score
