#include "score/scorer.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesic.h"
#include "trace/time.h"
#include "trace/user.h"

namespace geovalid::score {
namespace {

// Mirrors detect/features.cpp exactly: same constant, same clamp. Any
// drift here breaks the bit-equality the ScoreEquivalence suite asserts.
constexpr double kTau = 6.28318530717958647692;

double log1p_safe(double x) { return std::log1p(std::max(0.0, x)); }

}  // namespace

double OnlineScorer::observe(trace::UserId user, const trace::Checkin& c) {
  UserState& s = users_[user];
  // Fold the new checkin into the aggregates first: the batch pass
  // computes them over the whole prefix, current checkin included.
  s.checkins.push_back(c);
  s.lat_sum += c.location.lat_deg;
  s.lon_sum += c.location.lon_deg;
  ++s.venue_counts[c.poi];
  ++s.category_counts[static_cast<std::size_t>(c.category)];

  const std::vector<trace::Checkin>& events = s.checkins;
  const std::size_t i = events.size() - 1;
  const auto n = static_cast<double>(events.size());
  detect::FeatureVector f;

  const double gap_prev =
      i == 0 ? 1e6 : trace::to_minutes(c.t - events[i - 1].t);
  f[0] = log1p_safe(gap_prev);
  // The newest checkin of a prefix has no successor: batch scores it with
  // the same 1e6 sentinel a trace-final checkin gets.
  f[1] = log1p_safe(1e6);

  // Backward half of the 10-minute burst window only — the forward half
  // is empty for the newest checkin by definition.
  std::size_t burst = 0;
  for (std::size_t j = i; j-- > 0;) {
    if (c.t - events[j].t > trace::minutes(10)) break;
    ++burst;
  }
  f[2] = static_cast<double>(burst);

  const double hour =
      static_cast<double>(c.t % trace::kSecondsPerDay) / 3600.0;
  f[3] = std::sin(kTau * hour / 24.0);
  f[4] = std::cos(kTau * hour / 24.0);
  const auto day_index = static_cast<std::size_t>(c.t / trace::kSecondsPerDay);
  const std::size_t dow = day_index % 7;
  f[5] = (dow == 4 || dow == 5) ? 1.0 : 0.0;

  const geo::LatLon centroid{s.lat_sum / n, s.lon_sum / n};
  f[6] = log1p_safe(geo::distance_m(c.location, centroid) /
                    geo::kMetersPerKilometer);
  if (i == 0) {
    f[7] = 0.0;
    f[8] = 0.0;
  } else {
    const double d = geo::distance_m(c.location, events[i - 1].location);
    f[7] = log1p_safe(d / geo::kMetersPerKilometer);
    const double dt = static_cast<double>(c.t - events[i - 1].t);
    f[8] = dt <= 0.0 ? log1p_safe(1e4) : log1p_safe(d / dt);
  }

  f[9] = static_cast<double>(s.venue_counts[c.poi]);
  const std::size_t cat_count =
      s.category_counts[static_cast<std::size_t>(c.category)];
  f[10] = static_cast<double>(cat_count) / n;

  // CheckinTrace::events_per_day over the prefix, verbatim.
  double per_day = 0.0;
  if (events.size() >= 2) {
    const trace::TimeSec span = events.back().t - events.front().t;
    if (span > 0) {
      per_day = n / (static_cast<double>(span) /
                     static_cast<double>(trace::kSecondsPerDay));
    }
  }
  f[11] = log1p_safe(per_day);

  const double score = model_->score(f);
  s.arrival_score_sum += score;
  return score;
}

double OnlineScorer::exact_mean_score(const UserState& s) const {
  // The batch path itself, not a mirror of it: rebuild the user record
  // and run extract_features + the model over it.
  trace::UserRecord user;
  user.checkins = trace::CheckinTrace(s.checkins);
  const std::vector<detect::FeatureVector> features =
      detect::extract_features(user);
  double sum = 0.0;
  for (const detect::FeatureVector& f : features) sum += model_->score(f);
  return sum / static_cast<double>(features.size());
}

std::optional<UserScoreSnapshot> OnlineScorer::user_score(
    trace::UserId user) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return std::nullopt;
  const UserState& s = it->second;
  UserScoreSnapshot snap;
  snap.checkins = s.checkins.size();
  snap.score = exact_mean_score(s);
  snap.live_score =
      s.arrival_score_sum / static_cast<double>(s.checkins.size());
  return snap;
}

std::vector<SuspectEntry> OnlineScorer::suspects(std::size_t k) const {
  std::vector<SuspectEntry> all;
  all.reserve(users_.size());
  for (const auto& [id, s] : users_) {
    all.push_back(SuspectEntry{id, exact_mean_score(s),
                               static_cast<std::uint64_t>(s.checkins.size())});
  }
  std::sort(all.begin(), all.end(),
            [](const SuspectEntry& a, const SuspectEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

void OnlineScorer::save_user(stream::SnapshotWriter& w,
                             trace::UserId user) const {
  const auto it = users_.find(user);
  if (it == users_.end()) {
    w.u64(0);
    return;
  }
  const UserState& s = it->second;
  w.u64(s.checkins.size());
  for (const trace::Checkin& c : s.checkins) {
    w.i64(c.t);
    w.u32(c.poi);
    w.u8(static_cast<std::uint8_t>(c.category));
    w.f64(c.location.lat_deg);
    w.f64(c.location.lon_deg);
  }
}

void OnlineScorer::load_user(stream::SnapshotReader& r, trace::UserId user) {
  const std::size_t count = r.length();
  for (std::size_t i = 0; i < count; ++i) {
    trace::Checkin c;
    c.t = r.i64();
    c.poi = r.u32();
    const std::uint8_t category = r.u8();
    if (category >= trace::kPoiCategoryCount) {
      throw stream::SnapshotError("scorer: category out of domain");
    }
    c.category = static_cast<trace::PoiCategory>(category);
    c.location.lat_deg = r.f64();
    c.location.lon_deg = r.f64();
    // Deterministic re-observation rebuilds every aggregate (and the
    // arrival-score mean) bit-identically to the pre-checkpoint life.
    observe(user, c);
  }
}

}  // namespace geovalid::score
