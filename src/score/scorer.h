// Online fake-checkin scoring: the streaming analogue of the batch
// detector (detect/features.h + detect/detector.h).
//
// The batch feature vector of a checkin is not causal — gap-to-next, the
// forward half of the 10-minute burst window, the centroid and the final
// venue/category counts all depend on checkins that have not arrived yet.
// What *is* exactly computable online is the batch feature vector of the
// NEWEST checkin of the prefix seen so far: its gap-to-next is the 1e6
// sentinel, its forward burst window is empty, and every per-user
// aggregate (running lat/lon sums accumulated in arrival order, venue and
// category counts including the new checkin, the prefix's events-per-day)
// equals the batch aggregate of that prefix bit for bit, because the
// floating-point accumulation order is the same. observe() exploits this:
// each arriving checkin is scored through the loaded model with O(1)
// amortized work (plus a backward scan bounded by the 10-minute burst),
// and the result — the *arrival score* — is bit-identical to running the
// batch extract_features/score path on the prefix and reading its last
// row. The running mean of arrival scores is the *live score*: a pure
// function of the user's own event order, so it is deterministic across
// shard counts, reactor counts and producer interleavings.
//
// Served scores (`/v1/users/{id}/score`, `/v1/suspects`) are *exact*: the
// scorer keeps each user's checkin records and re-runs the batch feature
// extraction over them on demand (queries run under the engine's quiesce
// gate), so the reported score is bit-identical to
// `TrainedDetector::score_user` on the same trace — the equivalence the
// ScoreEquivalence suite pins down. Checkins are sparse next to GPS
// samples (the paper's traces average a handful a day against per-minute
// GPS), so storing them per user costs far less than the GPS state the
// engine already holds.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "score/model.h"
#include "stream/snapshot_io.h"
#include "trace/checkin.h"
#include "trace/poi.h"

namespace geovalid::score {

/// One user's served score.
struct UserScoreSnapshot {
  /// Mean batch score over the user's checkins so far — bit-identical to
  /// averaging TrainedDetector::score_user on the same trace.
  double score = 0.0;
  /// Running mean of arrival scores (the streaming approximation the hot
  /// path maintains; differs from `score` because early checkins were
  /// scored before their successors arrived).
  double live_score = 0.0;
  std::uint64_t checkins = 0;
};

/// One row of a top-K suspect ranking, ordered score desc, user id asc.
struct SuspectEntry {
  trace::UserId user = 0;
  double score = 0.0;
  std::uint64_t checkins = 0;
};

/// Per-shard online scorer. Single-threaded like everything else a shard
/// owns: observe() runs on the shard loop, queries run under the engine's
/// quiesce gate.
class OnlineScorer {
 public:
  /// The model must outlive the scorer (the engine config owns neither).
  explicit OnlineScorer(const ScoreModel& model) : model_(&model) {}

  /// Scores `c` as the newest checkin of `user`'s prefix and folds it into
  /// the user's state. Returns the arrival score.
  double observe(trace::UserId user, const trace::Checkin& c);

  /// Exact score of one user (nullopt when the user has no checkins).
  [[nodiscard]] std::optional<UserScoreSnapshot> user_score(
      trace::UserId user) const;

  /// This shard's top-k users by exact score (score desc, id asc).
  [[nodiscard]] std::vector<SuspectEntry> suspects(std::size_t k) const;

  /// Users with at least one checkin.
  [[nodiscard]] std::size_t user_count() const { return users_.size(); }

  /// Checkpoint support: the persisted state is the user's checkin
  /// records; load_user() re-observes them in order, which rebuilds every
  /// incremental aggregate (and the arrival-score mean) bit-identically.
  void save_user(stream::SnapshotWriter& w, trace::UserId user) const;
  void load_user(stream::SnapshotReader& r, trace::UserId user);

 private:
  struct UserState {
    std::vector<trace::Checkin> checkins;
    // Aggregates over `checkins`, maintained in arrival order so they are
    // bit-identical to the batch pass's in-order accumulation.
    double lat_sum = 0.0;
    double lon_sum = 0.0;
    std::map<trace::PoiId, std::size_t> venue_counts;
    std::array<std::size_t, trace::kPoiCategoryCount> category_counts{};
    double arrival_score_sum = 0.0;
  };

  [[nodiscard]] double exact_mean_score(const UserState& s) const;

  const ScoreModel* model_;
  std::unordered_map<trace::UserId, UserState> users_;
};

}  // namespace geovalid::score
