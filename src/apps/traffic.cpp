#include "apps/traffic.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "stats/correlation.h"

namespace geovalid::apps {
namespace {

using trace::PoiCategory;

bool commute_pair(PoiCategory a, PoiCategory b) {
  const bool a_home = a == PoiCategory::kResidence;
  const bool b_home = b == PoiCategory::kResidence;
  const bool a_work =
      a == PoiCategory::kProfessional || a == PoiCategory::kCollege;
  const bool b_work =
      b == PoiCategory::kProfessional || b == PoiCategory::kCollege;
  return (a_home && b_work) || (a_work && b_home);
}

}  // namespace

std::uint64_t CategoryFlow::total() const {
  std::uint64_t n = 0;
  for (const auto& row : counts) {
    for (std::uint64_t c : row) n += c;
  }
  return n;
}

double CategoryFlow::commute_share() const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  std::uint64_t commute = 0;
  for (std::size_t a = 0; a < counts.size(); ++a) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (commute_pair(static_cast<PoiCategory>(a),
                       static_cast<PoiCategory>(b))) {
        commute += counts[a][b];
      }
    }
  }
  return static_cast<double>(commute) / static_cast<double>(n);
}

std::vector<double> CategoryFlow::normalized() const {
  std::vector<double> out;
  out.reserve(counts.size() * counts.size());
  const auto n = static_cast<double>(total());
  for (const auto& row : counts) {
    for (std::uint64_t c : row) {
      out.push_back(n == 0.0 ? 0.0 : static_cast<double>(c) / n);
    }
  }
  return out;
}

CategoryFlow category_flow(const trace::Dataset& ds,
                           const match::ValidationResult& validation,
                           TrainingSource source) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "category_flow: validation does not match dataset");
  }

  obs::StageTimer timer(&obs::registry().histogram(
      "apps_stage_ns", "Wall time of application-study stages (nanoseconds)",
      {{"stage", "traffic_category_flow"}}));

  CategoryFlow flow;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const trace::UserRecord& user = users[u];

    if (source == TrainingSource::kGpsVisits) {
      const trace::Poi* prev = nullptr;
      for (const trace::Visit& v : user.visits) {
        const trace::Poi* here =
            v.poi == trace::kNoPoi ? nullptr : ds.pois().find(v.poi);
        if (here == nullptr) continue;
        if (prev != nullptr && prev->id != here->id) {
          ++flow.counts[static_cast<std::size_t>(prev->category)]
                       [static_cast<std::size_t>(here->category)];
        }
        prev = here;
      }
      continue;
    }

    const auto events = user.checkins.events();
    const auto& labels = validation.users[u].labels;
    bool have_prev = false;
    trace::Checkin prev;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (source == TrainingSource::kHonestCheckins &&
          labels[i] != match::CheckinClass::kHonest) {
        continue;
      }
      if (have_prev && prev.poi != events[i].poi) {
        ++flow.counts[static_cast<std::size_t>(prev.category)]
                     [static_cast<std::size_t>(events[i].category)];
      }
      prev = events[i];
      have_prev = true;
    }
  }
  return flow;
}

double flow_correlation(const CategoryFlow& a, const CategoryFlow& b) {
  const std::vector<double> va = a.normalized();
  const std::vector<double> vb = b.normalized();
  return stats::pearson(va, vb);
}

}  // namespace geovalid::apps
