// Next-place prediction — a second application-level impact study.
//
// The papers the HotNets'13 work critiques use checkin traces to predict
// human movement (its refs [9], [20], [25]). This module measures what the
// trace defects do to that application: train the same predictor on the
// all-checkin / honest-checkin / GPS-visit traces of each user and score
// all three against held-out *ground-truth* movement (GPS visits).
//
// The predictor is a per-user first-order Markov model over venues with a
// popularity backoff — the standard baseline of the next-place literature.
#pragma once

#include <map>
#include <vector>

#include "match/pipeline.h"
#include "trace/dataset.h"

namespace geovalid::apps {

/// Per-user first-order Markov predictor over venue ids.
class NextPlaceModel {
 public:
  /// Accumulates one training sequence (venue ids in visit order).
  void train(std::span<const trace::PoiId> sequence);

  /// The k most likely next venues after `current`, most likely first.
  /// Transition counts from `current` rank first; venues seen in training
  /// but never after `current` follow by overall popularity. Returns fewer
  /// than k when the model has not seen k distinct venues.
  [[nodiscard]] std::vector<trace::PoiId> predict(trace::PoiId current,
                                                  std::size_t k) const;

  [[nodiscard]] bool empty() const { return popularity_.empty(); }
  [[nodiscard]] std::size_t venue_count() const { return popularity_.size(); }

 private:
  std::map<trace::PoiId, std::map<trace::PoiId, std::size_t>> transitions_;
  std::map<trace::PoiId, std::size_t> popularity_;
};

/// Accuracy of one trained source against ground-truth transitions.
struct PredictionScore {
  std::size_t cases = 0;   ///< evaluated (current -> next) ground-truth pairs
  std::size_t top1 = 0;
  std::size_t top3 = 0;

  [[nodiscard]] double accuracy_at_1() const;
  [[nodiscard]] double accuracy_at_3() const;
};

/// The three traces a predictor can be trained on.
enum class TrainingSource : std::uint8_t {
  kGpsVisits = 0,     ///< ground-truth mobility (upper bound)
  kHonestCheckins,    ///< extraneous removed
  kAllCheckins,       ///< the raw geosocial trace
};

[[nodiscard]] std::string_view to_string(TrainingSource s);

/// Evaluation configuration: per user, events before `train_fraction` of
/// the user's GPS time span train the model; ground-truth visit transitions
/// after it are the test set.
struct PredictionConfig {
  double train_fraction = 0.7;
};

/// Runs the experiment over a validated dataset for one training source.
[[nodiscard]] PredictionScore evaluate_next_place(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    TrainingSource source, const PredictionConfig& config = {});

}  // namespace geovalid::apps
