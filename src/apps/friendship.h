// Co-location friendship inference — the paper's last named casualty.
//
// §6.2: "friendship recommendation applications leverage user physical
// proximity to suggest social connections. Using data including fake
// checkins will lead to wrong inferences on user proximity, and lead to
// incorrect suggestions." This module runs the standard co-location
// inference (pairs who appear at the same venue at the same time are
// probably friends) on each trace type and scores it against the
// generator's ground-truth friendship graph.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "apps/next_place.h"  // TrainingSource
#include "match/pipeline.h"
#include "trace/dataset.h"

namespace geovalid::apps {

/// An unordered user pair (first < second).
using UserPair = std::pair<trace::UserId, trace::UserId>;

/// Co-location counting parameters.
struct ColocationConfig {
  /// Two events at the same venue within this gap count as a co-location.
  trace::TimeSec window = trace::minutes(30);

  /// Weight each co-location by 1/log2(2 + distinct users at the venue)
  /// (Adamic-Adar style). Meeting at an obscure bistro is strong evidence
  /// of friendship; bumping into someone at the railway station is not.
  bool weight_by_venue_rarity = true;
};

/// Scores co-location per user pair across the whole dataset for one trace
/// type (GPS visits use their snapped venue and interval overlap; checkin
/// traces use venue + timestamp proximity). Values are counts when rarity
/// weighting is off, weighted sums when on.
[[nodiscard]] std::map<UserPair, double> colocation_counts(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    TrainingSource source, const ColocationConfig& config = {});

/// Quality of top-K friendship prediction (K = size of the ground truth).
struct FriendshipScore {
  std::size_t true_pairs = 0;   ///< ground-truth friendships
  std::size_t predicted = 0;    ///< pairs predicted (min(K, ranked pairs))
  std::size_t hits = 0;         ///< predictions that are real friendships

  /// Precision of the top-K prediction; with K = |truth| this equals
  /// recall, so one number summarizes the ranking.
  [[nodiscard]] double precision_at_k() const;
};

/// Ranks pairs by co-location count and scores the top-|truth| against the
/// ground-truth graph.
[[nodiscard]] FriendshipScore evaluate_friendship(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    TrainingSource source, std::span<const UserPair> truth,
    const ColocationConfig& config = {});

}  // namespace geovalid::apps
