#include "apps/friendship.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "obs/metrics.h"

namespace geovalid::apps {
namespace {

/// One venue event: a user present at a venue over [start, end].
struct VenueEvent {
  trace::UserId user = 0;
  trace::TimeSec start = 0;
  trace::TimeSec end = 0;
};

UserPair make_pair_sorted(trace::UserId a, trace::UserId b) {
  return a < b ? UserPair{a, b} : UserPair{b, a};
}

}  // namespace

std::map<UserPair, double> colocation_counts(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    TrainingSource source, const ColocationConfig& config) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "colocation_counts: validation does not match dataset");
  }

  // Bucket events per venue.
  std::map<trace::PoiId, std::vector<VenueEvent>> by_venue;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const trace::UserRecord& user = users[u];
    if (source == TrainingSource::kGpsVisits) {
      for (const trace::Visit& v : user.visits) {
        if (v.poi == trace::kNoPoi) continue;
        by_venue[v.poi].push_back(VenueEvent{user.id, v.start, v.end});
      }
      continue;
    }
    const auto events = user.checkins.events();
    const auto& labels = validation.users[u].labels;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (source == TrainingSource::kHonestCheckins &&
          labels[i] != match::CheckinClass::kHonest) {
        continue;
      }
      by_venue[events[i].poi].push_back(
          VenueEvent{user.id, events[i].t, events[i].t});
    }
  }

  // Sweep each venue's events in time order; events whose padded intervals
  // overlap are co-locations, weighted down at venues everyone frequents.
  std::map<UserPair, double> counts;
  for (auto& [venue, events] : by_venue) {
    std::sort(events.begin(), events.end(),
              [](const VenueEvent& a, const VenueEvent& b) {
                return a.start < b.start;
              });
    double weight = 1.0;
    if (config.weight_by_venue_rarity) {
      std::set<trace::UserId> distinct;
      for (const VenueEvent& e : events) distinct.insert(e.user);
      weight = 1.0 / std::log2(2.0 + static_cast<double>(distinct.size()));
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      const trace::TimeSec horizon = events[i].end + config.window;
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        if (events[j].start > horizon) break;
        if (events[i].user == events[j].user) continue;
        counts[make_pair_sorted(events[i].user, events[j].user)] += weight;
      }
    }
  }
  return counts;
}

double FriendshipScore::precision_at_k() const {
  return predicted == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(predicted);
}

FriendshipScore evaluate_friendship(const trace::Dataset& ds,
                                    const match::ValidationResult& validation,
                                    TrainingSource source,
                                    std::span<const UserPair> truth,
                                    const ColocationConfig& config) {
  obs::StageTimer timer(&obs::registry().histogram(
      "apps_stage_ns", "Wall time of application-study stages (nanoseconds)",
      {{"stage", "friendship_evaluate"}}));
  const auto counts = colocation_counts(ds, validation, source, config);

  std::set<UserPair> truth_set;
  for (const UserPair& p : truth) {
    truth_set.insert(make_pair_sorted(p.first, p.second));
  }

  std::vector<std::pair<UserPair, double>> ranked(counts.begin(),
                                                  counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });

  FriendshipScore score;
  score.true_pairs = truth_set.size();
  const std::size_t k = std::min(truth_set.size(), ranked.size());
  score.predicted = k;
  for (std::size_t i = 0; i < k; ++i) {
    if (truth_set.count(ranked[i].first) > 0) ++score.hits;
  }
  return score;
}

}  // namespace geovalid::apps
