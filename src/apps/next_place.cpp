#include "apps/next_place.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace geovalid::apps {

void NextPlaceModel::train(std::span<const trace::PoiId> sequence) {
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (sequence[i] == trace::kNoPoi) continue;
    ++popularity_[sequence[i]];
    if (i > 0 && sequence[i - 1] != trace::kNoPoi &&
        sequence[i - 1] != sequence[i]) {
      ++transitions_[sequence[i - 1]][sequence[i]];
    }
  }
}

std::vector<trace::PoiId> NextPlaceModel::predict(trace::PoiId current,
                                                  std::size_t k) const {
  std::vector<trace::PoiId> out;
  if (k == 0) return out;

  // Rank transition targets by count (ties: smaller id for determinism).
  const auto it = transitions_.find(current);
  if (it != transitions_.end()) {
    std::vector<std::pair<trace::PoiId, std::size_t>> ranked(
        it->second.begin(), it->second.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    for (const auto& [venue, count] : ranked) {
      out.push_back(venue);
      if (out.size() == k) return out;
    }
  }

  // Popularity backoff for the remaining slots.
  std::vector<std::pair<trace::PoiId, std::size_t>> pop(popularity_.begin(),
                                                        popularity_.end());
  std::sort(pop.begin(), pop.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (const auto& [venue, count] : pop) {
    if (venue == current) continue;
    if (std::find(out.begin(), out.end(), venue) != out.end()) continue;
    out.push_back(venue);
    if (out.size() == k) break;
  }
  return out;
}

double PredictionScore::accuracy_at_1() const {
  return cases == 0 ? 0.0
                    : static_cast<double>(top1) / static_cast<double>(cases);
}

double PredictionScore::accuracy_at_3() const {
  return cases == 0 ? 0.0
                    : static_cast<double>(top3) / static_cast<double>(cases);
}

std::string_view to_string(TrainingSource s) {
  switch (s) {
    case TrainingSource::kGpsVisits: return "gps-visits";
    case TrainingSource::kHonestCheckins: return "honest-checkins";
    case TrainingSource::kAllCheckins: return "all-checkins";
  }
  return "?";
}

namespace {

/// Venue sequence of the user's events from `source` with timestamps below
/// `cutoff`.
std::vector<trace::PoiId> training_sequence(
    const trace::UserRecord& user, const match::UserValidation& uv,
    TrainingSource source, trace::TimeSec cutoff) {
  std::vector<trace::PoiId> seq;
  if (source == TrainingSource::kGpsVisits) {
    for (const trace::Visit& v : user.visits) {
      if (v.start >= cutoff) break;
      seq.push_back(v.poi);
    }
    return seq;
  }
  const auto events = user.checkins.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].t >= cutoff) break;
    if (source == TrainingSource::kHonestCheckins &&
        uv.labels[i] != match::CheckinClass::kHonest) {
      continue;
    }
    seq.push_back(events[i].poi);
  }
  return seq;
}

}  // namespace

PredictionScore evaluate_next_place(const trace::Dataset& ds,
                                    const match::ValidationResult& validation,
                                    TrainingSource source,
                                    const PredictionConfig& config) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "evaluate_next_place: validation does not match dataset");
  }
  if (config.train_fraction <= 0.0 || config.train_fraction >= 1.0) {
    throw std::invalid_argument(
        "evaluate_next_place: train_fraction must be in (0,1)");
  }
  obs::StageTimer timer(&obs::registry().histogram(
      "apps_stage_ns", "Wall time of application-study stages (nanoseconds)",
      {{"stage", "next_place_evaluate"}}));

  PredictionScore score;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const trace::UserRecord& user = users[u];
    if (user.visits.size() < 8 || user.gps.empty()) continue;

    const trace::TimeSec span_start = user.gps.start_time();
    const trace::TimeSec span_end = user.gps.end_time();
    const auto cutoff = static_cast<trace::TimeSec>(
        static_cast<double>(span_start) +
        config.train_fraction *
            static_cast<double>(span_end - span_start));

    NextPlaceModel model;
    model.train(training_sequence(user, validation.users[u], source, cutoff));
    if (model.empty()) continue;

    // Ground-truth test transitions: consecutive snapped visits after the
    // cutoff (place changes only; staying put is not a prediction case).
    trace::PoiId prev = trace::kNoPoi;
    for (const trace::Visit& v : user.visits) {
      if (v.start < cutoff || v.poi == trace::kNoPoi) {
        if (v.start < cutoff && v.poi != trace::kNoPoi) prev = v.poi;
        continue;
      }
      if (prev != trace::kNoPoi && v.poi != prev) {
        const auto guesses = model.predict(prev, 3);
        ++score.cases;
        if (!guesses.empty() && guesses[0] == v.poi) ++score.top1;
        if (std::find(guesses.begin(), guesses.end(), v.poi) !=
            guesses.end()) {
          ++score.top3;
        }
      }
      prev = v.poi;
    }
  }
  return score;
}

}  // namespace geovalid::apps
