// Commute-flow estimation — the paper's city-planning impact claim.
//
// §6.2: "city planning applications will under-estimate traffic on routes
// between residential areas and offices, due to fewer checkins in these
// places." This module computes origin-destination flows between venue
// categories from each trace and measures exactly that under-estimation.
#pragma once

#include <array>
#include <string_view>

#include "apps/next_place.h"  // TrainingSource
#include "match/pipeline.h"
#include "trace/dataset.h"

namespace geovalid::apps {

/// Directed flow counts between venue categories: flows[from][to] is the
/// number of consecutive-event transitions from a venue of category `from`
/// to one of category `to`.
struct CategoryFlow {
  std::array<std::array<std::uint64_t, trace::kPoiCategoryCount>,
             trace::kPoiCategoryCount>
      counts{};

  [[nodiscard]] std::uint64_t total() const;

  /// Share of all transitions on the commute corridor:
  /// Residence <-> (Professional or College), both directions.
  [[nodiscard]] double commute_share() const;

  /// Flattened row-major copy normalized to probabilities (all zeros when
  /// the flow is empty) — the vector the similarity metrics consume.
  [[nodiscard]] std::vector<double> normalized() const;
};

/// Builds the category flow of one trace type. GPS flows use consecutive
/// snapped visits; checkin flows use consecutive (kept) checkins.
[[nodiscard]] CategoryFlow category_flow(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    TrainingSource source);

/// Pearson correlation between two normalized flow matrices, in [-1, 1].
[[nodiscard]] double flow_correlation(const CategoryFlow& a,
                                      const CategoryFlow& b);

}  // namespace geovalid::apps
