// Missing-checkin analysis (§4.2, Figures 3 and 4).
#pragma once

#include <array>
#include <vector>

#include "match/pipeline.h"
#include "trace/dataset.h"

namespace geovalid::match {

/// For one user and one n: the fraction of her missing checkins that happen
/// at her top-n most-visited POIs.
///
/// Figure 3 plots, for each n in 1..5, the CDF across users of this ratio.
/// Visits that could not be snapped to any POI are excluded from both
/// numerator and denominator (they have no venue identity to rank).
struct TopPoiMissingRatios {
  /// ratios[n-1][u] = user u's missing ratio at her top-n POIs.
  std::array<std::vector<double>, 5> ratios;
};

[[nodiscard]] TopPoiMissingRatios missing_ratio_at_top_pois(
    const trace::Dataset& ds, const ValidationResult& validation);

/// Figure 4: distribution of missing checkins over the nine venue
/// categories, as percentages summing to ~100 (snapped visits only).
[[nodiscard]] std::array<double, trace::kPoiCategoryCount>
missing_by_category(const trace::Dataset& ds,
                    const ValidationResult& validation);

}  // namespace geovalid::match
