#include "match/burstiness.h"

#include <stdexcept>

namespace geovalid::match {
namespace {

/// Appends the inter-arrival gaps of the subsequence of user checkins whose
/// label passes `keep`.
template <typename Keep>
void append_gaps(const trace::UserRecord& rec, const UserValidation& uv,
                 Keep&& keep, std::vector<double>& out) {
  const auto events = rec.checkins.events();
  trace::TimeSec prev = 0;
  bool have_prev = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!keep(uv.labels[i])) continue;
    if (have_prev) {
      out.push_back(trace::to_minutes(events[i].t - prev));
    }
    prev = events[i].t;
    have_prev = true;
  }
}

void check_sizes(const trace::Dataset& ds,
                 const ValidationResult& validation) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument("burstiness: validation does not match dataset");
  }
}

}  // namespace

std::vector<double> class_interarrivals_min(const trace::Dataset& ds,
                                            const ValidationResult& validation,
                                            CheckinClass cls) {
  check_sizes(ds, validation);
  std::vector<double> gaps;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    append_gaps(users[u], validation.users[u],
                [cls](CheckinClass l) { return l == cls; }, gaps);
  }
  return gaps;
}

std::vector<double> all_checkin_interarrivals_min(const trace::Dataset& ds) {
  std::vector<double> gaps;
  for (const trace::UserRecord& u : ds.users()) {
    const auto user_gaps = u.checkins.interarrival_minutes();
    gaps.insert(gaps.end(), user_gaps.begin(), user_gaps.end());
  }
  return gaps;
}

std::vector<double> extraneous_interarrivals_min(
    const trace::Dataset& ds, const ValidationResult& validation) {
  check_sizes(ds, validation);
  std::vector<double> gaps;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    append_gaps(users[u], validation.users[u],
                [](CheckinClass l) { return l != CheckinClass::kHonest; },
                gaps);
  }
  return gaps;
}

}  // namespace geovalid::match
