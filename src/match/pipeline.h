// Dataset-level validation: run the matcher + classifier over every user
// and aggregate the Figure 1 partition.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/parallel.h"
#include "match/classifier.h"
#include "match/matcher.h"
#include "trace/dataset.h"

namespace geovalid::match {

/// Matching + classification output for one user.
struct UserValidation {
  trace::UserId id = 0;
  UserMatch match;
  std::vector<CheckinClass> labels;  ///< parallel to the user's checkins

  [[nodiscard]] std::size_t count_of(CheckinClass c) const;
};

/// Figure 1 numbers: the three-way event partition.
struct Partition {
  std::size_t honest = 0;
  std::size_t extraneous = 0;  ///< checkins without a matching visit
  std::size_t missing = 0;     ///< visits without a matching checkin
  std::size_t checkins = 0;
  std::size_t visits = 0;

  /// Per-class extraneous breakdown (§5.1); index by CheckinClass.
  std::array<std::size_t, kCheckinClassCount> by_class{};
};

/// Whole-dataset validation result.
struct ValidationResult {
  std::vector<UserValidation> users;
  Partition totals;
};

/// Runs the full §4 pipeline on a dataset. Users fan out over `threads`
/// (0 = all hardware threads); the result — user order, labels, totals —
/// is byte-identical at any thread count.
[[nodiscard]] ValidationResult validate_dataset(
    const trace::Dataset& ds, const MatchConfig& match_config = {},
    const ClassifierConfig& classifier_config = {}, std::size_t threads = 1);

/// Same, on a caller-owned pool (reused across pipeline stages).
[[nodiscard]] ValidationResult validate_dataset(
    const trace::Dataset& ds, const MatchConfig& match_config,
    const ClassifierConfig& classifier_config, core::ThreadPool& pool);

}  // namespace geovalid::match
