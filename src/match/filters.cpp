#include "match/filters.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace geovalid::match {

double DetectionScore::precision() const {
  const std::size_t flagged = true_positive + false_positive;
  return flagged == 0 ? 0.0
                      : static_cast<double>(true_positive) /
                            static_cast<double>(flagged);
}

double DetectionScore::recall() const {
  const std::size_t positives = true_positive + false_negative;
  return positives == 0 ? 0.0
                        : static_cast<double>(true_positive) /
                              static_cast<double>(positives);
}

double DetectionScore::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double DetectionScore::honest_loss() const {
  const std::size_t honest = false_positive + true_negative;
  return honest == 0 ? 0.0
                     : static_cast<double>(false_positive) /
                           static_cast<double>(honest);
}

std::vector<std::vector<bool>> burstiness_flags(
    const trace::Dataset& ds, const BurstinessFilterConfig& config) {
  std::vector<std::vector<bool>> flags;
  flags.reserve(ds.user_count());
  for (const trace::UserRecord& u : ds.users()) {
    const auto events = u.checkins.events();
    std::vector<bool> f(events.size(), false);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const bool bursty_prev =
          i > 0 && events[i].t - events[i - 1].t < config.gap_threshold;
      const bool bursty_next = i + 1 < events.size() &&
                               events[i + 1].t - events[i].t <
                                   config.gap_threshold;
      f[i] = bursty_prev || bursty_next;
    }
    flags.push_back(std::move(f));
  }
  return flags;
}

std::vector<std::vector<bool>> user_level_flags(
    const trace::Dataset& ds, double user_fraction,
    const BurstinessFilterConfig& config) {
  if (user_fraction < 0.0 || user_fraction > 1.0) {
    throw std::invalid_argument("user_level_flags: fraction not in [0,1]");
  }
  const auto per_checkin = burstiness_flags(ds, config);

  // Rank users by their burst fraction.
  std::vector<double> burst_fraction(per_checkin.size(), 0.0);
  for (std::size_t u = 0; u < per_checkin.size(); ++u) {
    if (per_checkin[u].empty()) continue;
    const auto bursty = static_cast<double>(
        std::count(per_checkin[u].begin(), per_checkin[u].end(), true));
    burst_fraction[u] = bursty / static_cast<double>(per_checkin[u].size());
  }
  std::vector<std::size_t> order(per_checkin.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return burst_fraction[a] > burst_fraction[b];
  });

  const auto cutoff = static_cast<std::size_t>(
      std::llround(user_fraction * static_cast<double>(order.size())));
  std::vector<std::vector<bool>> flags(per_checkin.size());
  for (std::size_t u = 0; u < per_checkin.size(); ++u) {
    flags[u].assign(per_checkin[u].size(), false);
  }
  for (std::size_t rank = 0; rank < cutoff && rank < order.size(); ++rank) {
    auto& f = flags[order[rank]];
    std::fill(f.begin(), f.end(), true);
  }
  return flags;
}

DetectionScore score_flags(const ValidationResult& validation,
                           const std::vector<std::vector<bool>>& flags) {
  if (validation.users.size() != flags.size()) {
    throw std::invalid_argument("score_flags: user count mismatch");
  }
  DetectionScore s;
  for (std::size_t u = 0; u < flags.size(); ++u) {
    const UserValidation& uv = validation.users[u];
    if (uv.labels.size() != flags[u].size()) {
      throw std::invalid_argument("score_flags: checkin count mismatch");
    }
    for (std::size_t i = 0; i < flags[u].size(); ++i) {
      const bool is_extraneous = uv.labels[i] != CheckinClass::kHonest;
      const bool flagged = flags[u][i];
      if (is_extraneous && flagged) ++s.true_positive;
      else if (is_extraneous) ++s.false_negative;
      else if (flagged) ++s.false_positive;
      else ++s.true_negative;
    }
  }
  return s;
}

std::vector<std::pair<double, DetectionScore>> burstiness_threshold_sweep(
    const trace::Dataset& ds, const ValidationResult& validation,
    std::span<const double> thresholds_min) {
  std::vector<std::pair<double, DetectionScore>> curve;
  curve.reserve(thresholds_min.size());
  for (double minutes : thresholds_min) {
    BurstinessFilterConfig cfg;
    cfg.gap_threshold =
        static_cast<trace::TimeSec>(std::llround(minutes * 60.0));
    const auto flags = burstiness_flags(ds, cfg);
    curve.emplace_back(minutes, score_flags(validation, flags));
  }
  return curve;
}

}  // namespace geovalid::match
