#include "match/prevalence.h"

#include <algorithm>
#include <stdexcept>

namespace geovalid::match {

std::vector<double> per_user_class_ratio(const ValidationResult& validation,
                                         CheckinClass cls) {
  std::vector<double> ratios;
  ratios.reserve(validation.users.size());
  for (const UserValidation& uv : validation.users) {
    if (uv.labels.empty()) continue;
    ratios.push_back(static_cast<double>(uv.count_of(cls)) /
                     static_cast<double>(uv.labels.size()));
  }
  return ratios;
}

std::vector<double> per_user_extraneous_ratio(
    const ValidationResult& validation) {
  std::vector<double> ratios;
  ratios.reserve(validation.users.size());
  for (const UserValidation& uv : validation.users) {
    if (uv.labels.empty()) continue;
    const std::size_t extraneous =
        uv.labels.size() - uv.count_of(CheckinClass::kHonest);
    ratios.push_back(static_cast<double>(extraneous) /
                     static_cast<double>(uv.labels.size()));
  }
  return ratios;
}

double honest_loss_at_extraneous_coverage(const ValidationResult& validation,
                                          double extraneous_coverage) {
  if (extraneous_coverage < 0.0 || extraneous_coverage > 1.0) {
    throw std::invalid_argument(
        "honest_loss_at_extraneous_coverage: coverage not in [0,1]");
  }

  struct UserCounts {
    std::size_t extraneous = 0;
    std::size_t honest = 0;
  };
  std::vector<UserCounts> users;
  std::size_t total_extraneous = 0;
  std::size_t total_honest = 0;
  for (const UserValidation& uv : validation.users) {
    UserCounts c;
    c.honest = uv.count_of(CheckinClass::kHonest);
    c.extraneous = uv.labels.size() - c.honest;
    total_extraneous += c.extraneous;
    total_honest += c.honest;
    users.push_back(c);
  }
  if (total_extraneous == 0 || total_honest == 0) return 0.0;

  // Drop users in order of extraneous volume (the natural removal policy).
  std::sort(users.begin(), users.end(),
            [](const UserCounts& a, const UserCounts& b) {
              return a.extraneous > b.extraneous;
            });

  const double target =
      extraneous_coverage * static_cast<double>(total_extraneous);
  std::size_t removed_extraneous = 0;
  std::size_t removed_honest = 0;
  for (const UserCounts& c : users) {
    if (static_cast<double>(removed_extraneous) >= target) break;
    removed_extraneous += c.extraneous;
    removed_honest += c.honest;
  }
  return static_cast<double>(removed_honest) /
         static_cast<double>(total_honest);
}

}  // namespace geovalid::match
