#include "match/classifier.h"

#include <cmath>
#include <stdexcept>

#include "geo/geodesic.h"

namespace geovalid::match {

std::string_view to_string(CheckinClass c) {
  switch (c) {
    case CheckinClass::kHonest: return "honest";
    case CheckinClass::kSuperfluous: return "superfluous";
    case CheckinClass::kRemote: return "remote";
    case CheckinClass::kDriveby: return "driveby";
    case CheckinClass::kUnclassified: return "unclassified";
  }
  return "?";
}

std::vector<CheckinClass> classify_user(
    std::span<const trace::Checkin> checkins, const trace::GpsTrace& gps,
    const UserMatch& match, const ClassifierConfig& config) {
  if (match.checkins.size() != checkins.size()) {
    throw std::invalid_argument(
        "classify_user: match result does not belong to this checkin trace");
  }

  std::vector<CheckinClass> labels(checkins.size(),
                                   CheckinClass::kUnclassified);
  for (std::size_t i = 0; i < checkins.size(); ++i) {
    if (match.checkins[i].visit.has_value()) {
      labels[i] = CheckinClass::kHonest;
      continue;
    }
    const trace::Checkin& c = checkins[i];

    // Locate the user's GPS evidence at checkin time.
    const trace::GpsPoint* sample = gps.sample_at(c.t);
    if (sample == nullptr || c.t - sample->t > config.max_gps_gap) {
      labels[i] = CheckinClass::kUnclassified;
      continue;
    }

    const double venue_dist =
        geo::distance_m(sample->position, c.location);
    if (venue_dist > config.remote_threshold_m) {
      labels[i] = CheckinClass::kRemote;
      continue;
    }
    const double speed = gps.speed_at(c.t);
    labels[i] = speed > config.driveby_speed_mps ? CheckinClass::kDriveby
                                                 : CheckinClass::kSuperfluous;
  }
  return labels;
}

}  // namespace geovalid::match
