// Extraneous-checkin detectors (§5.3 and §7 "Detecting Extraneous
// Checkins").
//
// The hard constraint these detectors live under: a consumer of a geosocial
// trace has only the checkin trace itself — no GPS ground truth. The paper
// identifies temporal burstiness as the most promising checkin-only signal;
// the per-user prevalence analysis shows user-level filtering is a blunt
// instrument. Both are implemented here and scored against the matcher's
// labels.
#pragma once

#include <vector>

#include "match/pipeline.h"
#include "trace/dataset.h"

namespace geovalid::match {

/// Quality of a binary extraneous-vs-honest detector.
struct DetectionScore {
  std::size_t true_positive = 0;   ///< extraneous flagged extraneous
  std::size_t false_positive = 0;  ///< honest flagged extraneous
  std::size_t false_negative = 0;  ///< extraneous kept
  std::size_t true_negative = 0;   ///< honest kept

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
  /// Fraction of honest checkins wrongly removed (the paper's headline cost
  /// metric for user-level filtering).
  [[nodiscard]] double honest_loss() const;
};

/// Burstiness detector: a checkin is flagged when its gap to the previous
/// *or* next checkin of the same user is below `gap_threshold`. Figure 6
/// motivates this: 35% of extraneous checkins arrive within one minute of
/// their predecessor while honest gaps exceed ten minutes.
struct BurstinessFilterConfig {
  trace::TimeSec gap_threshold = trace::minutes(10);
};

/// Per-user flags (parallel to the user's checkins): true = predicted
/// extraneous.
[[nodiscard]] std::vector<std::vector<bool>> burstiness_flags(
    const trace::Dataset& ds, const BurstinessFilterConfig& config = {});

/// User-level detector: flag *every* checkin of the users with the largest
/// burst fraction until `user_fraction` of users are flagged.
[[nodiscard]] std::vector<std::vector<bool>> user_level_flags(
    const trace::Dataset& ds, double user_fraction,
    const BurstinessFilterConfig& config = {});

/// Scores per-user predictions against the matcher's labels (honest =
/// negative class, everything else positive).
[[nodiscard]] DetectionScore score_flags(
    const ValidationResult& validation,
    const std::vector<std::vector<bool>>& flags);

/// Sweeps the burstiness threshold and returns one score per grid value —
/// the detector's operating curve.
[[nodiscard]] std::vector<std::pair<double, DetectionScore>>
burstiness_threshold_sweep(const trace::Dataset& ds,
                           const ValidationResult& validation,
                           std::span<const double> thresholds_min);

}  // namespace geovalid::match
