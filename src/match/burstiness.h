// Temporal burstiness of checkin classes (§5.3, Figures 2 and 6).
#pragma once

#include <vector>

#include "match/pipeline.h"
#include "trace/dataset.h"

namespace geovalid::match {

/// Pooled inter-arrival gaps (minutes) between consecutive checkins *of the
/// given class* per user. This is Figure 6: extraneous classes arrive in
/// tight bursts; honest checkins are spread out.
[[nodiscard]] std::vector<double> class_interarrivals_min(
    const trace::Dataset& ds, const ValidationResult& validation,
    CheckinClass cls);

/// Pooled inter-arrival gaps (minutes) of every checkin regardless of class
/// — the "All Checkin" curves of Figure 2.
[[nodiscard]] std::vector<double> all_checkin_interarrivals_min(
    const trace::Dataset& ds);

/// Pooled inter-arrival gaps (minutes) between consecutive *extraneous*
/// checkins of any class (superfluous + remote + driveby + unclassified).
[[nodiscard]] std::vector<double> extraneous_interarrivals_min(
    const trace::Dataset& ds, const ValidationResult& validation);

}  // namespace geovalid::match
