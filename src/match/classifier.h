// Extraneous-checkin taxonomy (§5.1).
//
// Every checkin left unmatched by the matcher is classified by comparing it
// with the user's GPS evidence at checkin time:
//   remote       venue > remote_threshold from the user's true position
//                (the user is plainly somewhere else)
//   driveby      venue nearby but the user was moving faster than the
//                driveby speed threshold (4 mph in the paper)
//   superfluous  venue nearby, user stationary — an extra checkin fired
//                from a real visit's location
//   unclassified no usable GPS evidence near the checkin time (the paper's
//                residual ~10%)
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "match/matcher.h"
#include "trace/checkin.h"
#include "trace/gps.h"

namespace geovalid::match {

/// Final label of a checkin after matching + classification.
enum class CheckinClass : std::uint8_t {
  kHonest = 0,
  kSuperfluous,
  kRemote,
  kDriveby,
  kUnclassified,
};

inline constexpr std::size_t kCheckinClassCount = 5;

[[nodiscard]] std::string_view to_string(CheckinClass c);

/// Classification thresholds.
struct ClassifierConfig {
  /// Beyond this venue-to-user distance the checkin is a remote fake
  /// ("500 m is beyond any reasonable GPS or POI location error").
  double remote_threshold_m = 500.0;

  /// Above this speed a nearby checkin counts as driveby (4 mph).
  double driveby_speed_mps = 1.78816;

  /// A GPS sample must exist within this gap of the checkin time for the
  /// checkin to be classifiable at all.
  trace::TimeSec max_gps_gap = trace::minutes(10);
};

/// Labels every checkin of one user: matched ones become kHonest, the rest
/// get the taxonomy above. Returned vector parallels `checkins`.
[[nodiscard]] std::vector<CheckinClass> classify_user(
    std::span<const trace::Checkin> checkins, const trace::GpsTrace& gps,
    const UserMatch& match, const ClassifierConfig& config = {});

}  // namespace geovalid::match
