// The paper's checkin-to-visit matching algorithm (§4.1).
//
// For each checkin c:
//   Step 1: collect the user's visits whose location is within alpha metres
//           of c's venue coordinates.
//   Step 2: among those, take the visit with the smallest interval timestamp
//           distance delta-t (0 if the checkin falls inside the visit,
//           otherwise distance to the nearer end); match if delta-t < beta.
// A visit claimed by several checkins goes to the geographically closest
// one; the paper leaves the losers unmatched (an optional re-match mode,
// used by the ablation bench, lets losers fall back to their next-best
// candidate instead).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "trace/checkin.h"
#include "trace/gps.h"

namespace geovalid::match {

/// Matching thresholds. Defaults are the paper's chosen operating point
/// ("most consistent for alpha = 500 m and beta = 30 min").
struct MatchConfig {
  double alpha_m = 500.0;
  trace::TimeSec beta = trace::minutes(30);

  /// Paper behaviour (false): a checkin that loses a visit to a closer
  /// checkin stays unmatched. Re-match mode (true): losers retry their
  /// next-best candidate until none is left.
  bool rematch_losers = false;

  /// Use the O(checkins x visits) reference candidate sweep instead of the
  /// pruned one (time-window binary search + distance lower bound). The two
  /// produce identical output — this knob exists for the equivalence tests
  /// and the before/after throughput bench.
  bool reference_matcher = false;
};

/// Per-checkin outcome.
struct CheckinMatch {
  /// Index into the user's visit array; nullopt = extraneous.
  std::optional<std::size_t> visit;
  trace::TimeSec dt = 0;   ///< interval timestamp distance of the match
  double dist_m = 0.0;     ///< venue-to-visit-centroid distance of the match
};

/// Result of matching one user's two traces.
struct UserMatch {
  std::vector<CheckinMatch> checkins;  ///< parallel to the checkin trace
  std::vector<bool> visit_matched;     ///< parallel to the visit array

  [[nodiscard]] std::size_t honest_count() const;
  [[nodiscard]] std::size_t extraneous_count() const;
  [[nodiscard]] std::size_t missing_count() const;  ///< unmatched visits
};

/// Runs the matching algorithm for one user. Candidate generation is pruned
/// (visits indexed by interval start, haversine gated behind a cheap lower
/// bound) unless `config.reference_matcher` asks for the naive sweep; both
/// paths produce bit-identical results.
[[nodiscard]] UserMatch match_user(std::span<const trace::Checkin> checkins,
                                   std::span<const trace::Visit> visits,
                                   const MatchConfig& config = {});

/// The naive O(checkins x visits) matcher, kept as the executable
/// specification: randomized tests assert match_user is equivalent to it.
/// `config.reference_matcher` is ignored (this is always the reference).
[[nodiscard]] UserMatch match_user_reference(
    std::span<const trace::Checkin> checkins,
    std::span<const trace::Visit> visits, const MatchConfig& config = {});

}  // namespace geovalid::match
