// Per-user prevalence of extraneous checkins (§5.3, Figure 5).
#pragma once

#include <vector>

#include "match/pipeline.h"

namespace geovalid::match {

/// Per-user ratio of a class of checkins to total checkins. Users without
/// checkins are skipped.
[[nodiscard]] std::vector<double> per_user_class_ratio(
    const ValidationResult& validation, CheckinClass cls);

/// Per-user ratio of *all* extraneous checkins (everything not honest) —
/// the "All Extraneous" curve of Figure 5.
[[nodiscard]] std::vector<double> per_user_extraneous_ratio(
    const ValidationResult& validation);

/// The §5.3 tradeoff: if we drop the heaviest extraneous producers until
/// `extraneous_coverage` (e.g. 0.8) of all extraneous checkins are removed,
/// what fraction of honest checkins do we lose with them?
///
/// (The paper: removing users responsible for 80% of extraneous checkins
/// also removes 53% of honest checkins.)
[[nodiscard]] double honest_loss_at_extraneous_coverage(
    const ValidationResult& validation, double extraneous_coverage);

}  // namespace geovalid::match
