// Incentive analysis (§5.2, Table 2): correlation between each user's
// checkin-type ratios and her Foursquare profile features.
#pragma once

#include <array>
#include <string_view>

#include "match/pipeline.h"
#include "trace/dataset.h"

namespace geovalid::match {

/// Profile features in Table 2's column order.
enum class ProfileFeature : std::uint8_t {
  kFriends = 0,
  kBadges,
  kMayors,
  kCheckinsPerDay,
};

inline constexpr std::size_t kProfileFeatureCount = 4;

[[nodiscard]] std::string_view to_string(ProfileFeature f);

/// Table 2: rows are checkin types (superfluous, remote, driveby, honest),
/// columns the four profile features; entries are Pearson correlations of
/// per-user (type ratio, feature) pairs.
struct IncentiveTable {
  /// Row order matches Table 2: Superfluous, Remote, Driveby, Honest.
  static constexpr std::array<CheckinClass, 4> kRows = {
      CheckinClass::kSuperfluous, CheckinClass::kRemote,
      CheckinClass::kDriveby, CheckinClass::kHonest};

  std::array<std::array<double, kProfileFeatureCount>, 4> pearson{};
  std::array<std::array<double, kProfileFeatureCount>, 4> spearman{};
};

/// Computes the table over all users with at least one checkin.
[[nodiscard]] IncentiveTable incentive_correlations(
    const trace::Dataset& ds, const ValidationResult& validation);

}  // namespace geovalid::match
