#include "match/incentives.h"

#include <stdexcept>
#include <vector>

#include "stats/correlation.h"

namespace geovalid::match {

std::string_view to_string(ProfileFeature f) {
  switch (f) {
    case ProfileFeature::kFriends: return "#Friends";
    case ProfileFeature::kBadges: return "#Badges";
    case ProfileFeature::kMayors: return "#Mayors";
    case ProfileFeature::kCheckinsPerDay: return "#Checkins/Day";
  }
  return "?";
}

IncentiveTable incentive_correlations(const trace::Dataset& ds,
                                      const ValidationResult& validation) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument("incentives: validation does not match dataset");
  }

  // Per-user feature vectors and per-class ratios, aligned.
  std::array<std::vector<double>, kProfileFeatureCount> features;
  std::array<std::vector<double>, 4> ratios;

  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const UserValidation& uv = validation.users[u];
    if (uv.labels.empty()) continue;
    const trace::UserProfile& prof = users[u].profile;

    features[0].push_back(static_cast<double>(prof.friends));
    features[1].push_back(static_cast<double>(prof.badges));
    features[2].push_back(static_cast<double>(prof.mayorships));
    features[3].push_back(prof.checkins_per_day);

    const auto total = static_cast<double>(uv.labels.size());
    for (std::size_t r = 0; r < IncentiveTable::kRows.size(); ++r) {
      ratios[r].push_back(
          static_cast<double>(uv.count_of(IncentiveTable::kRows[r])) / total);
    }
  }

  IncentiveTable table;
  if (features[0].size() < 2) return table;  // not enough users to correlate

  for (std::size_t r = 0; r < IncentiveTable::kRows.size(); ++r) {
    for (std::size_t f = 0; f < kProfileFeatureCount; ++f) {
      table.pearson[r][f] = stats::pearson(ratios[r], features[f]);
      table.spearman[r][f] = stats::spearman(ratios[r], features[f]);
    }
  }
  return table;
}

}  // namespace geovalid::match
