#include "match/matcher.h"

#include <algorithm>
#include <limits>

#include "geo/geodesic.h"

namespace geovalid::match {
namespace {

/// One candidate visit for a checkin, ordered by the matching preference:
/// smaller interval timestamp distance first, geographic distance breaking
/// ties.
struct Candidate {
  std::size_t visit = 0;
  trace::TimeSec dt = 0;
  double dist_m = 0.0;

  bool operator<(const Candidate& o) const {
    if (dt != o.dt) return dt < o.dt;
    return dist_m < o.dist_m;
  }
};

}  // namespace

std::size_t UserMatch::honest_count() const {
  std::size_t n = 0;
  for (const CheckinMatch& m : checkins) {
    if (m.visit.has_value()) ++n;
  }
  return n;
}

std::size_t UserMatch::extraneous_count() const {
  return checkins.size() - honest_count();
}

std::size_t UserMatch::missing_count() const {
  std::size_t n = 0;
  for (bool matched : visit_matched) {
    if (!matched) ++n;
  }
  return n;
}

UserMatch match_user(std::span<const trace::Checkin> checkins,
                     std::span<const trace::Visit> visits,
                     const MatchConfig& config) {
  UserMatch result;
  result.checkins.resize(checkins.size());
  result.visit_matched.assign(visits.size(), false);
  if (checkins.empty() || visits.empty()) return result;

  // Step 1 + 2 preparation: per-checkin sorted candidate lists.
  std::vector<std::vector<Candidate>> candidates(checkins.size());
  for (std::size_t i = 0; i < checkins.size(); ++i) {
    const trace::Checkin& c = checkins[i];
    for (std::size_t j = 0; j < visits.size(); ++j) {
      const double d = geo::distance_m(c.location, visits[j].centroid);
      if (d > config.alpha_m) continue;
      const trace::TimeSec dt = trace::interval_distance(visits[j], c.t);
      if (dt >= config.beta) continue;
      candidates[i].push_back(Candidate{j, dt, d});
    }
    std::sort(candidates[i].begin(), candidates[i].end());
  }

  // Assignment. holder[j] = checkin currently owning visit j.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> holder(visits.size(), kNone);
  std::vector<std::size_t> cursor(checkins.size(), 0);  // next candidate

  // Every checkin proposes to its best candidate. A visit keeps the
  // geographically closest proposer (the paper's tie-break). In re-match
  // mode displaced checkins continue down their candidate list; in paper
  // mode they simply stay unmatched.
  std::vector<std::size_t> pending;
  pending.reserve(checkins.size());
  for (std::size_t i = 0; i < checkins.size(); ++i) pending.push_back(i);

  auto geo_dist_of = [&](std::size_t checkin_idx,
                         std::size_t visit_idx) -> double {
    return geo::distance_m(checkins[checkin_idx].location,
                           visits[visit_idx].centroid);
  };

  while (!pending.empty()) {
    const std::size_t i = pending.back();
    pending.pop_back();

    bool assigned = false;
    while (cursor[i] < candidates[i].size()) {
      const Candidate& cand = candidates[i][cursor[i]];
      const std::size_t j = cand.visit;
      if (holder[j] == kNone) {
        holder[j] = i;
        assigned = true;
        break;
      }
      // Contested: geographically closest checkin keeps the visit.
      const double incumbent_d = geo_dist_of(holder[j], j);
      if (cand.dist_m < incumbent_d) {
        const std::size_t displaced = holder[j];
        holder[j] = i;
        if (config.rematch_losers) {
          ++cursor[displaced];
          pending.push_back(displaced);
        } else {
          // Paper behaviour: the displaced checkin becomes extraneous and
          // never proposes again.
          cursor[displaced] = candidates[displaced].size();
        }
        assigned = true;
        break;
      }
      if (!config.rematch_losers) {
        // Paper behaviour: lose the contest once, stay unmatched.
        cursor[i] = candidates[i].size();
        break;
      }
      ++cursor[i];
    }
    (void)assigned;
  }

  for (std::size_t j = 0; j < visits.size(); ++j) {
    if (holder[j] == kNone) continue;
    const std::size_t i = holder[j];
    result.visit_matched[j] = true;
    CheckinMatch& m = result.checkins[i];
    m.visit = j;
    m.dt = trace::interval_distance(visits[j], checkins[i].t);
    m.dist_m = geo_dist_of(i, j);
  }
  return result;
}

}  // namespace geovalid::match
