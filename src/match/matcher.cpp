#include "match/matcher.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "geo/geodesic.h"

namespace geovalid::match {
namespace {

/// One candidate visit for a checkin, ordered by the matching preference:
/// smaller interval timestamp distance first, geographic distance breaking
/// ties, visit index last. The index tie-break makes the order a total one:
/// the pruned and reference generators enumerate (checkin, visit) pairs in
/// different orders, and exact (dt, dist) ties — duplicate visits do occur —
/// must not let std::sort's instability pick different winners.
struct Candidate {
  std::size_t visit = 0;
  trace::TimeSec dt = 0;
  double dist_m = 0.0;

  bool operator<(const Candidate& o) const {
    if (dt != o.dt) return dt < o.dt;
    if (dist_m != o.dist_m) return dist_m < o.dist_m;
    return visit < o.visit;
  }
};

using CandidateLists = std::vector<std::vector<Candidate>>;

/// Reference candidate generation: the full O(checkins x visits) sweep with
/// one haversine per pair, exactly as the paper describes the filter.
CandidateLists reference_candidates(std::span<const trace::Checkin> checkins,
                                    std::span<const trace::Visit> visits,
                                    const MatchConfig& config) {
  CandidateLists candidates(checkins.size());
  for (std::size_t i = 0; i < checkins.size(); ++i) {
    const trace::Checkin& c = checkins[i];
    for (std::size_t j = 0; j < visits.size(); ++j) {
      const double d = geo::distance_m(c.location, visits[j].centroid);
      if (d > config.alpha_m) continue;
      const trace::TimeSec dt = trace::interval_distance(visits[j], c.t);
      if (dt >= config.beta) continue;
      candidates[i].push_back(Candidate{j, dt, d});
    }
    std::sort(candidates[i].begin(), candidates[i].end());
  }
  return candidates;
}

/// Pruned candidate generation. Produces exactly the same candidate lists
/// as the reference sweep (tested over fuzzed traces) but only pays for
/// plausible pairs:
///
///   time: visits are indexed by interval start once per user. A checkin at
///   t can only match visits with start < t + beta, found by binary search;
///   scanning those backwards stops as soon as every earlier visit ends
///   before t - beta (a running prefix max of interval ends).
///
///   space: geo::bound_distance_m is a guaranteed lower bound on the
///   haversine, so `bound > alpha` rejects a pair without the exact
///   formula. The haversine only runs on pairs that pass both gates.
CandidateLists pruned_candidates(std::span<const trace::Checkin> checkins,
                                 std::span<const trace::Visit> visits,
                                 const MatchConfig& config) {
  // Visit indices ordered by (interval start, index); detector output is
  // already time-sorted, so this sort is near-free in practice.
  std::vector<std::size_t> by_start(visits.size());
  std::iota(by_start.begin(), by_start.end(), std::size_t{0});
  std::sort(by_start.begin(), by_start.end(),
            [&](std::size_t a, std::size_t b) {
              if (visits[a].start != visits[b].start) {
                return visits[a].start < visits[b].start;
              }
              return a < b;
            });
  std::vector<trace::TimeSec> starts(visits.size());
  std::vector<trace::TimeSec> prefix_max_end(visits.size());
  trace::TimeSec max_end = std::numeric_limits<trace::TimeSec>::min();
  for (std::size_t k = 0; k < by_start.size(); ++k) {
    const trace::Visit& v = visits[by_start[k]];
    starts[k] = v.start;
    max_end = std::max(max_end, v.end);
    prefix_max_end[k] = max_end;
  }

  CandidateLists candidates(checkins.size());
  for (std::size_t i = 0; i < checkins.size(); ++i) {
    const trace::Checkin& c = checkins[i];
    // First index whose start >= t + beta: dt >= beta for it and everything
    // after, so the scan is bounded above by `hi`.
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(starts.begin(), starts.end(), c.t + config.beta) -
        starts.begin());
    for (std::size_t k = hi; k-- > 0;) {
      // Every visit at or before k ends by prefix_max_end[k]; once that is
      // beta or more in the past, no earlier visit can reach the window.
      if (prefix_max_end[k] + config.beta <= c.t) break;
      const std::size_t j = by_start[k];
      const trace::TimeSec dt = trace::interval_distance(visits[j], c.t);
      if (dt >= config.beta) continue;
      if (geo::bound_distance_m(c.location, visits[j].centroid) >
          config.alpha_m) {
        continue;
      }
      const double d = geo::distance_m(c.location, visits[j].centroid);
      if (d > config.alpha_m) continue;
      candidates[i].push_back(Candidate{j, dt, d});
    }
    std::sort(candidates[i].begin(), candidates[i].end());
  }
  return candidates;
}

/// Assignment over prepared candidate lists. holder[j] = checkin currently
/// owning visit j; holder_dist[j] caches that checkin's distance to the
/// visit so contests never recompute a haversine already carried by the
/// winning Candidate.
UserMatch assign(std::span<const trace::Checkin> checkins,
                 std::span<const trace::Visit> visits,
                 const MatchConfig& config, const CandidateLists& candidates) {
  UserMatch result;
  result.checkins.resize(checkins.size());
  result.visit_matched.assign(visits.size(), false);

  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> holder(visits.size(), kNone);
  std::vector<double> holder_dist(visits.size(), 0.0);
  std::vector<std::size_t> cursor(checkins.size(), 0);  // next candidate

  // Every checkin proposes to its best candidate. A visit keeps the
  // geographically closest proposer (the paper's tie-break). In re-match
  // mode displaced checkins continue down their candidate list; in paper
  // mode they simply stay unmatched.
  std::vector<std::size_t> pending;
  pending.reserve(checkins.size());
  for (std::size_t i = 0; i < checkins.size(); ++i) pending.push_back(i);

  while (!pending.empty()) {
    const std::size_t i = pending.back();
    pending.pop_back();

    while (cursor[i] < candidates[i].size()) {
      const Candidate& cand = candidates[i][cursor[i]];
      const std::size_t j = cand.visit;
      if (holder[j] == kNone) {
        holder[j] = i;
        holder_dist[j] = cand.dist_m;
        break;
      }
      // Contested: geographically closest checkin keeps the visit.
      if (cand.dist_m < holder_dist[j]) {
        const std::size_t displaced = holder[j];
        holder[j] = i;
        holder_dist[j] = cand.dist_m;
        if (config.rematch_losers) {
          ++cursor[displaced];
          pending.push_back(displaced);
        } else {
          // Paper behaviour: the displaced checkin becomes extraneous and
          // never proposes again.
          cursor[displaced] = candidates[displaced].size();
        }
        break;
      }
      if (!config.rematch_losers) {
        // Paper behaviour: lose the contest once, stay unmatched.
        cursor[i] = candidates[i].size();
        break;
      }
      ++cursor[i];
    }
  }

  for (std::size_t j = 0; j < visits.size(); ++j) {
    if (holder[j] == kNone) continue;
    const std::size_t i = holder[j];
    result.visit_matched[j] = true;
    // A checkin that holds a visit broke out of its proposal loop with
    // cursor[i] at the winning candidate, which already carries dt and the
    // haversine distance.
    const Candidate& cand = candidates[i][cursor[i]];
    CheckinMatch& m = result.checkins[i];
    m.visit = j;
    m.dt = cand.dt;
    m.dist_m = cand.dist_m;
  }
  return result;
}

}  // namespace

std::size_t UserMatch::honest_count() const {
  std::size_t n = 0;
  for (const CheckinMatch& m : checkins) {
    if (m.visit.has_value()) ++n;
  }
  return n;
}

std::size_t UserMatch::extraneous_count() const {
  return checkins.size() - honest_count();
}

std::size_t UserMatch::missing_count() const {
  std::size_t n = 0;
  for (bool matched : visit_matched) {
    if (!matched) ++n;
  }
  return n;
}

UserMatch match_user(std::span<const trace::Checkin> checkins,
                     std::span<const trace::Visit> visits,
                     const MatchConfig& config) {
  if (checkins.empty() || visits.empty()) {
    UserMatch result;
    result.checkins.resize(checkins.size());
    result.visit_matched.assign(visits.size(), false);
    return result;
  }
  return assign(checkins, visits, config,
                config.reference_matcher
                    ? reference_candidates(checkins, visits, config)
                    : pruned_candidates(checkins, visits, config));
}

UserMatch match_user_reference(std::span<const trace::Checkin> checkins,
                               std::span<const trace::Visit> visits,
                               const MatchConfig& config) {
  if (checkins.empty() || visits.empty()) {
    UserMatch result;
    result.checkins.resize(checkins.size());
    result.visit_matched.assign(visits.size(), false);
    return result;
  }
  return assign(checkins, visits, config,
                reference_candidates(checkins, visits, config));
}

}  // namespace geovalid::match
