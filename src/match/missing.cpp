#include "match/missing.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace geovalid::match {
namespace {

/// Per-POI visit/missing tally for one user.
struct PoiTally {
  trace::PoiId poi = 0;
  std::size_t visits = 0;
  std::size_t missing = 0;
};

}  // namespace

TopPoiMissingRatios missing_ratio_at_top_pois(
    const trace::Dataset& ds, const ValidationResult& validation) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "missing_ratio_at_top_pois: validation does not match dataset");
  }

  TopPoiMissingRatios out;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const trace::UserRecord& rec = users[u];
    const UserValidation& uv = validation.users[u];

    // Visit counts and missing counts per snapped POI. Flat accumulation
    // instead of node-based maps: collect (poi, missing) once, sort by
    // POI, aggregate runs. Ascending-POI tally order matches the old map
    // iteration order, so the unstable ranking sort below sees the same
    // input and the tie order is unchanged.
    std::vector<std::pair<trace::PoiId, bool>> snapped;
    snapped.reserve(rec.visits.size());
    std::size_t total_missing = 0;
    for (std::size_t v = 0; v < rec.visits.size(); ++v) {
      const trace::PoiId poi = rec.visits[v].poi;
      if (poi == trace::kNoPoi) continue;
      const bool is_missing = !uv.match.visit_matched[v];
      snapped.emplace_back(poi, is_missing);
      if (is_missing) ++total_missing;
    }
    if (total_missing == 0) continue;

    std::sort(snapped.begin(), snapped.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<PoiTally> ranked;
    for (std::size_t i = 0; i < snapped.size();) {
      PoiTally t{snapped[i].first, 0, 0};
      for (; i < snapped.size() && snapped[i].first == t.poi; ++i) {
        ++t.visits;
        if (snapped[i].second) ++t.missing;
      }
      ranked.push_back(t);
    }

    // Rank POIs by visit count, descending.
    std::sort(ranked.begin(), ranked.end(),
              [](const PoiTally& a, const PoiTally& b) {
                return a.visits > b.visits;
              });

    std::size_t covered = 0;
    for (std::size_t n = 0; n < out.ratios.size(); ++n) {
      if (n < ranked.size()) covered += ranked[n].missing;
      out.ratios[n].push_back(static_cast<double>(covered) /
                              static_cast<double>(total_missing));
    }
  }
  return out;
}

std::array<double, trace::kPoiCategoryCount> missing_by_category(
    const trace::Dataset& ds, const ValidationResult& validation) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "missing_by_category: validation does not match dataset");
  }

  std::array<std::size_t, trace::kPoiCategoryCount> counts{};
  std::size_t total = 0;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const trace::UserRecord& rec = users[u];
    const UserValidation& uv = validation.users[u];
    for (std::size_t v = 0; v < rec.visits.size(); ++v) {
      if (uv.match.visit_matched[v]) continue;
      const trace::PoiId poi = rec.visits[v].poi;
      if (poi == trace::kNoPoi) continue;
      const trace::Poi* p = ds.pois().find(poi);
      if (p == nullptr) continue;
      ++counts[static_cast<std::size_t>(p->category)];
      ++total;
    }
  }

  std::array<double, trace::kPoiCategoryCount> pct{};
  if (total == 0) return pct;
  for (std::size_t i = 0; i < pct.size(); ++i) {
    pct[i] = 100.0 * static_cast<double>(counts[i]) /
             static_cast<double>(total);
  }
  return pct;
}

}  // namespace geovalid::match
