#include "match/missing.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace geovalid::match {

TopPoiMissingRatios missing_ratio_at_top_pois(
    const trace::Dataset& ds, const ValidationResult& validation) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "missing_ratio_at_top_pois: validation does not match dataset");
  }

  TopPoiMissingRatios out;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const trace::UserRecord& rec = users[u];
    const UserValidation& uv = validation.users[u];

    // Visit counts and missing counts per snapped POI.
    std::map<trace::PoiId, std::size_t> visit_count;
    std::map<trace::PoiId, std::size_t> missing_count;
    std::size_t total_missing = 0;
    for (std::size_t v = 0; v < rec.visits.size(); ++v) {
      const trace::PoiId poi = rec.visits[v].poi;
      if (poi == trace::kNoPoi) continue;
      ++visit_count[poi];
      if (!uv.match.visit_matched[v]) {
        ++missing_count[poi];
        ++total_missing;
      }
    }
    if (total_missing == 0) continue;

    // Rank POIs by visit count, descending.
    std::vector<std::pair<trace::PoiId, std::size_t>> ranked(
        visit_count.begin(), visit_count.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    std::size_t covered = 0;
    for (std::size_t n = 0; n < out.ratios.size(); ++n) {
      if (n < ranked.size()) {
        const auto it = missing_count.find(ranked[n].first);
        if (it != missing_count.end()) covered += it->second;
      }
      out.ratios[n].push_back(static_cast<double>(covered) /
                              static_cast<double>(total_missing));
    }
  }
  return out;
}

std::array<double, trace::kPoiCategoryCount> missing_by_category(
    const trace::Dataset& ds, const ValidationResult& validation) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "missing_by_category: validation does not match dataset");
  }

  std::array<std::size_t, trace::kPoiCategoryCount> counts{};
  std::size_t total = 0;
  const auto users = ds.users();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const trace::UserRecord& rec = users[u];
    const UserValidation& uv = validation.users[u];
    for (std::size_t v = 0; v < rec.visits.size(); ++v) {
      if (uv.match.visit_matched[v]) continue;
      const trace::PoiId poi = rec.visits[v].poi;
      if (poi == trace::kNoPoi) continue;
      const trace::Poi* p = ds.pois().find(poi);
      if (p == nullptr) continue;
      ++counts[static_cast<std::size_t>(p->category)];
      ++total;
    }
  }

  std::array<double, trace::kPoiCategoryCount> pct{};
  if (total == 0) return pct;
  for (std::size_t i = 0; i < pct.size(); ++i) {
    pct[i] = 100.0 * static_cast<double>(counts[i]) /
             static_cast<double>(total);
  }
  return pct;
}

}  // namespace geovalid::match
