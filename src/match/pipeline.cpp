#include "match/pipeline.h"

#include "core/parallel.h"

namespace geovalid::match {
namespace {

/// Per-user matching + classification: a pure function of the user record,
/// which is what makes the dataset loop embarrassingly parallel.
UserValidation validate_user(const trace::UserRecord& u,
                             const MatchConfig& match_config,
                             const ClassifierConfig& classifier_config) {
  UserValidation uv;
  uv.id = u.id;
  uv.match = match_user(u.checkins.events(), u.visits, match_config);
  uv.labels = classify_user(u.checkins.events(), u.gps, uv.match,
                            classifier_config);
  return uv;
}

}  // namespace

std::size_t UserValidation::count_of(CheckinClass c) const {
  std::size_t n = 0;
  for (CheckinClass l : labels) {
    if (l == c) ++n;
  }
  return n;
}

ValidationResult validate_dataset(const trace::Dataset& ds,
                                  const MatchConfig& match_config,
                                  const ClassifierConfig& classifier_config,
                                  core::ThreadPool& pool) {
  const auto users = ds.users();
  ValidationResult result;
  // parallel_map returns per-user results in user order no matter which
  // thread ran which user, and the totals fold below is sequential — so the
  // whole ValidationResult is byte-identical at any thread count.
  result.users = core::parallel_map(&pool, users.size(), [&](std::size_t i) {
    return validate_user(users[i], match_config, classifier_config);
  });

  for (std::size_t i = 0; i < users.size(); ++i) {
    const trace::UserRecord& u = users[i];
    const UserValidation& uv = result.users[i];
    result.totals.checkins += u.checkins.size();
    result.totals.visits += u.visits.size();
    result.totals.honest += uv.match.honest_count();
    result.totals.extraneous += uv.match.extraneous_count();
    result.totals.missing += uv.match.missing_count();
    for (CheckinClass l : uv.labels) {
      ++result.totals.by_class[static_cast<std::size_t>(l)];
    }
  }
  return result;
}

ValidationResult validate_dataset(const trace::Dataset& ds,
                                  const MatchConfig& match_config,
                                  const ClassifierConfig& classifier_config,
                                  std::size_t threads) {
  core::ThreadPool pool(threads);
  return validate_dataset(ds, match_config, classifier_config, pool);
}

}  // namespace geovalid::match
