#include "match/pipeline.h"

namespace geovalid::match {

std::size_t UserValidation::count_of(CheckinClass c) const {
  std::size_t n = 0;
  for (CheckinClass l : labels) {
    if (l == c) ++n;
  }
  return n;
}

ValidationResult validate_dataset(const trace::Dataset& ds,
                                  const MatchConfig& match_config,
                                  const ClassifierConfig& classifier_config) {
  ValidationResult result;
  result.users.reserve(ds.user_count());

  for (const trace::UserRecord& u : ds.users()) {
    UserValidation uv;
    uv.id = u.id;
    uv.match = match_user(u.checkins.events(), u.visits, match_config);
    uv.labels = classify_user(u.checkins.events(), u.gps, uv.match,
                              classifier_config);

    result.totals.checkins += u.checkins.size();
    result.totals.visits += u.visits.size();
    result.totals.honest += uv.match.honest_count();
    result.totals.extraneous += uv.match.extraneous_count();
    result.totals.missing += uv.match.missing_count();
    for (CheckinClass l : uv.labels) {
      ++result.totals.by_class[static_cast<std::size_t>(l)];
    }
    result.users.push_back(std::move(uv));
  }
  return result;
}

}  // namespace geovalid::match
