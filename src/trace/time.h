// Time representation shared by all traces.
//
// Timestamps are integral seconds since the Unix epoch (the resolution of
// the paper's per-minute GPS sampling makes sub-second precision pointless,
// and integral seconds compare exactly).
#pragma once

#include <cstdint>

namespace geovalid::trace {

/// Seconds since the Unix epoch.
using TimeSec = std::int64_t;

inline constexpr TimeSec kSecondsPerMinute = 60;
inline constexpr TimeSec kSecondsPerHour = 3600;
inline constexpr TimeSec kSecondsPerDay = 86400;

/// Upper bound on a plausible event timestamp (~year 4700). Anything past
/// it is treated as corruption by ingest and the streaming quarantine: the
/// bound leaves the matching window arithmetic (`t + beta`) several orders
/// of magnitude away from std::int64_t overflow.
inline constexpr TimeSec kMaxEventTime = TimeSec{86400} * 1000000;

/// Converts whole minutes to seconds.
[[nodiscard]] constexpr TimeSec minutes(TimeSec m) {
  return m * kSecondsPerMinute;
}

/// Converts whole hours to seconds.
[[nodiscard]] constexpr TimeSec hours(TimeSec h) { return h * kSecondsPerHour; }

/// Converts whole days to seconds.
[[nodiscard]] constexpr TimeSec days(TimeSec d) { return d * kSecondsPerDay; }

/// Seconds expressed as fractional minutes (for CDF axes in minutes).
[[nodiscard]] constexpr double to_minutes(TimeSec s) {
  return static_cast<double>(s) / static_cast<double>(kSecondsPerMinute);
}

}  // namespace geovalid::trace
