// Points of interest and Foursquare's category taxonomy.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/latlon.h"

namespace geovalid::trace {

/// Stable identifier of a POI within a dataset.
using PoiId = std::uint32_t;

/// Sentinel for "no POI" (e.g. a GPS visit at an unmapped location).
inline constexpr PoiId kNoPoi = 0xFFFFFFFFu;

/// The nine top-level Foursquare venue categories used in Figure 4.
enum class PoiCategory : std::uint8_t {
  kProfessional = 0,
  kOutdoors,
  kNightlife,
  kArts,
  kShop,
  kTravel,
  kResidence,
  kFood,
  kCollege,
};

inline constexpr std::size_t kPoiCategoryCount = 9;

/// All categories in Figure 4's display order.
[[nodiscard]] std::span<const PoiCategory> all_poi_categories();

/// Human-readable category name (e.g. "Professional").
[[nodiscard]] std::string_view to_string(PoiCategory c);

/// Parses a category name produced by to_string. Case-sensitive.
[[nodiscard]] std::optional<PoiCategory> parse_poi_category(
    std::string_view name);

/// One point of interest (a Foursquare venue).
struct Poi {
  PoiId id = kNoPoi;
  std::string name;
  PoiCategory category = PoiCategory::kProfessional;
  geo::LatLon location;
};

/// Immutable id -> Poi lookup shared by a dataset.
class PoiIndex {
 public:
  PoiIndex() = default;

  /// Builds the index; throws std::invalid_argument on duplicate ids or a
  /// POI carrying the kNoPoi sentinel id.
  explicit PoiIndex(std::vector<Poi> pois);

  [[nodiscard]] std::size_t size() const { return pois_.size(); }
  [[nodiscard]] bool empty() const { return pois_.empty(); }

  /// nullptr when the id is unknown (or kNoPoi).
  [[nodiscard]] const Poi* find(PoiId id) const;

  /// Throws std::out_of_range when the id is unknown.
  [[nodiscard]] const Poi& at(PoiId id) const;

  [[nodiscard]] std::span<const Poi> all() const { return pois_; }

 private:
  std::vector<Poi> pois_;
  std::unordered_map<PoiId, std::size_t> by_id_;
};

}  // namespace geovalid::trace
