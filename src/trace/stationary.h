// Indoor stationary detection from WiFi fingerprints + accelerometer.
//
// When GPS drops out inside a building, the collection app (like SensLoc
// [15], which the paper cites) decides "stationary vs moving" from the
// stability of the visible WiFi set and the accelerometer energy. The visit
// detector uses this verdict to extend a stay through GPS-starved samples.
#pragma once

#include <span>
#include <vector>

#include "trace/gps.h"

namespace geovalid::trace {

/// Tuning knobs of the stationary classifier.
struct StationaryConfig {
  /// Accelerometer variance at or below which the device counts as at rest,
  /// (m/s^2)^2. Walking produces variance well above 1.
  double accel_variance_max = 0.35;

  /// How many consecutive samples must share a WiFi fingerprint before the
  /// fingerprint alone proves stationarity.
  std::size_t wifi_stable_samples = 2;
};

/// Per-sample verdicts over a GPS trace.
enum class MotionState : std::uint8_t {
  kStationary,
  kMoving,
  kUnknown,  ///< no fix and not enough sensor evidence either way
};

/// Classifies every sample of `points` (time-ordered).
///
/// Samples with a GPS fix are classified by the caller's downstream distance
/// logic and reported as kUnknown here — this classifier only speaks for
/// fix-less samples, where it fuses fingerprint stability and accelerometer
/// energy.
[[nodiscard]] std::vector<MotionState> classify_motion(
    std::span<const GpsPoint> points, const StationaryConfig& config = {});

}  // namespace geovalid::trace
