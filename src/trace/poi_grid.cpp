#include "trace/poi_grid.h"

#include <cmath>
#include <limits>

#include "geo/geodesic.h"

namespace geovalid::trace {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kMetersPerDegree = geo::kEarthRadiusMeters * kPi / 180.0;

}  // namespace

PoiGrid::PoiGrid(std::span<const Poi> pois, double cell_size_m)
    : pois_(pois) {
  // Longitude cell width uses the latitude of the first POI (datasets are
  // city-scale, so one cos factor serves the whole index).
  const double ref_lat = pois.empty() ? 0.0 : pois.front().location.lat_deg;
  const double cos_lat = std::max(0.01, std::cos(ref_lat * kPi / 180.0));
  cell_deg_lat_ = cell_size_m / kMetersPerDegree;
  cell_deg_lon_ = cell_size_m / (kMetersPerDegree * cos_lat);

  for (std::uint32_t i = 0; i < pois_.size(); ++i) {
    cells_[cell_of(pois_[i].location)].push_back(i);
  }
}

PoiGrid::CellKey PoiGrid::cell_of(const geo::LatLon& p) const {
  return CellKey{
      static_cast<std::int32_t>(std::floor(p.lat_deg / cell_deg_lat_)),
      static_cast<std::int32_t>(std::floor(p.lon_deg / cell_deg_lon_)),
  };
}

template <typename Fn>
void PoiGrid::for_each_within(const geo::LatLon& center, double radius_m,
                              Fn&& fn) const {
  if (pois_.empty()) return;

  const auto span_lat = static_cast<std::int32_t>(
      std::ceil(radius_m / (cell_deg_lat_ * kMetersPerDegree)));
  const double lon_cell_m = cell_deg_lon_ * kMetersPerDegree *
      std::max(0.01, std::cos(center.lat_deg * kPi / 180.0));
  const auto span_lon =
      static_cast<std::int32_t>(std::ceil(radius_m / lon_cell_m));

  const CellKey c0 = cell_of(center);
  for (std::int32_t dx = -span_lat; dx <= span_lat; ++dx) {
    for (std::int32_t dy = -span_lon; dy <= span_lon; ++dy) {
      const auto it = cells_.find(CellKey{c0.x + dx, c0.y + dy});
      if (it == cells_.end()) continue;
      for (std::uint32_t idx : it->second) {
        // bound_distance_m never exceeds the true distance and
        // fast_distance_m stays within 0.1% of it, so nothing past the 1%
        // slack can pass the radius check below — skipping here keeps the
        // accepted set and its order identical.
        if (geo::bound_distance_m(center, pois_[idx].location) >
            radius_m * 1.01) {
          continue;
        }
        const double d = geo::fast_distance_m(center, pois_[idx].location);
        if (d <= radius_m) fn(idx, d);
      }
    }
  }
}

std::vector<PoiId> PoiGrid::within(const geo::LatLon& center,
                                   double radius_m) const {
  std::vector<PoiId> out;
  for_each_within(center, radius_m, [&](std::uint32_t idx, double) {
    out.push_back(pois_[idx].id);
  });
  return out;
}

std::optional<PoiId> PoiGrid::nearest(const geo::LatLon& center,
                                      double radius_m) const {
  double best = std::numeric_limits<double>::infinity();
  std::optional<PoiId> best_id;
  for_each_within(center, radius_m, [&](std::uint32_t idx, double d) {
    if (d < best) {
      best = d;
      best_id = pois_[idx].id;
    }
  });
  return best_id;
}

}  // namespace geovalid::trace
