#include "trace/checkin.h"

#include <algorithm>
#include <stdexcept>

namespace geovalid::trace {

CheckinTrace::CheckinTrace(std::vector<Checkin> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Checkin& a, const Checkin& b) { return a.t < b.t; });
}

void CheckinTrace::append(Checkin c) {
  if (!events_.empty() && c.t < events_.back().t) {
    throw std::invalid_argument("CheckinTrace::append: timestamp regression");
  }
  events_.push_back(c);
}

double CheckinTrace::events_per_day() const {
  if (events_.size() < 2) return 0.0;
  const TimeSec span = events_.back().t - events_.front().t;
  if (span <= 0) return 0.0;
  return static_cast<double>(events_.size()) /
         (static_cast<double>(span) / static_cast<double>(kSecondsPerDay));
}

std::vector<double> CheckinTrace::interarrival_minutes() const {
  std::vector<double> gaps;
  if (events_.size() < 2) return gaps;
  gaps.reserve(events_.size() - 1);
  for (std::size_t i = 1; i < events_.size(); ++i) {
    gaps.push_back(to_minutes(events_[i].t - events_[i - 1].t));
  }
  return gaps;
}

std::vector<double> interarrival_minutes(std::span<const TimeSec> times) {
  std::vector<TimeSec> sorted(times.begin(), times.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> gaps;
  if (sorted.size() < 2) return gaps;
  gaps.reserve(sorted.size() - 1);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    gaps.push_back(to_minutes(sorted[i] - sorted[i - 1]));
  }
  return gaps;
}

}  // namespace geovalid::trace
