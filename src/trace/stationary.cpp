#include "trace/stationary.h"

namespace geovalid::trace {

std::vector<MotionState> classify_motion(std::span<const GpsPoint> points,
                                         const StationaryConfig& config) {
  std::vector<MotionState> states(points.size(), MotionState::kUnknown);

  std::size_t wifi_run = 0;  // consecutive samples sharing a fingerprint
  for (std::size_t i = 0; i < points.size(); ++i) {
    const GpsPoint& p = points[i];
    if (i > 0 && p.wifi_fingerprint != 0 &&
        p.wifi_fingerprint == points[i - 1].wifi_fingerprint) {
      ++wifi_run;
    } else {
      wifi_run = 0;
    }

    if (p.has_fix) {
      states[i] = MotionState::kUnknown;  // GPS logic decides
      continue;
    }

    const bool accel_quiet = p.accel_variance <= config.accel_variance_max;
    const bool wifi_stable = wifi_run >= config.wifi_stable_samples;

    if (accel_quiet && (wifi_stable || p.wifi_fingerprint != 0)) {
      states[i] = MotionState::kStationary;
    } else if (!accel_quiet) {
      states[i] = MotionState::kMoving;
    } else {
      states[i] = MotionState::kUnknown;
    }
  }
  return states;
}

}  // namespace geovalid::trace
