#include "trace/poi.h"

#include <array>
#include <stdexcept>

namespace geovalid::trace {
namespace {

constexpr std::array<PoiCategory, kPoiCategoryCount> kAllCategories = {
    PoiCategory::kProfessional, PoiCategory::kOutdoors,
    PoiCategory::kNightlife,    PoiCategory::kArts,
    PoiCategory::kShop,         PoiCategory::kTravel,
    PoiCategory::kResidence,    PoiCategory::kFood,
    PoiCategory::kCollege,
};

constexpr std::array<std::string_view, kPoiCategoryCount> kCategoryNames = {
    "Professional", "Outdoors", "Nightlife", "Arts", "Shop",
    "Travel",       "Residence", "Food",      "College",
};

}  // namespace

std::span<const PoiCategory> all_poi_categories() { return kAllCategories; }

std::string_view to_string(PoiCategory c) {
  return kCategoryNames.at(static_cast<std::size_t>(c));
}

std::optional<PoiCategory> parse_poi_category(std::string_view name) {
  for (std::size_t i = 0; i < kCategoryNames.size(); ++i) {
    if (kCategoryNames[i] == name) return kAllCategories[i];
  }
  return std::nullopt;
}

PoiIndex::PoiIndex(std::vector<Poi> pois) : pois_(std::move(pois)) {
  by_id_.reserve(pois_.size());
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    if (pois_[i].id == kNoPoi) {
      throw std::invalid_argument("PoiIndex: POI with sentinel id");
    }
    const auto [it, inserted] = by_id_.emplace(pois_[i].id, i);
    if (!inserted) {
      throw std::invalid_argument("PoiIndex: duplicate POI id");
    }
  }
}

const Poi* PoiIndex::find(PoiId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &pois_[it->second];
}

const Poi& PoiIndex::at(PoiId id) const {
  const Poi* p = find(id);
  if (p == nullptr) throw std::out_of_range("PoiIndex::at: unknown POI id");
  return *p;
}

}  // namespace geovalid::trace
