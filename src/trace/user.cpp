#include "trace/user.h"

// UserRecord is an aggregate; this translation unit exists so the target has
// a home for future out-of-line members and to keep one-TU-per-header parity.
