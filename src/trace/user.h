// Per-user record: profile features plus the user's two matched traces.
#pragma once

#include <vector>

#include "trace/checkin.h"
#include "trace/gps.h"

namespace geovalid::trace {

/// Foursquare profile features used in the incentive analysis (Table 2).
struct UserProfile {
  std::uint32_t friends = 0;
  std::uint32_t badges = 0;
  std::uint32_t mayorships = 0;
  /// Checkins per day as reported by the profile (long-run rate, which can
  /// differ from the study-window rate derivable from the trace).
  double checkins_per_day = 0.0;
};

/// Everything the study collected about one participant.
struct UserRecord {
  UserId id = 0;
  UserProfile profile;
  GpsTrace gps;
  CheckinTrace checkins;
  /// Stay-point visits detected from `gps` (filled by VisitDetector or the
  /// generator; the matcher consumes these).
  std::vector<Visit> visits;
};

}  // namespace geovalid::trace
