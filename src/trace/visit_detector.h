// Stay-point ("visit") detection over a per-minute GPS trace.
//
// §3 of the paper: "we define a visit as the user staying at one location
// for longer than some period of time, e.g. 6 minutes", with WiFi +
// accelerometer bridging GPS dropouts indoors. This implements the classic
// stay-point scan with that sensor-fusion extension.
#pragma once

#include <vector>

#include "trace/gps.h"
#include "trace/poi.h"
#include "trace/stationary.h"

namespace geovalid::trace {

/// Detection parameters (defaults mirror the paper).
struct VisitDetectorConfig {
  /// Maximum roaming radius within a stay, metres. GPS jitter at city scale
  /// is tens of metres; 100 m keeps one building's worth of wander together.
  double radius_m = 100.0;

  /// Minimum dwell to count as a visit (the paper's "6+ minutes").
  TimeSec min_duration = minutes(6);

  /// Maximum time gap between consecutive samples inside one stay before
  /// the stay is broken (guards against long logging outages).
  TimeSec max_sample_gap = minutes(10);

  StationaryConfig stationary;
};

/// Detects visits in a time-ordered GPS trace.
///
/// The scan grows a window of consecutive samples whose fixes all lie within
/// `radius_m` of the window's running centroid; fix-less samples extend the
/// window when the stationary classifier rules them kStationary and break it
/// when ruled kMoving. A window whose time span reaches `min_duration`
/// becomes a Visit anchored at the centroid of its fixed samples.
class VisitDetector {
 public:
  explicit VisitDetector(VisitDetectorConfig config = {});

  [[nodiscard]] std::vector<Visit> detect(const GpsTrace& trace) const;

  /// Annotates each visit with the nearest POI within `snap_radius_m`
  /// (leaves kNoPoi when none qualifies). Used by the missing-checkin
  /// category analysis, which needs to know what kind of place a GPS stay
  /// happened at.
  void snap_to_pois(std::vector<Visit>& visits, const PoiIndex& pois,
                    double snap_radius_m = 150.0) const;

  [[nodiscard]] const VisitDetectorConfig& config() const { return config_; }

 private:
  VisitDetectorConfig config_;
};

}  // namespace geovalid::trace
