// Foursquare check-in events: the geosocial side of the study.
#pragma once

#include <span>
#include <vector>

#include "geo/latlon.h"
#include "trace/poi.h"
#include "trace/time.h"

namespace geovalid::trace {

/// One check-in event as returned by the Foursquare API: timestamp, venue
/// identity/category and the *venue's* coordinates (not the phone's).
struct Checkin {
  TimeSec t = 0;
  PoiId poi = kNoPoi;
  PoiCategory category = PoiCategory::kProfessional;
  geo::LatLon location;  ///< the POI's registered coordinates
};

/// A user's check-in history, ordered by time.
class CheckinTrace {
 public:
  CheckinTrace() = default;
  explicit CheckinTrace(std::vector<Checkin> events);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::span<const Checkin> events() const { return events_; }
  [[nodiscard]] const Checkin& at(std::size_t i) const { return events_.at(i); }

  void append(Checkin c);  ///< must not go backwards in time (throws)

  /// Events per day over the trace's span; 0 for traces under one event or
  /// spanning zero time. This is the "#Checkins/Day" feature of Table 2.
  [[nodiscard]] double events_per_day() const;

  /// Successive inter-arrival gaps in fractional minutes (size() - 1 values)
  /// — the x-axis of Figures 2 and 6.
  [[nodiscard]] std::vector<double> interarrival_minutes() const;

 private:
  std::vector<Checkin> events_;
};

/// Inter-arrival gaps (fractional minutes) of an arbitrary timestamp
/// sequence; the sequence is sorted internally.
[[nodiscard]] std::vector<double> interarrival_minutes(
    std::span<const TimeSec> times);

}  // namespace geovalid::trace
