// CSV persistence for datasets.
//
// The on-disk layout is one directory per dataset:
//   pois.csv      id,name,category,lat,lon
//   users.csv     id,friends,badges,mayorships,checkins_per_day
//   gps.csv       user,t,lat,lon,has_fix,wifi,accel_var
//   checkins.csv  user,t,poi,category,lat,lon
//   visits.csv    user,start,end,lat,lon,poi
//
// Values never contain commas (POI names are sanitized on write), so no
// quoting layer is needed.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/dataset.h"

namespace geovalid::trace {

/// A dataset failed to load: missing file, malformed row, or a value that
/// parses but is physically meaningless (NaN/infinite/out-of-range
/// coordinates, timestamps outside [0, kMaxEventTime], negative or
/// non-finite profile rates). The message carries file and line number.
/// Distinct from std::runtime_error so callers (the CLI's exit-code
/// contract) can tell "your input is bad" from "the program failed".
struct IngestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Writes `ds` under `dir` (created if absent). Throws std::runtime_error on
/// I/O failure.
void write_dataset_csv(const Dataset& ds, const std::filesystem::path& dir);

/// Loads a dataset previously written by write_dataset_csv. Throws
/// IngestError on missing files, malformed rows, or implausible values
/// (see IngestError).
[[nodiscard]] Dataset read_dataset_csv(const std::filesystem::path& dir,
                                       const std::string& name);

}  // namespace geovalid::trace
