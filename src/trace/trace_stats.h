// Mobility metrics over traces — the comparison toolkit of §4.1.
//
// The paper validates the honest-checkin set by comparing several mobility
// metrics between datasets: inter-arrival time distribution, movement
// distance distribution, event frequency, speed distribution and POI
// entropy. These helpers derive each metric from either trace type.
#pragma once

#include <span>
#include <vector>

#include "trace/dataset.h"

namespace geovalid::trace {

/// Inter-arrival gaps (minutes) of all checkin events, pooled across users.
[[nodiscard]] std::vector<double> checkin_interarrivals_min(const Dataset& ds);

/// Inter-arrival gaps (minutes) between consecutive GPS visits, pooled
/// across users (gap = next.start - prev.end).
[[nodiscard]] std::vector<double> visit_interarrivals_min(const Dataset& ds);

/// Distances (km) between consecutive checkin locations per user, pooled.
[[nodiscard]] std::vector<double> checkin_movement_km(const Dataset& ds);

/// Distances (km) between consecutive visit centroids per user, pooled.
[[nodiscard]] std::vector<double> visit_movement_km(const Dataset& ds);

/// Implied speeds (m/s) between consecutive checkins, pooled across users.
/// Gaps of zero seconds are skipped.
[[nodiscard]] std::vector<double> checkin_speeds_mps(const Dataset& ds);

/// Per-user event frequency (events/day), one entry per user with >= 2
/// events.
[[nodiscard]] std::vector<double> checkin_frequency_per_day(const Dataset& ds);

/// Per-user POI entropy (bits) of the checkin venue distribution, one entry
/// per user with >= 1 checkin.
[[nodiscard]] std::vector<double> checkin_poi_entropy_bits(const Dataset& ds);

/// Per-user POI entropy (bits) of the visit venue distribution (visits must
/// be snapped to POIs; unsnapped visits each count as their own place).
[[nodiscard]] std::vector<double> visit_poi_entropy_bits(const Dataset& ds);

}  // namespace geovalid::trace
