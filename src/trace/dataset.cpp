#include "trace/dataset.h"

namespace geovalid::trace {

Dataset::Dataset(std::string name, PoiIndex pois, std::vector<UserRecord> users)
    : name_(std::move(name)), pois_(std::move(pois)), users_(std::move(users)) {}

const UserRecord* Dataset::find_user(UserId id) const {
  for (const UserRecord& u : users_) {
    if (u.id == id) return &u;
  }
  return nullptr;
}

DatasetStats compute_stats(const Dataset& ds) {
  DatasetStats s;
  s.users = ds.user_count();
  double day_sum = 0.0;
  for (const UserRecord& u : ds.users()) {
    day_sum += u.gps.span_days();
    s.checkins += u.checkins.size();
    s.visits += u.visits.size();
    s.gps_points += u.gps.size();
  }
  s.avg_days_per_user = s.users == 0 ? 0.0 : day_sum / static_cast<double>(s.users);
  return s;
}

}  // namespace geovalid::trace
