#include "trace/gowalla.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "trace/csv.h"  // IngestError

namespace geovalid::trace {
namespace {

/// Rows silently dropped under skip_invalid_rows. The SNAP dumps contain a
/// few bad rows by design; the counter makes the drop rate inspectable.
void count_skipped(const char* reason) {
  obs::registry()
      .counter("trace_ingest_skipped_rows_total",
               "SNAP import rows skipped as invalid, by reason",
               {{"reason", reason}})
      .inc();
}

[[noreturn]] void fail(const std::filesystem::path& file, std::size_t line,
                       const std::string& what) {
  std::ostringstream os;
  os << file.string() << ":" << line << ": " << what;
  throw IngestError(os.str());
}

/// Parses "YYYY-MM-DDTHH:MM:SSZ" into Unix seconds; nullopt on mismatch.
std::optional<TimeSec> parse_iso8601(std::string_view s) {
  std::tm tm{};
  if (s.size() < 20 || s[4] != '-' || s[7] != '-' || s[10] != 'T' ||
      s[13] != ':' || s[16] != ':' || s.back() != 'Z') {
    return std::nullopt;
  }
  auto num = [&](std::size_t pos, std::size_t len, int& out) {
    const auto [p, ec] =
        std::from_chars(s.data() + pos, s.data() + pos + len, out);
    return ec == std::errc{} && p == s.data() + pos + len;
  };
  int year, month, day, hour, minute, second;
  if (!num(0, 4, year) || !num(5, 2, month) || !num(8, 2, day) ||
      !num(11, 2, hour) || !num(14, 2, minute) || !num(17, 2, second)) {
    return std::nullopt;
  }
  tm.tm_year = year - 1900;
  tm.tm_mon = month - 1;
  tm.tm_mday = day;
  tm.tm_hour = hour;
  tm.tm_min = minute;
  tm.tm_sec = second;
  const std::time_t t = timegm(&tm);
  if (t == static_cast<std::time_t>(-1)) return std::nullopt;
  return static_cast<TimeSec>(t);
}

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

std::optional<double> parse_double(std::string_view s) {
  char buf[64];
  if (s.empty() || s.size() >= sizeof(buf)) return std::nullopt;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size()) return std::nullopt;
  return v;
}

template <typename T>
std::optional<T> parse_uint(std::string_view s) {
  T v{};
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

Dataset read_gowalla_checkins(const std::filesystem::path& file,
                              const std::string& dataset_name,
                              const GowallaImportOptions& options) {
  std::ifstream in(file);
  if (!in) {
    throw IngestError("cannot open for read: " + file.string());
  }

  std::map<UserId, std::vector<Checkin>> per_user;
  std::map<PoiId, Poi> venues;

  // Cached: one registry lookup for the whole import, not one per row.
  obs::Counter& rows_ingested = obs::registry().counter(
      "trace_ingest_rows_total", "Rows accepted by trace importers",
      {{"format", "snap"}});

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();

    const auto f = split_tabs(line);
    auto reject = [&](const char* reason, const char* what) -> bool {
      if (options.skip_invalid_rows) {
        count_skipped(reason);
        return true;  // caller: skip this row
      }
      fail(file, lineno, what);
    };

    if (f.size() != 5) {
      if (reject("field_count", "expected 5 tab-separated fields")) continue;
    }
    const auto user = parse_uint<UserId>(f[0]);
    const auto t = parse_iso8601(f[1]);
    const auto lat = parse_double(f[2]);
    const auto lon = parse_double(f[3]);
    const auto venue = parse_uint<PoiId>(f[4]);
    if (!user || !t || !lat || !lon || !venue) {
      if (reject("malformed_field", "malformed field")) continue;
    }
    const geo::LatLon where{*lat, *lon};
    if (!geo::is_valid(where)) {
      if (reject("bad_coordinates", "coordinate out of range")) continue;
    }
    if (options.max_users > 0 && per_user.size() >= options.max_users &&
        per_user.find(*user) == per_user.end()) {
      continue;
    }

    // SNAP venue ids start at 0; shift by one to keep kNoPoi free.
    const PoiId poi = *venue + 1;
    if (poi == kNoPoi) {
      if (reject("venue_id_sentinel", "venue id collides with the sentinel")) {
        continue;
      }
    }
    const auto [it, inserted] = venues.try_emplace(poi);
    if (inserted) {
      it->second.id = poi;
      it->second.name = "venue-" + std::string(f[4]);
      it->second.category = PoiCategory::kProfessional;  // unknown in SNAP
      it->second.location = where;
    }

    Checkin c;
    c.t = *t;
    c.poi = poi;
    c.category = it->second.category;
    c.location = it->second.location;  // first-seen venue position
    per_user[*user].push_back(c);
    rows_ingested.inc();
  }

  std::vector<Poi> pois;
  pois.reserve(venues.size());
  for (auto& [id, poi] : venues) pois.push_back(std::move(poi));

  std::vector<UserRecord> users;
  users.reserve(per_user.size());
  for (auto& [id, events] : per_user) {
    UserRecord rec;
    rec.id = id;
    rec.checkins = CheckinTrace(std::move(events));
    rec.profile.checkins_per_day = rec.checkins.events_per_day();
    users.push_back(std::move(rec));
  }
  return Dataset(dataset_name, PoiIndex(std::move(pois)), std::move(users));
}

}  // namespace geovalid::trace
