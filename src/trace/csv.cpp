#include "trace/csv.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <type_traits>
#include <vector>

#include <cmath>

#include "geo/latlon.h"
#include "obs/metrics.h"

namespace geovalid::trace {
namespace {

namespace fs = std::filesystem;

std::string sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == ',' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

[[noreturn]] void fail(const fs::path& file, std::size_t line,
                       const std::string& what) {
  // Counted before throwing so a long-running service that survives a bad
  // dataset still shows the rejection in its metrics.
  obs::registry()
      .counter("trace_ingest_errors_total",
               "CSV dataset rows rejected with an error, by file",
               {{"file", file.filename().string()}})
      .inc();
  std::ostringstream os;
  os << file.string() << ":" << line << ": " << what;
  throw IngestError(os.str());
}

/// Rejects coordinates that parse but are garbage: NaN (strtod happily
/// accepts "nan"), infinities, |lat| > 90, |lon| > 180. Garbage here would
/// otherwise propagate into every geodesic distance downstream.
geo::LatLon checked_latlon(double lat, double lon, const fs::path& file,
                           std::size_t line) {
  const geo::LatLon p{lat, lon};
  if (!geo::is_valid(p)) {
    fail(file, line, "non-finite or out-of-range coordinates");
  }
  return p;
}

/// Event timestamps must be plausible: non-negative and at most
/// kMaxEventTime, so the matcher's `t + beta` window arithmetic can never
/// overflow std::int64_t.
TimeSec checked_time(TimeSec t, const fs::path& file, std::size_t line) {
  if (t < 0 || t > kMaxEventTime) {
    fail(file, line, "timestamp out of range [0, kMaxEventTime]");
  }
  return t;
}

/// Rates and variances must be finite and non-negative.
double checked_nonnegative(double v, const char* what, const fs::path& file,
                           std::size_t line) {
  if (!std::isfinite(v) || v < 0.0) {
    fail(file, line, std::string(what) + " must be finite and non-negative");
  }
  return v;
}

/// Strips a trailing '\r' so files written on Windows (CRLF line endings)
/// parse identically to LF files; std::getline only consumes the '\n'.
void chomp(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

template <typename T>
T parse_num(std::string_view s, const fs::path& file, std::size_t line) {
  T value{};
  if constexpr (std::is_floating_point_v<T>) {
    // std::from_chars for doubles is not universally available; strtod via
    // a bounded copy keeps this portable.
    char buf[64];
    if (s.size() >= sizeof(buf)) fail(file, line, "numeric field too long");
    std::memcpy(buf, s.data(), s.size());
    buf[s.size()] = '\0';
    char* end = nullptr;
    value = static_cast<T>(std::strtod(buf, &end));
    if (end != buf + s.size()) fail(file, line, "bad floating-point field");
  } else {
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
      fail(file, line, "bad integer field");
    }
  }
  return value;
}

std::ofstream open_out(const fs::path& p) {
  std::ofstream out(p);
  if (!out) throw std::runtime_error("cannot open for write: " + p.string());
  return out;
}

std::ifstream open_in(const fs::path& p) {
  std::ifstream in(p);
  if (!in) throw IngestError("cannot open for read: " + p.string());
  return in;
}

}  // namespace

void write_dataset_csv(const Dataset& ds, const fs::path& dir) {
  fs::create_directories(dir);

  {
    auto out = open_out(dir / "pois.csv");
    out.precision(10);
    out << "id,name,category,lat,lon\n";
    for (const Poi& p : ds.pois().all()) {
      out << p.id << ',' << sanitize(p.name) << ',' << to_string(p.category)
          << ',' << p.location.lat_deg << ',' << p.location.lon_deg << '\n';
    }
  }
  {
    auto out = open_out(dir / "users.csv");
    out << "id,friends,badges,mayorships,checkins_per_day\n";
    for (const UserRecord& u : ds.users()) {
      out << u.id << ',' << u.profile.friends << ',' << u.profile.badges << ','
          << u.profile.mayorships << ',' << u.profile.checkins_per_day << '\n';
    }
  }
  {
    auto out = open_out(dir / "gps.csv");
    out << "user,t,lat,lon,has_fix,wifi,accel_var\n";
    out.precision(10);
    for (const UserRecord& u : ds.users()) {
      for (const GpsPoint& p : u.gps.points()) {
        out << u.id << ',' << p.t << ',' << p.position.lat_deg << ','
            << p.position.lon_deg << ',' << (p.has_fix ? 1 : 0) << ','
            << p.wifi_fingerprint << ',' << p.accel_variance << '\n';
      }
    }
  }
  {
    auto out = open_out(dir / "checkins.csv");
    out << "user,t,poi,category,lat,lon\n";
    out.precision(10);
    for (const UserRecord& u : ds.users()) {
      for (const Checkin& c : u.checkins.events()) {
        out << u.id << ',' << c.t << ',' << c.poi << ','
            << to_string(c.category) << ',' << c.location.lat_deg << ','
            << c.location.lon_deg << '\n';
      }
    }
  }
  {
    auto out = open_out(dir / "visits.csv");
    out << "user,start,end,lat,lon,poi\n";
    out.precision(10);
    for (const UserRecord& u : ds.users()) {
      for (const Visit& v : u.visits) {
        out << u.id << ',' << v.start << ',' << v.end << ','
            << v.centroid.lat_deg << ',' << v.centroid.lon_deg << ',' << v.poi
            << '\n';
      }
    }
  }
}

Dataset read_dataset_csv(const fs::path& dir, const std::string& name) {
  // POIs.
  std::vector<Poi> pois;
  {
    const fs::path file = dir / "pois.csv";
    auto in = open_in(file);
    std::string line;
    std::size_t lineno = 0;
    std::getline(in, line);  // header
    ++lineno;
    while (std::getline(in, line)) {
      ++lineno;
      chomp(line);
      if (line.empty()) continue;
      const auto f = split(line);
      if (f.size() != 5) fail(file, lineno, "expected 5 fields");
      Poi p;
      p.id = parse_num<PoiId>(f[0], file, lineno);
      p.name = std::string(f[1]);
      const auto cat = parse_poi_category(f[2]);
      if (!cat) fail(file, lineno, "unknown POI category");
      p.category = *cat;
      p.location = checked_latlon(parse_num<double>(f[3], file, lineno),
                                  parse_num<double>(f[4], file, lineno),
                                  file, lineno);
      pois.push_back(std::move(p));
    }
  }

  // Users, keyed for trace attachment.
  std::map<UserId, UserRecord> users;
  {
    const fs::path file = dir / "users.csv";
    auto in = open_in(file);
    std::string line;
    std::size_t lineno = 0;
    std::getline(in, line);
    ++lineno;
    while (std::getline(in, line)) {
      ++lineno;
      chomp(line);
      if (line.empty()) continue;
      const auto f = split(line);
      if (f.size() != 5) fail(file, lineno, "expected 5 fields");
      UserRecord u;
      u.id = parse_num<UserId>(f[0], file, lineno);
      u.profile.friends = parse_num<std::uint32_t>(f[1], file, lineno);
      u.profile.badges = parse_num<std::uint32_t>(f[2], file, lineno);
      u.profile.mayorships = parse_num<std::uint32_t>(f[3], file, lineno);
      u.profile.checkins_per_day = checked_nonnegative(
          parse_num<double>(f[4], file, lineno), "checkins_per_day", file,
          lineno);
      const UserId id = u.id;
      if (!users.emplace(id, std::move(u)).second) {
        fail(file, lineno, "duplicate user id");
      }
    }
  }

  auto require_user = [&users](UserId id, const fs::path& file,
                               std::size_t lineno) -> UserRecord& {
    const auto it = users.find(id);
    if (it == users.end()) fail(file, lineno, "row references unknown user");
    return it->second;
  };

  // GPS points (file is grouped by user, time-ascending per user).
  {
    const fs::path file = dir / "gps.csv";
    auto in = open_in(file);
    std::string line;
    std::size_t lineno = 0;
    std::getline(in, line);
    ++lineno;
    while (std::getline(in, line)) {
      ++lineno;
      chomp(line);
      if (line.empty()) continue;
      const auto f = split(line);
      if (f.size() != 7) fail(file, lineno, "expected 7 fields");
      const auto id = parse_num<UserId>(f[0], file, lineno);
      GpsPoint p;
      p.t = checked_time(parse_num<TimeSec>(f[1], file, lineno), file, lineno);
      p.position = checked_latlon(parse_num<double>(f[2], file, lineno),
                                  parse_num<double>(f[3], file, lineno),
                                  file, lineno);
      p.has_fix = parse_num<int>(f[4], file, lineno) != 0;
      p.wifi_fingerprint = parse_num<std::uint32_t>(f[5], file, lineno);
      p.accel_variance = checked_nonnegative(
          parse_num<double>(f[6], file, lineno), "accel_var", file, lineno);
      UserRecord& u = require_user(id, file, lineno);
      // Surface GpsTrace's ordering invariant with file:line context.
      if (!u.gps.points().empty() && p.t < u.gps.points().back().t) {
        fail(file, lineno, "GPS timestamps out of order for user");
      }
      u.gps.append(p);
    }
  }

  // Checkins.
  {
    const fs::path file = dir / "checkins.csv";
    auto in = open_in(file);
    std::string line;
    std::size_t lineno = 0;
    std::getline(in, line);
    ++lineno;
    while (std::getline(in, line)) {
      ++lineno;
      chomp(line);
      if (line.empty()) continue;
      const auto f = split(line);
      if (f.size() != 6) fail(file, lineno, "expected 6 fields");
      const auto id = parse_num<UserId>(f[0], file, lineno);
      Checkin c;
      c.t = checked_time(parse_num<TimeSec>(f[1], file, lineno), file, lineno);
      c.poi = parse_num<PoiId>(f[2], file, lineno);
      const auto cat = parse_poi_category(f[3]);
      if (!cat) fail(file, lineno, "unknown POI category");
      c.category = *cat;
      c.location = checked_latlon(parse_num<double>(f[4], file, lineno),
                                  parse_num<double>(f[5], file, lineno),
                                  file, lineno);
      UserRecord& u = require_user(id, file, lineno);
      if (!u.checkins.events().empty() && c.t < u.checkins.events().back().t) {
        fail(file, lineno, "checkin timestamps out of order for user");
      }
      u.checkins.append(c);
    }
  }

  // Visits.
  {
    const fs::path file = dir / "visits.csv";
    auto in = open_in(file);
    std::string line;
    std::size_t lineno = 0;
    std::getline(in, line);
    ++lineno;
    while (std::getline(in, line)) {
      ++lineno;
      chomp(line);
      if (line.empty()) continue;
      const auto f = split(line);
      if (f.size() != 6) fail(file, lineno, "expected 6 fields");
      const auto id = parse_num<UserId>(f[0], file, lineno);
      Visit v;
      v.start =
          checked_time(parse_num<TimeSec>(f[1], file, lineno), file, lineno);
      v.end = checked_time(parse_num<TimeSec>(f[2], file, lineno), file, lineno);
      if (v.end < v.start) fail(file, lineno, "visit ends before it starts");
      v.centroid = checked_latlon(parse_num<double>(f[3], file, lineno),
                                  parse_num<double>(f[4], file, lineno),
                                  file, lineno);
      v.poi = parse_num<PoiId>(f[5], file, lineno);
      require_user(id, file, lineno).visits.push_back(v);
    }
  }

  std::vector<UserRecord> user_list;
  user_list.reserve(users.size());
  for (auto& [id, u] : users) user_list.push_back(std::move(u));

  return Dataset(name, PoiIndex(std::move(pois)), std::move(user_list));
}

}  // namespace geovalid::trace
