#include "trace/visit_detector.h"

#include <cmath>

#include "geo/geodesic.h"
#include "trace/poi_grid.h"

namespace geovalid::trace {
namespace {

/// Incrementally maintained centroid of the fixed samples in the current
/// candidate window.
class Centroid {
 public:
  void add(const geo::LatLon& p) {
    lat_sum_ += p.lat_deg;
    lon_sum_ += p.lon_deg;
    ++n_;
  }
  void reset() { *this = Centroid{}; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] geo::LatLon value() const {
    return geo::LatLon{lat_sum_ / static_cast<double>(n_),
                       lon_sum_ / static_cast<double>(n_)};
  }

 private:
  double lat_sum_ = 0.0;
  double lon_sum_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace

VisitDetector::VisitDetector(VisitDetectorConfig config)
    : config_(config) {}

std::vector<Visit> VisitDetector::detect(const GpsTrace& trace) const {
  std::vector<Visit> visits;
  const auto points = trace.points();
  if (points.empty()) return visits;

  const std::vector<MotionState> motion =
      classify_motion(points, config_.stationary);

  Centroid centroid;
  TimeSec window_start = 0;
  TimeSec window_end = 0;
  bool in_window = false;

  auto flush = [&] {
    if (in_window && !centroid.empty() &&
        window_end - window_start >= config_.min_duration) {
      visits.push_back(Visit{window_start, window_end, centroid.value()});
    }
    centroid.reset();
    in_window = false;
  };

  for (std::size_t i = 0; i < points.size(); ++i) {
    const GpsPoint& p = points[i];

    if (in_window && p.t - window_end > config_.max_sample_gap) {
      flush();
    }

    if (!p.has_fix) {
      // Sensor evidence decides whether an ongoing stay continues.
      if (!in_window) continue;
      if (motion[i] == MotionState::kMoving) {
        flush();
      } else {
        // Stationary or unknown: optimistically extend; a later far-away fix
        // will terminate the window anyway.
        window_end = p.t;
      }
      continue;
    }

    if (!in_window) {
      centroid.reset();
      centroid.add(p.position);
      window_start = window_end = p.t;
      in_window = true;
      continue;
    }

    const double dist = geo::fast_distance_m(centroid.value(), p.position);
    if (dist <= config_.radius_m) {
      centroid.add(p.position);
      window_end = p.t;
    } else {
      flush();
      centroid.add(p.position);
      window_start = window_end = p.t;
      in_window = true;
    }
  }
  flush();
  return visits;
}

void VisitDetector::snap_to_pois(std::vector<Visit>& visits,
                                 const PoiIndex& pois,
                                 double snap_radius_m) const {
  const PoiGrid grid(pois.all(), std::max(snap_radius_m, 100.0));
  for (Visit& v : visits) {
    v.poi = grid.nearest(v.centroid, snap_radius_m).value_or(kNoPoi);
  }
}

}  // namespace geovalid::trace
