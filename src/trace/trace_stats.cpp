#include "trace/trace_stats.h"

#include <map>

#include "geo/geodesic.h"
#include "stats/entropy.h"

namespace geovalid::trace {

std::vector<double> checkin_interarrivals_min(const Dataset& ds) {
  std::vector<double> pooled;
  for (const UserRecord& u : ds.users()) {
    const auto gaps = u.checkins.interarrival_minutes();
    pooled.insert(pooled.end(), gaps.begin(), gaps.end());
  }
  return pooled;
}

std::vector<double> visit_interarrivals_min(const Dataset& ds) {
  std::vector<double> pooled;
  for (const UserRecord& u : ds.users()) {
    for (std::size_t i = 1; i < u.visits.size(); ++i) {
      const TimeSec gap = u.visits[i].start - u.visits[i - 1].end;
      if (gap >= 0) pooled.push_back(to_minutes(gap));
    }
  }
  return pooled;
}

std::vector<double> checkin_movement_km(const Dataset& ds) {
  std::vector<double> pooled;
  for (const UserRecord& u : ds.users()) {
    const auto events = u.checkins.events();
    for (std::size_t i = 1; i < events.size(); ++i) {
      pooled.push_back(geo::distance_m(events[i - 1].location,
                                       events[i].location) /
                       geo::kMetersPerKilometer);
    }
  }
  return pooled;
}

std::vector<double> visit_movement_km(const Dataset& ds) {
  std::vector<double> pooled;
  for (const UserRecord& u : ds.users()) {
    for (std::size_t i = 1; i < u.visits.size(); ++i) {
      pooled.push_back(geo::distance_m(u.visits[i - 1].centroid,
                                       u.visits[i].centroid) /
                       geo::kMetersPerKilometer);
    }
  }
  return pooled;
}

std::vector<double> checkin_speeds_mps(const Dataset& ds) {
  std::vector<double> pooled;
  for (const UserRecord& u : ds.users()) {
    const auto events = u.checkins.events();
    for (std::size_t i = 1; i < events.size(); ++i) {
      const auto dt = static_cast<double>(events[i].t - events[i - 1].t);
      if (dt <= 0.0) continue;
      pooled.push_back(
          geo::distance_m(events[i - 1].location, events[i].location) / dt);
    }
  }
  return pooled;
}

std::vector<double> checkin_frequency_per_day(const Dataset& ds) {
  std::vector<double> freqs;
  for (const UserRecord& u : ds.users()) {
    if (u.checkins.size() >= 2) freqs.push_back(u.checkins.events_per_day());
  }
  return freqs;
}

namespace {

double entropy_of_place_counts(const std::map<PoiId, std::size_t>& counts,
                               std::size_t anonymous_places) {
  std::vector<std::size_t> ns;
  ns.reserve(counts.size() + anonymous_places);
  for (const auto& [poi, n] : counts) ns.push_back(n);
  // Each unsnapped visit is its own singleton place.
  for (std::size_t i = 0; i < anonymous_places; ++i) ns.push_back(1);
  return stats::entropy_bits(ns);
}

}  // namespace

std::vector<double> checkin_poi_entropy_bits(const Dataset& ds) {
  std::vector<double> out;
  for (const UserRecord& u : ds.users()) {
    if (u.checkins.empty()) continue;
    std::map<PoiId, std::size_t> counts;
    for (const Checkin& c : u.checkins.events()) ++counts[c.poi];
    out.push_back(entropy_of_place_counts(counts, 0));
  }
  return out;
}

std::vector<double> visit_poi_entropy_bits(const Dataset& ds) {
  std::vector<double> out;
  for (const UserRecord& u : ds.users()) {
    if (u.visits.empty()) continue;
    std::map<PoiId, std::size_t> counts;
    std::size_t anonymous = 0;
    for (const Visit& v : u.visits) {
      if (v.poi == kNoPoi) {
        ++anonymous;
      } else {
        ++counts[v.poi];
      }
    }
    out.push_back(entropy_of_place_counts(counts, anonymous));
  }
  return out;
}

}  // namespace geovalid::trace
