#include "trace/gps.h"

#include <algorithm>
#include <stdexcept>

#include "geo/geodesic.h"

namespace geovalid::trace {

TimeSec interval_distance(const Visit& v, TimeSec t) {
  if (t >= v.start && t <= v.end) return 0;
  return t < v.start ? v.start - t : t - v.end;
}

GpsTrace::GpsTrace(std::vector<GpsPoint> points) : points_(std::move(points)) {
  std::stable_sort(points_.begin(), points_.end(),
                   [](const GpsPoint& a, const GpsPoint& b) { return a.t < b.t; });
}

TimeSec GpsTrace::start_time() const {
  if (points_.empty()) throw std::logic_error("GpsTrace: empty trace");
  return points_.front().t;
}

TimeSec GpsTrace::end_time() const {
  if (points_.empty()) throw std::logic_error("GpsTrace: empty trace");
  return points_.back().t;
}

double GpsTrace::span_days() const {
  if (points_.size() < 2) return 0.0;
  return static_cast<double>(end_time() - start_time()) /
         static_cast<double>(kSecondsPerDay);
}

const GpsPoint* GpsTrace::sample_at(TimeSec t) const {
  if (points_.empty() || t < points_.front().t) return nullptr;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](TimeSec lhs, const GpsPoint& rhs) { return lhs < rhs.t; });
  return &*std::prev(it);
}

double GpsTrace::speed_at(TimeSec t) const {
  if (points_.size() < 2 || t < points_.front().t || t > points_.back().t) {
    return 0.0;
  }
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](TimeSec lhs, const GpsPoint& rhs) { return lhs < rhs.t; });
  if (it == points_.begin() || it == points_.end()) {
    // t coincides with the last sample: use the final segment.
    if (it == points_.end()) it = std::prev(it);
    else return 0.0;
  }
  const GpsPoint& after = *it;
  const GpsPoint& before = *std::prev(it);
  const auto dt = static_cast<double>(after.t - before.t);
  if (dt <= 0.0) return 0.0;
  return geo::distance_m(before.position, after.position) / dt;
}

void GpsTrace::append(GpsPoint p) {
  if (!points_.empty() && p.t < points_.back().t) {
    throw std::invalid_argument("GpsTrace::append: timestamp regression");
  }
  points_.push_back(p);
}

}  // namespace geovalid::trace
