// Spatial hash grid over POIs for radius and nearest-neighbour queries.
//
// Both the matcher (candidate visits within alpha of a checkin) and the
// synthetic checkin model (nearby venues for superfluous checkins) need
// "what is within r metres of here" at scale; a uniform grid keyed by
// quantized lat/lon answers that in O(candidates).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/latlon.h"
#include "trace/poi.h"

namespace geovalid::trace {

/// Grid index over a fixed set of POIs. The cell size should be of the same
/// order as the typical query radius.
class PoiGrid {
 public:
  /// Indexes `pois` (pointers into the span are retained — the underlying
  /// storage must outlive the grid; PoiIndex guarantees stable storage).
  explicit PoiGrid(std::span<const Poi> pois, double cell_size_m = 500.0);

  /// Ids of all POIs within `radius_m` of `center` (unordered).
  [[nodiscard]] std::vector<PoiId> within(const geo::LatLon& center,
                                          double radius_m) const;

  /// Nearest POI within `radius_m`, or nullopt.
  [[nodiscard]] std::optional<PoiId> nearest(const geo::LatLon& center,
                                             double radius_m) const;

  [[nodiscard]] std::size_t size() const { return pois_.size(); }

 private:
  struct CellKey {
    std::int32_t x = 0;
    std::int32_t y = 0;
    bool operator==(const CellKey&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.x)) << 32) |
          static_cast<std::uint32_t>(k.y));
    }
  };

  [[nodiscard]] CellKey cell_of(const geo::LatLon& p) const;

  /// Calls fn(index, distance_m) for every indexed POI within radius.
  template <typename Fn>
  void for_each_within(const geo::LatLon& center, double radius_m,
                       Fn&& fn) const;

  std::span<const Poi> pois_;
  double cell_deg_lat_;
  double cell_deg_lon_;
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellHash> cells_;
};

}  // namespace geovalid::trace
