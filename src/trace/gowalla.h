// Importer for the classic SNAP geosocial checkin format (Gowalla and
// Brightkite releases):
//
//   <user_id>\t<ISO-8601 time>\t<latitude>\t<longitude>\t<location_id>
//
// e.g. "0\t2010-10-19T23:55:27Z\t30.2359091167\t-97.7951395833\t22847".
// These public datasets are checkin-only — exactly the situation the
// paper warns about — so the imported Dataset has no GPS traces or visits;
// the checkin-only tools (burstiness filters, learned detector scoring,
// anchor recovery) run on it directly.
#pragma once

#include <filesystem>
#include <string>

#include "trace/dataset.h"

namespace geovalid::trace {

/// Import options.
struct GowallaImportOptions {
  /// Rows with coordinates failing geo::is_valid are skipped (the public
  /// dumps contain a few (0,0) and out-of-range rows). When false, such a
  /// row aborts the import with std::runtime_error instead.
  bool skip_invalid_rows = true;

  /// Cap on users imported (0 = no cap). The SNAP dumps hold millions of
  /// rows; a cap keeps exploratory runs fast.
  std::size_t max_users = 0;
};

/// Reads a SNAP-format checkin file into a Dataset.
///
/// Venue ids become PoiIds (offset by one: SNAP ids start at 0, and our
/// kNoPoi sentinel must stay free); venue positions are taken from the
/// first row mentioning the venue; categories are unknown in this format
/// and default to Professional. Throws std::runtime_error on I/O failure
/// or (with skip_invalid_rows=false) on malformed rows.
[[nodiscard]] Dataset read_gowalla_checkins(
    const std::filesystem::path& file, const std::string& dataset_name,
    const GowallaImportOptions& options = {});

}  // namespace geovalid::trace
