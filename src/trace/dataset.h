// A complete study dataset: POI universe plus all user records.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "trace/poi.h"
#include "trace/user.h"

namespace geovalid::trace {

/// One of the paper's two datasets (Primary: app-store Foursquare users;
/// Baseline: recruited undergraduate volunteers).
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, PoiIndex pois, std::vector<UserRecord> users);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const PoiIndex& pois() const { return pois_; }
  [[nodiscard]] std::span<const UserRecord> users() const { return users_; }
  [[nodiscard]] std::size_t user_count() const { return users_.size(); }

  /// nullptr when no user carries that id.
  [[nodiscard]] const UserRecord* find_user(UserId id) const;

  /// Mutable access for pipeline stages that fill in detected visits.
  [[nodiscard]] std::span<UserRecord> mutable_users() { return users_; }

 private:
  std::string name_;
  PoiIndex pois_;
  std::vector<UserRecord> users_;
};

/// Table 1 row: headline statistics of one dataset.
struct DatasetStats {
  std::size_t users = 0;
  double avg_days_per_user = 0.0;
  std::size_t checkins = 0;
  std::size_t visits = 0;
  std::size_t gps_points = 0;
};

/// Computes the Table 1 row for `ds`.
[[nodiscard]] DatasetStats compute_stats(const Dataset& ds);

}  // namespace geovalid::trace
