// GPS trace representation: the ground-truth side of the study.
//
// The collection app sampled each user's position once per minute; when GPS
// was unavailable (indoors) it fell back to WiFi + accelerometer stationary
// detection. GpsPoint carries both kinds of evidence.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/latlon.h"
#include "trace/poi.h"
#include "trace/time.h"

namespace geovalid::trace {

/// Stable identifier of a study participant.
using UserId = std::uint32_t;

/// One sample of the per-minute location log.
struct GpsPoint {
  TimeSec t = 0;
  geo::LatLon position;  ///< last known fix when has_fix is false
  bool has_fix = true;   ///< false when indoors / GPS starved

  /// Hash of the set of WiFi BSSIDs visible at sample time; two consecutive
  /// equal fingerprints are strong evidence the device did not move.
  std::uint32_t wifi_fingerprint = 0;

  /// Variance of accelerometer magnitude over the sample window (m/s^2)^2.
  /// Near zero when the device rests on a table; large while walking.
  double accel_variance = 0.0;
};

/// A period of 6+ minutes during which the user remained in one place
/// (the paper's definition of a "visit").
struct Visit {
  TimeSec start = 0;
  TimeSec end = 0;  ///< inclusive end of the stationary window, end >= start
  geo::LatLon centroid;
  PoiId poi = kNoPoi;  ///< the venue the generator placed the stay at, if any

  [[nodiscard]] TimeSec duration() const { return end - start; }
};

/// Interval distance between a visit and an instant (the paper's delta-t):
/// 0 when t lies inside [start, end], otherwise distance to the nearer edge.
[[nodiscard]] TimeSec interval_distance(const Visit& v, TimeSec t);

/// The per-minute GPS log of one user, ordered by time.
class GpsTrace {
 public:
  GpsTrace() = default;

  /// Takes ownership of samples; sorts them by timestamp.
  explicit GpsTrace(std::vector<GpsPoint> points);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::span<const GpsPoint> points() const { return points_; }

  [[nodiscard]] TimeSec start_time() const;
  [[nodiscard]] TimeSec end_time() const;

  /// Trace extent in fractional days (0 for empty/single-point traces).
  [[nodiscard]] double span_days() const;

  /// Position at time t: the most recent sample at or before t.
  /// Returns nullptr when t precedes the first sample or the trace is empty.
  [[nodiscard]] const GpsPoint* sample_at(TimeSec t) const;

  /// Instantaneous speed estimate at time t (m/s) from the samples
  /// bracketing t; 0 at the edges or without a bracketing pair.
  [[nodiscard]] double speed_at(TimeSec t) const;

  void append(GpsPoint p);  ///< must not go backwards in time (throws)

 private:
  std::vector<GpsPoint> points_;
};

}  // namespace geovalid::trace
