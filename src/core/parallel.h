// Parallel batch execution: a reusable thread pool with deterministic-order
// fan-out over indexed work items.
//
// The batch pipeline's unit of work is one user (matching, classification,
// visit detection, feature extraction are all per-user pure functions), so
// the whole pipeline parallelizes as "run fn(i) for every user index i and
// keep the results in input order". parallel_map does exactly that: the
// result vector is indexed by input position regardless of which thread ran
// which item or in what order, so ValidationResult.users, the aggregated
// totals, and every downstream figure are byte-identical at any thread
// count (tested at threads 1/2/4 on the tiny and primary presets).
//
// Work is claimed dynamically (one atomic fetch_add per item) so skewed
// per-user costs — a power-law fact of checkin data — balance across
// threads without any static partitioning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace geovalid::core {

/// Hard ceiling on pool width. std::thread creation aborts with
/// std::system_error long before a million threads, and nothing in the
/// pipeline benefits past this, so requests above the ceiling are clamped
/// here (and rejected with a usage error at the CLI).
inline constexpr std::size_t kMaxThreads = 1024;

/// Maps a requested thread count to an effective one: 0 means "all hardware
/// threads" (the CLI's `--threads 0`), anything else is taken literally up
/// to kMaxThreads.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

/// A fixed-size pool of worker threads executing indexed jobs. The pool is
/// reusable: run() can be called any number of times (from one thread at a
/// time); workers persist across calls. A pool of size 1 spawns no threads
/// at all and run() degrades to a plain sequential loop, so the sequential
/// path stays allocation- and synchronization-free.
class ThreadPool {
 public:
  /// `threads` counts the calling thread too: a pool of size N spawns N-1
  /// workers and run() makes the caller the Nth. 0 = hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width, including the calling thread.
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), blocking until all items finish.
  /// Items are claimed dynamically; the caller participates. If any fn
  /// throws, remaining unclaimed items are abandoned and the first
  /// exception is rethrown here once in-flight items drain.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void work(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // run() waits for the worker rendezvous
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t done_workers_ = 0;     // workers finished with this generation
  std::atomic<std::size_t> next_{0};  // next unclaimed item
  std::exception_ptr error_;
};

/// Applies fn to every index in [0, n) and returns the results *in input
/// order*. A null pool runs inline; a pool of size 1 degrades to a plain
/// loop inside run() — the sequential and parallel paths produce identical
/// vectors by construction.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<Result> out(n);
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  pool->run(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace geovalid::core
