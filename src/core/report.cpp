#include "core/report.h"

#include <iomanip>
#include <ostream>

namespace geovalid::core {

void print_dataset_stats(std::ostream& os, const std::string& name,
                         const trace::DatasetStats& stats) {
  os << std::left << std::setw(10) << name << std::right << std::setw(8)
     << stats.users << std::setw(12) << std::fixed << std::setprecision(1)
     << stats.avg_days_per_user << std::setw(12) << stats.checkins
     << std::setw(12) << stats.visits << std::setw(14) << stats.gps_points
     << "\n";
}

void print_partition(std::ostream& os, const match::Partition& p) {
  const auto pct = [](std::size_t part, std::size_t whole) {
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
  };
  os << "checkins " << p.checkins << ", visits " << p.visits << "\n";
  os << std::fixed << std::setprecision(1);
  os << "  honest      " << std::setw(7) << p.honest << "  ("
     << pct(p.honest, p.checkins) << "% of checkins)\n";
  os << "  extraneous  " << std::setw(7) << p.extraneous << "  ("
     << pct(p.extraneous, p.checkins) << "% of checkins)\n";
  os << "  missing     " << std::setw(7) << p.missing << "  ("
     << pct(p.missing, p.visits) << "% of visits)\n";
  os << "  extraneous breakdown:\n";
  for (std::size_t c = 1; c < match::kCheckinClassCount; ++c) {
    const auto n = p.by_class[c];
    os << "    " << std::left << std::setw(13)
       << match::to_string(static_cast<match::CheckinClass>(c)) << std::right
       << std::setw(7) << n << "  (" << pct(n, p.checkins)
       << "% of checkins, " << pct(n, p.extraneous) << "% of extraneous)\n";
  }
}

void print_cdf_table(std::ostream& os,
                     std::span<const stats::CurveSeries> curves,
                     const std::string& x_label) {
  if (curves.empty()) return;
  os << std::left << std::setw(14) << x_label;
  for (const auto& c : curves) os << std::right << std::setw(18) << c.name;
  os << "\n";
  os << std::fixed << std::setprecision(2);
  const std::size_t rows = curves.front().x.size();
  for (std::size_t i = 0; i < rows; ++i) {
    os << std::left << std::setw(14) << std::setprecision(3)
       << curves.front().x[i];
    os << std::setprecision(2);
    for (const auto& c : curves) {
      os << std::right << std::setw(18) << (i < c.y.size() ? c.y[i] : 0.0);
    }
    os << "\n";
  }
}

void print_levy_model(std::ostream& os, const mobility::LevyWalkModel& m) {
  os << std::fixed << std::setprecision(4);
  os << m.name << ":\n"
     << "  flight  Pareto(x_min=" << m.flight.x_min / 1000.0
     << " km, alpha=" << m.flight.alpha << ")  KS=" << m.flight_ks << "\n"
     << "  pause   Pareto(x_min=" << m.pause.x_min / 60.0
     << " min, alpha=" << m.pause.alpha << ")  KS=" << m.pause_ks << "\n"
     << "  time    t = " << m.time_of_distance.k << " * d^"
     << m.time_of_distance.gamma
     << "  (R^2=" << m.time_of_distance.r_squared
     << ", rho=" << 1.0 - m.time_of_distance.gamma << ")\n";
}

void print_incentive_table(std::ostream& os,
                           const match::IncentiveTable& table) {
  os << std::left << std::setw(14) << "Checkin Type";
  for (std::size_t f = 0; f < match::kProfileFeatureCount; ++f) {
    os << std::right << std::setw(15)
       << match::to_string(static_cast<match::ProfileFeature>(f));
  }
  os << "\n" << std::fixed << std::setprecision(2);
  const char* row_names[] = {"Superfluous", "Remote", "Driveby", "Honest"};
  for (std::size_t r = 0; r < table.pearson.size(); ++r) {
    os << std::left << std::setw(14) << row_names[r];
    for (std::size_t f = 0; f < match::kProfileFeatureCount; ++f) {
      os << std::right << std::setw(15) << table.pearson[r][f];
    }
    os << "\n";
  }
}

std::vector<double> interarrival_grid() {
  return stats::log_grid(0.1, 3000.0, 40);
}

}  // namespace geovalid::core
