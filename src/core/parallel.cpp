#include "core/parallel.h"

#include <algorithm>

#include "obs/metrics.h"

namespace geovalid::core {
namespace {

/// Pool-size / job-volume metrics (docs/OBSERVABILITY.md). Registered once;
/// references are stable for the process lifetime.
struct ParallelMetrics {
  obs::Gauge& pool_threads = obs::registry().gauge(
      "parallel_pool_threads",
      "Execution width (threads, caller included) of the most recent "
      "parallel batch job");
  obs::Counter& jobs = obs::registry().counter(
      "parallel_jobs_total", "Parallel batch jobs executed by ThreadPool::run");
  obs::Counter& items = obs::registry().counter(
      "parallel_items_total",
      "Work items (typically users) executed by ThreadPool::run");
};

ParallelMetrics& metrics() {
  static ParallelMetrics m;
  return m;
}

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return std::min(requested, kMaxThreads);
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  if (n > 1) workers_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  ParallelMetrics& m = metrics();
  m.pool_threads.set(static_cast<std::int64_t>(size()));
  m.jobs.inc();
  m.items.inc(n);

  if (workers_.empty()) {
    // Size-1 pool: plain loop, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_workers_ = 0;
    error_ = nullptr;
    ++generation_;
  }
  wake_cv_.notify_all();

  work(fn, n);  // the calling thread is a full participant

  // Every worker checks in once per generation, so when this wait clears no
  // thread still holds the job's function pointer — `fn` (the caller's
  // reference) can safely die and the next run() can reuse the pool.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_workers_ == workers_.size(); });
  job_fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_fn_;
      n = job_n_;
    }
    if (fn != nullptr) work(*fn, n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_workers_ == workers_.size()) done_cv_.notify_all();
    }
  }
}

void ThreadPool::work(const std::function<void(std::size_t)>& fn,
                      std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
      // Abandon unclaimed items so the job drains promptly.
      next_.store(n, std::memory_order_relaxed);
    }
  }
}

}  // namespace geovalid::core
