// geovalid public facade.
//
// One call takes you from a study config (or a CSV directory) to the full
// validation analysis of the paper: matching, taxonomy, missing-checkin
// breakdowns, incentive correlations, and the Levy-Walk models for the
// MANET experiment. The bench binaries and examples are thin clients of
// this header.
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "match/burstiness.h"
#include "match/filters.h"
#include "match/incentives.h"
#include "match/missing.h"
#include "match/pipeline.h"
#include "match/prevalence.h"
#include "mobility/levy_fit.h"
#include "synth/study_generator.h"
#include "trace/dataset.h"

namespace geovalid::core {

/// A dataset bundled with its complete §4-§5 analysis.
struct StudyAnalysis {
  trace::Dataset dataset;
  match::ValidationResult validation;

  /// Ground-truth behaviour labels; only present for generated studies.
  std::optional<std::map<trace::UserId, std::vector<synth::TrueBehavior>>>
      truth;

  /// Ground-truth friendship graph; only present for generated studies.
  std::optional<std::vector<std::pair<trace::UserId, trace::UserId>>>
      friendships;

  [[nodiscard]] const match::Partition& partition() const {
    return validation.totals;
  }
};

/// Generates a synthetic study and validates it. `threads` fans the
/// per-user validation stage out over a thread pool (0 = all hardware
/// threads); the analysis is byte-identical at any thread count.
[[nodiscard]] StudyAnalysis analyze_generated(
    const synth::StudyConfig& config, const match::MatchConfig& match = {},
    const match::ClassifierConfig& classifier = {}, std::size_t threads = 1);

/// Loads a CSV dataset (written by trace::write_dataset_csv) and validates
/// it. Visits must already be present in the CSVs, or `detect_visits` must
/// be set to derive them from the GPS samples. One pool of `threads`
/// threads (0 = all hardware threads) is shared by the visit-detection and
/// validation stages; output is byte-identical at any thread count.
[[nodiscard]] StudyAnalysis analyze_csv(const std::filesystem::path& dir,
                                        const std::string& name,
                                        bool detect_visits = false,
                                        const match::MatchConfig& match = {},
                                        const match::ClassifierConfig&
                                            classifier = {},
                                        std::size_t threads = 1);

/// Fits the three §6.1 Levy-Walk models (gps / honest-checkin /
/// all-checkin) from an analyzed study. The checkin models borrow the GPS
/// pause distribution, as in the paper.
struct LevyModelSet {
  mobility::LevyWalkModel gps;
  mobility::LevyWalkModel honest;
  mobility::LevyWalkModel all;
};

[[nodiscard]] LevyModelSet fit_levy_models(const StudyAnalysis& analysis);

}  // namespace geovalid::core
