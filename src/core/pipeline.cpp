#include "core/pipeline.h"

#include "core/parallel.h"
#include "obs/metrics.h"
#include "trace/csv.h"
#include "trace/visit_detector.h"

namespace geovalid::core {
namespace {

/// Wall time of one batch pipeline stage, keyed by the `stage` label.
obs::Histogram& stage_ns(const char* stage) {
  return obs::registry().histogram(
      "pipeline_stage_ns", "Wall time of batch pipeline stages (nanoseconds)",
      {{"stage", stage}});
}

/// Folds a finished validation into the batch-side verdict counters. The
/// counter totals must always equal the Partition the caller receives —
/// tests assert this — so this is the only place they are incremented.
void count_validation(const match::Partition& p) {
  obs::Registry& r = obs::registry();
  static constexpr std::string_view kHelp =
      "Batch pipeline verdicts by partition field";
  r.counter("pipeline_verdicts_total", kHelp, {{"verdict", "honest"}})
      .inc(p.honest);
  r.counter("pipeline_verdicts_total", kHelp, {{"verdict", "extraneous"}})
      .inc(p.extraneous);
  r.counter("pipeline_verdicts_total", kHelp, {{"verdict", "missing"}})
      .inc(p.missing);
  r.counter("pipeline_checkins_total",
            "Checkins processed by the batch pipeline")
      .inc(p.checkins);
  r.counter("pipeline_visits_total",
            "GPS-derived visits processed by the batch pipeline")
      .inc(p.visits);
}

}  // namespace

StudyAnalysis analyze_generated(const synth::StudyConfig& config,
                                const match::MatchConfig& match,
                                const match::ClassifierConfig& classifier,
                                std::size_t threads) {
  StudyAnalysis out;
  {
    obs::StageTimer timer(&stage_ns("generate"));
    synth::GeneratedStudy study = synth::generate_study(config);
    out.dataset = std::move(study.dataset);
    out.truth = std::move(study.truth);
    out.friendships = std::move(study.friendships);
  }
  {
    obs::StageTimer timer(&stage_ns("validate"));
    out.validation =
        match::validate_dataset(out.dataset, match, classifier, threads);
  }
  count_validation(out.validation.totals);
  return out;
}

StudyAnalysis analyze_csv(const std::filesystem::path& dir,
                          const std::string& name, bool detect_visits,
                          const match::MatchConfig& match,
                          const match::ClassifierConfig& classifier,
                          std::size_t threads) {
  ThreadPool pool(threads);  // shared by the per-user fan-out stages
  StudyAnalysis out;
  {
    obs::StageTimer timer(&stage_ns("load_csv"));
    out.dataset = trace::read_dataset_csv(dir, name);
  }
  if (detect_visits) {
    obs::StageTimer timer(&stage_ns("detect_visits"));
    const trace::VisitDetector detector;
    auto users = out.dataset.mutable_users();
    pool.run(users.size(), [&](std::size_t i) {
      users[i].visits = detector.detect(users[i].gps);
      detector.snap_to_pois(users[i].visits, out.dataset.pois());
    });
  }
  {
    obs::StageTimer timer(&stage_ns("validate"));
    out.validation =
        match::validate_dataset(out.dataset, match, classifier, pool);
  }
  count_validation(out.validation.totals);
  return out;
}

LevyModelSet fit_levy_models(const StudyAnalysis& analysis) {
  using match::CheckinClass;
  obs::StageTimer timer(&stage_ns("fit_levy"));

  const mobility::MobilitySamples gps_samples =
      mobility::samples_from_visits(analysis.dataset);
  const mobility::MobilitySamples honest_samples =
      mobility::samples_from_checkins(
          analysis.dataset, analysis.validation,
          [](CheckinClass c) { return c == CheckinClass::kHonest; });
  const mobility::MobilitySamples all_samples =
      mobility::samples_from_checkins(analysis.dataset, analysis.validation,
                                      [](CheckinClass) { return true; });

  LevyModelSet set;
  set.gps = mobility::fit_levy_walk(gps_samples, "gps");
  set.honest = mobility::fit_levy_walk(honest_samples, "honest-checkin",
                                       &set.gps);
  set.all = mobility::fit_levy_walk(all_samples, "all-checkin", &set.gps);
  return set;
}

}  // namespace geovalid::core
