#include "core/pipeline.h"

#include "trace/csv.h"
#include "trace/visit_detector.h"

namespace geovalid::core {

StudyAnalysis analyze_generated(const synth::StudyConfig& config,
                                const match::MatchConfig& match,
                                const match::ClassifierConfig& classifier) {
  synth::GeneratedStudy study = synth::generate_study(config);
  StudyAnalysis out;
  out.dataset = std::move(study.dataset);
  out.truth = std::move(study.truth);
  out.friendships = std::move(study.friendships);
  out.validation = match::validate_dataset(out.dataset, match, classifier);
  return out;
}

StudyAnalysis analyze_csv(const std::filesystem::path& dir,
                          const std::string& name, bool detect_visits,
                          const match::MatchConfig& match,
                          const match::ClassifierConfig& classifier) {
  StudyAnalysis out;
  out.dataset = trace::read_dataset_csv(dir, name);
  if (detect_visits) {
    const trace::VisitDetector detector;
    for (trace::UserRecord& u : out.dataset.mutable_users()) {
      u.visits = detector.detect(u.gps);
      detector.snap_to_pois(u.visits, out.dataset.pois());
    }
  }
  out.validation = match::validate_dataset(out.dataset, match, classifier);
  return out;
}

LevyModelSet fit_levy_models(const StudyAnalysis& analysis) {
  using match::CheckinClass;

  const mobility::MobilitySamples gps_samples =
      mobility::samples_from_visits(analysis.dataset);
  const mobility::MobilitySamples honest_samples =
      mobility::samples_from_checkins(
          analysis.dataset, analysis.validation,
          [](CheckinClass c) { return c == CheckinClass::kHonest; });
  const mobility::MobilitySamples all_samples =
      mobility::samples_from_checkins(analysis.dataset, analysis.validation,
                                      [](CheckinClass) { return true; });

  LevyModelSet set;
  set.gps = mobility::fit_levy_walk(gps_samples, "gps");
  set.honest = mobility::fit_levy_walk(honest_samples, "honest-checkin",
                                       &set.gps);
  set.all = mobility::fit_levy_walk(all_samples, "all-checkin", &set.gps);
  return set;
}

}  // namespace geovalid::core
