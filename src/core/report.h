// Text rendering shared by the bench harnesses: every table/figure is
// printed as aligned plain-text rows so `bench_*` output can be diffed
// against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/pipeline.h"
#include "stats/ecdf.h"

namespace geovalid::core {

/// Prints a Table 1 row: name, users, avg days, checkins, visits, GPS points.
void print_dataset_stats(std::ostream& os, const std::string& name,
                         const trace::DatasetStats& stats);

/// Prints the Figure 1 partition with percentages.
void print_partition(std::ostream& os, const match::Partition& p);

/// Prints one or more CDF curves sampled on a shared grid: a header row of
/// curve names, then one line per grid point with the percentile of each
/// curve.
void print_cdf_table(std::ostream& os,
                     std::span<const stats::CurveSeries> curves,
                     const std::string& x_label);

/// Prints a fitted Levy Walk model's parameters.
void print_levy_model(std::ostream& os, const mobility::LevyWalkModel& model);

/// Prints Table 2 (Pearson correlations).
void print_incentive_table(std::ostream& os,
                           const match::IncentiveTable& table);

/// Builds the standard log-spaced inter-arrival grid (0.1 .. 3000 minutes)
/// used by the Figure 2 / Figure 6 benches.
[[nodiscard]] std::vector<double> interarrival_grid();

}  // namespace geovalid::core
