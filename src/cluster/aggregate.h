// Control-plane aggregation for the cluster router (docs/CLUSTER.md).
//
// The router's read-side endpoints are *merged views* over N backend
// responses, computed by pure text-level functions so they can be unit
// tested without sockets:
//
//   - merge_prometheus: sum Prometheus samples per (family, sample,
//     labels) across backends. Summation is the right merge for every
//     family the backends expose — counters and gauges add, and
//     histogram buckets add because obs::Histogram uses fixed log2
//     bounds, so `le` labels line up across processes.
//   - filter_prometheus: project an exposition down to families with a
//     given name prefix — how the router appends only its own
//     `cluster_*` families to the merged backend view without
//     double-counting shared-registry families in in-process tests.
//   - merge_summaries: combine /v1/summary bodies. Users live on exactly
//     one backend (the ring is a partition), so counts sum; the two mean
//     fields are user-weighted so the merged value equals what a single
//     process covering all users would report.
//
// Both parsers accept exactly the formats emitted by src/obs/export.cpp
// and serve::Server::summary_json — grouped exposition (samples follow
// their # TYPE header) and object-only JSON with numeric leaves. That is
// a deliberate contract with our own backends, not a general scraper.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace geovalid::cluster {

/// Sums samples across expositions; renders families sorted by name with
/// `# HELP`/`# TYPE` headers (first text's wording wins) and samples in
/// first-seen order, preserving the exporter's cumulative bucket order.
[[nodiscard]] std::string merge_prometheus(
    const std::vector<std::string>& texts);

/// Keeps only families whose name starts with `family_prefix`.
[[nodiscard]] std::string filter_prometheus(std::string_view text,
                                            std::string_view family_prefix);

/// Drops families whose name starts with `family_prefix` — the router
/// applies this to backend expositions so a shared-registry (in-process)
/// deployment cannot echo the router's own cluster_* families back into
/// the merge. A no-op against real serve processes.
[[nodiscard]] std::string strip_prometheus(std::string_view text,
                                           std::string_view family_prefix);

/// Numeric leaves of a JSON object as (dotted path, value) in document
/// order. Strings, bools and nulls are skipped; arrays are rejected with
/// std::invalid_argument, as is any malformed body.
[[nodiscard]] std::vector<std::pair<std::string, double>>
flatten_json_numbers(std::string_view json);

/// Merges /v1/summary bodies: every numeric field sums except
/// prevalence.mean_extraneous_ratio (weighted by
/// prevalence.users_with_checkins) and burstiness.mean (weighted by
/// burstiness.users_with_gaps). The result keeps the first body's field
/// order with a leading "backends" count. Throws std::invalid_argument
/// on empty input or malformed JSON.
[[nodiscard]] std::string merge_summaries(
    const std::vector<std::string>& bodies);

}  // namespace geovalid::cluster
