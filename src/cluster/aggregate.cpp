#include "cluster/aggregate.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace geovalid::cluster {
namespace {

void append_number(std::string& out, double v) {
  // Integral values (every counter sum) print without a fraction so the
  // merged exposition looks like the per-backend ones.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

/// One family's merged state. Samples keep first-seen order: the obs
/// exporter emits histogram buckets in increasing `le` order, and a
/// lexical re-sort would scramble them.
struct Family {
  std::string help;
  std::string type;
  std::vector<std::pair<std::string, double>> samples;  // key -> sum
  std::unordered_map<std::string, std::size_t> index;
};

using FamilyMap = std::map<std::string, Family>;

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

void parse_exposition(std::string_view text, FamilyMap& families) {
  std::string current;  // family owning subsequent samples
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    line = trim(line);
    if (line.empty()) continue;

    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_help = line[2] == 'H';
      line.remove_prefix(7);
      const std::size_t sp = line.find(' ');
      const std::string name(line.substr(0, sp));
      if (name.empty()) continue;
      Family& f = families[name];
      const std::string_view rest =
          sp == std::string_view::npos ? std::string_view{}
                                       : trim(line.substr(sp + 1));
      if (is_help) {
        if (f.help.empty()) f.help = std::string(rest);
      } else {
        if (f.type.empty()) f.type = std::string(rest);
        current = name;
      }
      continue;
    }
    if (line.front() == '#') continue;

    // Sample: `name{labels} value` or `name value`. The value is the
    // suffix after the last space outside the label braces — label
    // values may themselves contain spaces.
    const std::size_t brace = line.find('{');
    std::size_t value_at = std::string_view::npos;
    if (brace != std::string_view::npos) {
      const std::size_t close = line.rfind('}');
      if (close == std::string_view::npos || close < brace) continue;
      value_at = line.find(' ', close);
    } else {
      value_at = line.find(' ');
    }
    if (value_at == std::string_view::npos) continue;
    const std::string key(trim(line.substr(0, value_at)));
    const std::string value_str(trim(line.substr(value_at + 1)));
    if (key.empty() || value_str.empty()) continue;
    const double value = std::strtod(value_str.c_str(), nullptr);

    // Attribute to the family announced by the last # TYPE header; a
    // headerless sample (not produced by our exporter) becomes its own
    // family keyed by its base name.
    const std::string base =
        key.substr(0, brace == std::string_view::npos ? key.find(' ')
                                                      : brace);
    std::string family_name = current;
    if (family_name.empty() || base.rfind(family_name, 0) != 0) {
      family_name = base;
    }
    Family& f = families[family_name];
    const auto [it, inserted] = f.index.emplace(key, f.samples.size());
    if (inserted) {
      f.samples.emplace_back(key, value);
    } else {
      f.samples[it->second].second += value;
    }
  }
}

std::string render(const FamilyMap& families, std::string_view prefix,
                   bool keep_matching = true) {
  std::string out;
  for (const auto& [name, f] : families) {
    const bool matches = !prefix.empty() && name.rfind(prefix, 0) == 0;
    if (keep_matching ? (!prefix.empty() && !matches) : matches) continue;
    if (f.samples.empty() && f.help.empty() && f.type.empty()) continue;
    if (!f.help.empty()) {
      out += "# HELP ";
      out += name;
      out += ' ';
      out += f.help;
      out += '\n';
    }
    if (!f.type.empty()) {
      out += "# TYPE ";
      out += name;
      out += ' ';
      out += f.type;
      out += '\n';
    }
    for (const auto& [key, value] : f.samples) {
      out += key;
      out += ' ';
      append_number(out, value);
      out += '\n';
    }
  }
  return out;
}

/// Minimal recursive-descent scan of a JSON object tree, collecting
/// numeric leaves. Only the grammar serve emits is accepted.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  std::vector<std::pair<std::string, double>> run() {
    skip_ws();
    object("");
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after object");
    return std::move(out_);
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument(std::string("summary JSON: ") + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected byte");
    ++pos_;
  }

  std::string string_token() {
    expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) fail("truncated escape");
      }
      s += text_[pos_++];
    }
    expect('"');
    return s;
  }

  void object(const std::string& prefix) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = string_token();
      skip_ws();
      expect(':');
      skip_ws();
      const std::string path =
          prefix.empty() ? key : prefix + "." + key;
      value(path);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void value(const std::string& path) {
    const char c = peek();
    if (c == '{') {
      object(path);
    } else if (c == '"') {
      (void)string_token();
    } else if (c == '[') {
      fail("arrays are not supported");
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      const char* begin = text_.data() + pos_;
      char* end = nullptr;
      const double v = std::strtod(begin, &end);
      if (end == begin) fail("expected a value");
      pos_ += static_cast<std::size_t>(end - begin);
      out_.emplace_back(path, v);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::vector<std::pair<std::string, double>> out_;
};

}  // namespace

std::string merge_prometheus(const std::vector<std::string>& texts) {
  FamilyMap families;
  for (const std::string& text : texts) parse_exposition(text, families);
  return render(families, {});
}

std::string filter_prometheus(std::string_view text,
                              std::string_view family_prefix) {
  FamilyMap families;
  parse_exposition(text, families);
  return render(families, family_prefix);
}

std::string strip_prometheus(std::string_view text,
                             std::string_view family_prefix) {
  FamilyMap families;
  parse_exposition(text, families);
  return render(families, family_prefix, /*keep_matching=*/false);
}

std::vector<std::pair<std::string, double>> flatten_json_numbers(
    std::string_view json) {
  return JsonScanner(json).run();
}

std::string merge_summaries(const std::vector<std::string>& bodies) {
  if (bodies.empty()) {
    throw std::invalid_argument("merge_summaries: no bodies");
  }

  // The first body fixes field order and structure; later bodies fold
  // their values in by path.
  const std::vector<std::pair<std::string, double>> shape =
      flatten_json_numbers(bodies.front());
  std::unordered_map<std::string, double> sums;
  std::unordered_map<std::string, double> weighted;  // sum(mean * weight)
  const auto weight_path = [](const std::string& path) -> const char* {
    if (path == "prevalence.mean_extraneous_ratio") {
      return "prevalence.users_with_checkins";
    }
    if (path == "burstiness.mean") return "burstiness.users_with_gaps";
    return nullptr;
  };

  for (const std::string& body : bodies) {
    const auto flat = flatten_json_numbers(body);
    std::unordered_map<std::string, double> doc;
    doc.reserve(flat.size());
    for (const auto& [path, v] : flat) doc.emplace(path, v);
    for (const auto& [path, v] : flat) {
      sums[path] += v;
      if (const char* wp = weight_path(path)) {
        const auto w = doc.find(wp);
        weighted[path] += v * (w == doc.end() ? 0.0 : w->second);
      }
    }
  }

  std::string out = "{\"backends\":";
  append_number(out, static_cast<double>(bodies.size()));
  std::vector<std::string> stack;  // open object path segments
  for (const auto& [path, unused] : shape) {
    (void)unused;
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
      const std::size_t dot = path.find('.', start);
      parts.push_back(path.substr(start, dot - start));
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    // parts = [...objects..., leaf]; close and open braces to match.
    std::size_t common = 0;
    while (common < stack.size() && common + 1 < parts.size() &&
           stack[common] == parts[common]) {
      ++common;
    }
    while (stack.size() > common) {
      out += '}';
      stack.pop_back();
    }
    for (std::size_t i = common; i + 1 < parts.size(); ++i) {
      if (out.back() != '{') out += ',';
      out += '"';
      out += parts[i];
      out += "\":{";
      stack.push_back(parts[i]);
    }
    if (out.back() != '{') out += ',';
    out += '"';
    out += parts.back();
    out += "\":";
    double v = sums[path];
    if (weight_path(path) != nullptr) {
      const double w = sums[weight_path(path)];
      v = w == 0.0 ? 0.0 : weighted[path] / w;
    }
    append_number(out, v);
  }
  while (!stack.empty()) {
    out += '}';
    stack.pop_back();
  }
  out += '}';
  return out;
}

}  // namespace geovalid::cluster
