// Per-backend forwarding connection for the cluster router.
//
// One Forwarder owns the persistent TCP ingest connection to one
// `geovalid serve` backend. Routed wire records append to an in-memory
// buffer and drip out non-blocking under the router's poll loop — the
// same wbuf discipline serve uses for HTTP responses, pointed the other
// way. The buffer doubles as the backpressure signal: when any backend's
// buffer crosses the router's high-water mark, the router stops reading
// from ingest clients until the slow backend catches up, so a stalled
// backend translates into TCP backpressure on the producers instead of
// unbounded router memory.
//
// Failure no longer drops records. Each forwarder carries the router's
// per-backend health state machine (up → suspect → down → recovering,
// docs/ROBUSTNESS.md) and a bounded spool: while the backend is anything
// but up, routed records queue in the spool instead of the socket buffer,
// and a send failure *salvages* every byte from the last full-record
// boundary back into the spool. Record boundaries are tracked per channel
// (Pending entries), so the record the kernel accepted half of is
// re-queued whole — the backend dead-letters the delivered fragment as
// truncated, then applies the replayed copy exactly once. The spool's
// byte budget feeds the router's whole-ingest backpressure: overflow
// pauses reads, it never discards. Records are *counted* as dropped only
// at deliberate teardown (close() with the spool non-empty), when the
// router is exiting and re-delivery is the clients' re-send.
//
// Binary ingest rides a second, lazily-opened connection per backend: the
// serve daemon negotiates text vs. binary per connection from the first
// byte, so one socket can never carry both formats. Per-user ordering is
// safe across the pair because a client connection speaks one format for
// its lifetime, so any given user's records travel one channel per run.
// The spool is a single FIFO holding both kinds of entry, so drain order
// per channel equals arrival order.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "serve/net.h"
#include "stream/faults.h"

namespace geovalid::cluster {

/// Address of one backend. `name` is the ring identity (stable across
/// process replacement); host/ports are the current process.
struct BackendAddr {
  std::string name;
  std::string host = "127.0.0.1";
  std::uint16_t ingest_port = 0;
  std::uint16_t http_port = 0;
};

/// Per-backend health, driven by the router's probe loop plus the
/// forwarder's own connection events. Ordered by declining health so the
/// exported gauge (`cluster_backend_state`) reads naturally.
enum class BackendState : std::uint8_t {
  kDown = 0,        ///< connection lost (or probes hard-failed); reconnecting
  kRecovering = 1,  ///< reconnected, awaiting a passing probe + replay choice
  kSuspect = 2,     ///< connection live but the last probe failed
  kUp = 3,          ///< connection live, probes passing
};

[[nodiscard]] const char* to_string(BackendState state);

class Forwarder {
 public:
  explicit Forwarder(BackendAddr addr) : addr_(std::move(addr)) {}

  /// Connects with `connect_timeout_ms` and leaves the socket
  /// non-blocking. On success the state becomes recovering (the router
  /// promotes to up once a probe passes and replay is settled); on
  /// failure it stays down. Never throws.
  bool connect() noexcept;

  [[nodiscard]] BackendState state() const { return state_; }
  /// True while records may be written to the sockets (up or suspect —
  /// a suspect backend's connection still works; only the probe failed).
  [[nodiscard]] bool sending() const {
    return state_ == BackendState::kUp || state_ == BackendState::kSuspect;
  }
  [[nodiscard]] bool connected() const { return fd_.valid(); }

  /// Router-driven transitions (probe results / recovery protocol).
  void set_state(BackendState state) { state_ = state; }

  [[nodiscard]] const BackendAddr& addr() const { return addr_; }
  [[nodiscard]] int fd() const { return fd_.get(); }
  /// The binary channel's socket; -1 until the first enqueue_frame().
  [[nodiscard]] int binary_fd() const { return bfd_.get(); }
  /// Pending socket-buffer bytes across both channels (the high-water
  /// backpressure signal; the spool has its own budget).
  [[nodiscard]] std::size_t buffered() const {
    return (buf_.size() - off_) + (bbuf_.size() - boff_);
  }
  [[nodiscard]] bool wants_write() const {
    return sending() && (buf_.size() - off_) > 0;
  }
  [[nodiscard]] bool wants_binary_write() const {
    return sending() && bfd_.valid() && (bbuf_.size() - boff_) > 0;
  }

  // -- Spool (records held while the backend is not up) ------------------

  [[nodiscard]] std::size_t spool_bytes() const { return spool_bytes_; }
  [[nodiscard]] std::uint64_t spool_records() const { return spool_records_; }
  /// Age of the oldest spooled entry, 0 when empty.
  [[nodiscard]] double spool_age_seconds(
      std::chrono::steady_clock::time_point now) const;

  /// Queues one wire record (`line` without its newline; the forwarder
  /// appends the delimiter). While the backend is not up the record goes
  /// to the spool instead. Always succeeds — loss is not an outcome of
  /// enqueueing.
  void enqueue(std::string_view line);

  /// Queues one complete binary frame (raw bytes, no delimiter) carrying
  /// `records` records, opening the binary channel on first use. A frame
  /// that cannot reach a socket spools; always succeeds.
  void enqueue_frame(std::string_view frame, std::uint64_t records);

  /// Sends as much of both buffers as the sockets accept right now. A
  /// send failure salvages everything from the last full-record boundary
  /// into the spool and transitions to down.
  void flush();

  /// Recovery for a backend whose process survived (same instance): move
  /// every spooled entry back onto the socket buffers, oldest first.
  /// Returns false (and re-severs, spool intact) when the binary channel
  /// cannot reopen.
  bool drain_spool();

  /// Recovery for a replaced/restarted process (new instance): the
  /// spooled records are superseded by the client re-send the epoch reset
  /// triggers. Returns how many records were discarded (they are *not*
  /// lost — the re-send re-delivers them; exported as
  /// cluster_spool_superseded_total).
  std::uint64_t discard_spool();

  /// Severs the connection now: salvages both channels into the spool and
  /// transitions to down. The router calls this on peer EOF/reset and on
  /// flush-deadline expiry; flush() calls it on send failure.
  void sever();

  /// Deliberate teardown (drain EOF or router exit): closes both channels
  /// and counts any still-buffered or spooled records as dropped — at
  /// this point nothing will re-deliver them.
  void close();

  /// Points the forwarder at a replacement process for the same ring
  /// name and reconnects. Buffered/spooled records for the old process
  /// are superseded by the rebalance re-send, so they are discarded
  /// (returned via discard_spool() semantics), not counted dropped.
  bool replace(BackendAddr addr) noexcept;

  /// Deterministic network-fault hooks (`--inject-net-faults`): consulted
  /// per enqueue by ring name; triggers simulate reset/drop/stall at the
  /// next flush. Not owned.
  void set_fault_injector(stream::NetFaultInjector* injector) {
    fault_injector_ = injector;
  }

  void set_connect_timeout_ms(int ms) { connect_timeout_ms_ = ms; }

  std::uint64_t forwarded = 0;      ///< records written toward a socket
  std::uint64_t dropped = 0;        ///< records lost at teardown, counted
  std::uint64_t spooled_total = 0;  ///< records that ever entered the spool
  std::uint64_t reconnects = 0;     ///< successful connect() after a sever
  /// Records discarded because a process restart made the client re-send
  /// authoritative (discard_spool/replace) — re-delivered, not lost.
  std::uint64_t superseded = 0;

 private:
  /// One enqueued record group with bytes still pending on a channel:
  /// `size` total bytes, `left` unsent. Text queues one entry per record;
  /// the binary channel one per frame. Kept until *fully* sent so a
  /// partially-sent entry can be salvaged whole.
  struct Pending {
    std::uint32_t size = 0;
    std::uint32_t left = 0;
    std::uint32_t records = 0;
  };

  /// One spooled record group, FIFO. Text entries coalesce many records;
  /// frame entries are exactly one frame.
  struct SpoolEntry {
    std::string bytes;
    std::uint64_t records = 0;
    bool frame = false;
    std::chrono::steady_clock::time_point queued_at;
  };

  bool flush_channel(serve::Fd& fd, std::string& buf, std::size_t& off,
                     std::deque<Pending>& pending);
  void salvage_channel(std::string& buf, std::size_t& off,
                       std::deque<Pending>& pending, bool frame,
                       std::deque<SpoolEntry>& out);
  bool ensure_binary_channel() noexcept;
  void spool_push(std::string bytes, std::uint64_t records, bool frame);
  void on_injected(const stream::NetFaultInjector::Triggered& t);

  BackendAddr addr_;
  serve::Fd fd_;
  std::string buf_;
  std::size_t off_ = 0;
  std::deque<Pending> tpending_;  ///< unsent-byte accounting per text record
  serve::Fd bfd_;      ///< binary channel, opened on first enqueue_frame()
  std::string bbuf_;
  std::size_t boff_ = 0;
  std::deque<Pending> bpending_;  ///< unsent-byte accounting per frame
  BackendState state_ = BackendState::kDown;
  bool ever_connected_ = false;

  std::deque<SpoolEntry> spool_;
  std::size_t spool_bytes_ = 0;
  std::uint64_t spool_records_ = 0;

  stream::NetFaultInjector* fault_injector_ = nullptr;
  bool inject_reset_ = false;
  bool inject_drop_ = false;
  std::chrono::steady_clock::time_point stall_until_{};
  int connect_timeout_ms_ = 1000;
};

}  // namespace geovalid::cluster
