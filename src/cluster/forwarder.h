// Per-backend forwarding connection for the cluster router.
//
// One Forwarder owns the persistent TCP ingest connection to one
// `geovalid serve` backend. Routed wire records append to an in-memory
// buffer and drip out non-blocking under the router's poll loop — the
// same wbuf discipline serve uses for HTTP responses, pointed the other
// way. The buffer doubles as the backpressure signal: when any backend's
// buffer crosses the router's high-water mark, the router stops reading
// from ingest clients until the slow backend catches up, so a stalled
// backend translates into TCP backpressure on the producers instead of
// unbounded router memory.
//
// A send failure (EPIPE/ECONNRESET — the backend died or drained) marks
// the forwarder down: buffered and subsequent records for its shard are
// *dropped and counted*, never silently queued forever. Recovery is the
// rebalance path (docs/CLUSTER.md): replace() points the forwarder at a
// resumed replacement process, and router-level replay accounting makes
// client re-sends exactly-once.
//
// Binary ingest rides a second, lazily-opened connection per backend: the
// serve daemon negotiates text vs. binary per connection from the first
// byte, so one socket can never carry both formats. The text channel
// stays exactly as it was; enqueue_frame() opens the binary channel on
// first use (its first byte, the frame magic 0xB1, is the negotiation).
// Per-user ordering is safe across the pair because a client connection
// speaks one format for its lifetime, so any given user's records travel
// one channel per run. Both channels share the health state and the
// buffered()/flush()/close() discipline.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "serve/net.h"

namespace geovalid::cluster {

/// Address of one backend. `name` is the ring identity (stable across
/// process replacement); host/ports are the current process.
struct BackendAddr {
  std::string name;
  std::string host = "127.0.0.1";
  std::uint16_t ingest_port = 0;
  std::uint16_t http_port = 0;
};

class Forwarder {
 public:
  explicit Forwarder(BackendAddr addr) : addr_(std::move(addr)) {}

  /// Connects (blocking) then switches the socket non-blocking. Returns
  /// false and stays down on failure.
  bool connect() noexcept;

  /// True once connect() succeeded and no send has failed since.
  [[nodiscard]] bool healthy() const { return healthy_; }

  [[nodiscard]] const BackendAddr& addr() const { return addr_; }
  [[nodiscard]] int fd() const { return fd_.get(); }
  /// The binary channel's socket; -1 until the first enqueue_frame().
  [[nodiscard]] int binary_fd() const { return bfd_.get(); }
  /// Pending bytes across both channels (the backpressure signal).
  [[nodiscard]] std::size_t buffered() const {
    return (buf_.size() - off_) + (bbuf_.size() - boff_);
  }
  [[nodiscard]] bool wants_write() const {
    return healthy_ && (buf_.size() - off_) > 0;
  }
  [[nodiscard]] bool wants_binary_write() const {
    return healthy_ && bfd_.valid() && (bbuf_.size() - boff_) > 0;
  }

  /// Queues one wire record (`line` without its newline; the forwarder
  /// appends the delimiter). Returns true when queued; returns false and
  /// counts the record as dropped when the forwarder is down.
  bool enqueue(std::string_view line);

  /// Queues one complete binary frame (raw bytes, no delimiter) carrying
  /// `records` records, opening the binary channel on first use. Returns
  /// true when queued; returns false and counts all `records` as dropped
  /// when the forwarder is down or the channel cannot connect.
  bool enqueue_frame(std::string_view frame, std::uint64_t records);

  /// Sends as much of both buffers as the sockets accept right now.
  /// EPIPE/ECONNRESET marks the forwarder down and drops the remainder.
  void flush();

  /// Signals EOF to the backend (orderly half of drain/stop).
  void close();

  /// Marks the forwarder down, dropping any buffered records. Used when
  /// the backend's read side reports EOF or when a flush deadline in the
  /// control plane expires.
  void mark_down();

  /// Points the forwarder at a replacement process for the same ring
  /// name and reconnects. Returns connect()'s result.
  bool replace(BackendAddr addr) noexcept;

  std::uint64_t forwarded = 0;  ///< records handed to enqueue() while up
  std::uint64_t dropped = 0;    ///< records lost while down

 private:
  /// One enqueued-but-unsent frame on the binary channel; a frame with
  /// bytes still pending at mark_down() loses all its records (a backend
  /// receiving a half-frame dead-letters it as truncated anyway).
  struct PendingFrame {
    std::size_t bytes_left = 0;
    std::uint64_t records = 0;
  };

  bool flush_channel(serve::Fd& fd, std::string& buf, std::size_t& off);

  BackendAddr addr_;
  serve::Fd fd_;
  std::string buf_;
  std::size_t off_ = 0;
  serve::Fd bfd_;      ///< binary channel, opened on first enqueue_frame()
  std::string bbuf_;
  std::size_t boff_ = 0;
  std::deque<PendingFrame> bframes_;  ///< unsent-byte accounting per frame
  bool healthy_ = false;
};

}  // namespace geovalid::cluster
