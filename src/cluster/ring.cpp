#include "cluster/ring.h"

#include <algorithm>
#include <stdexcept>

namespace geovalid::cluster {

std::uint64_t hash_bytes(std::string_view bytes) {
  // FNV-1a 64-bit with the standard offset basis and prime, then one
  // splitmix64 round: FNV alone is weak in the high bits, and ring
  // points need the full word to spread around the ring.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

HashRing::HashRing(RingConfig config) : config_(config) {
  if (config_.vnodes == 0) {
    throw std::invalid_argument("HashRing: vnodes must be positive");
  }
}

void HashRing::insert_points(const std::string& name, std::size_t index) {
  points_.reserve(points_.size() + config_.vnodes);
  std::string key;
  for (std::size_t v = 0; v < config_.vnodes; ++v) {
    key.assign(name);
    key.push_back('#');
    key.append(std::to_string(v));
    points_.push_back(Point{hash_bytes(key), index});
  }
  // Ties (two names hashing one vnode onto the same point) are broken by
  // backend name so the ring never depends on insertion order.
  std::sort(points_.begin(), points_.end(),
            [this](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return names_[a.backend] < names_[b.backend];
            });
}

void HashRing::add_backend(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument("HashRing: backend name must be non-empty");
  }
  for (const std::string& existing : names_) {
    if (existing == name) {
      throw std::invalid_argument("HashRing: duplicate backend '" + name +
                                  "'");
    }
  }
  names_.push_back(name);
  insert_points(name, names_.size() - 1);
}

void HashRing::remove_backend(const std::string& name) {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw std::invalid_argument("HashRing: unknown backend '" + name + "'");
  }
  const std::size_t index = static_cast<std::size_t>(it - names_.begin());
  names_.erase(it);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [index](const Point& p) {
                                 return p.backend == index;
                               }),
                points_.end());
  for (Point& p : points_) {
    if (p.backend > index) --p.backend;
  }
}

std::size_t HashRing::owner_index(trace::UserId user) const {
  if (points_.empty()) {
    throw std::logic_error("HashRing: lookup on an empty ring");
  }
  const std::uint64_t h = mix64(static_cast<std::uint64_t>(user));
  // First point strictly clockwise of the key, wrapping to the ring's
  // start past the last point.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](std::uint64_t key, const Point& p) { return key < p.hash; });
  return (it == points_.end() ? points_.front() : *it).backend;
}

}  // namespace geovalid::cluster
