// The geovalid route daemon: a single-threaded poll() event loop that
// fronts N independent `geovalid serve` backends (docs/CLUSTER.md).
//
// Data plane: ingest clients speak either serve wire format, negotiated
// per connection from the first byte exactly as serve does (serve/wire.h).
// Text: the router extracts only the *routing key* from each line — the
// verb and the user id, the first two fields — picks the owning backend
// on a consistent-hash ring (cluster/ring.h), and forwards the raw bytes
// verbatim over a persistent per-backend TCP connection
// (cluster/forwarder.h). Full parsing and validation stay on the
// backends; that asymmetry is what lets one router outrun one serve
// process, whose ceiling is single-threaded record parsing. Lines whose
// routing key cannot be extracted dead-letter at the router through the
// usual quarantine path.
//
// Binary frames carry many users' records in one columnar unit, so
// verbatim forwarding cannot shard them: the router decodes each frame,
// runs the same per-record epoch accounting as the text path, partitions
// the surviving events by ring owner and re-encodes one sub-frame per
// backend (serve/wire.h append_binary_frame), queued on the forwarder's
// dedicated binary channel. Frames the codec rejects dead-letter here as
// `malformed_frame` with the same hex-prefix detail serve uses.
//
// Control plane: merged or fanned-out views over the backends' own
// endpoints — /healthz (router liveness), /readyz (every backend ready),
// GET /metrics (summed families plus the router's cluster_*), GET
// /v1/summary (user-weighted merge), /v1/users/{id}/verdicts (proxied to
// the ring owner), POST /admin/checkpoint and /admin/drain (fan-out,
// all-or-error), and POST /admin/backends/{name} — the rebalance hook
// that points a ring name at a replacement process.
//
// Exactly-once across rebalance: the router keeps per-user counts of
// records forwarded to each user's owner. Replacing a backend starts a
// new *epoch*: clients re-send their full traces, the router silently
// skips each healthy user's already-applied prefix, and the replacement
// process's own checkpoint-resume skip (serve/server.h) deduplicates the
// records its restored snapshot already covers. At-least-once delivery
// in, exactly-once application out — the cluster-level restatement of
// the serve resume contract.
//
// Self-healing (docs/ROBUSTNESS.md): the loop actively probes each
// backend's /readyz with a connect/read deadline, driving the forwarder
// state machine (up → suspect → down → recovering). A lost connection
// reconnects with capped, jittered exponential backoff instead of
// latching dead; records meanwhile queue in the forwarder's bounded
// spool, overflowing to whole-ingest backpressure, never to a drop. On
// reconnect, the probe's Geovalid-Instance header decides the replay:
// the same instance means the process (and its applied records) survived
// — the spool simply drains; a new instance means only a checkpoint
// survived — the router starts a new epoch, exactly as handle_replace
// does, and the client re-send plus serve's resume skip restore
// exactly-once.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/forwarder.h"
#include "cluster/ring.h"
#include "serve/net.h"
#include "serve/wire.h"
#include "stream/quarantine.h"

namespace geovalid::cluster {

struct RouteConfig {
  std::string host = "127.0.0.1";
  std::uint16_t ingest_port = 0;  ///< 0 = ephemeral
  std::uint16_t http_port = 0;    ///< 0 = ephemeral

  /// The backends to front. Names must be unique; they are the ring
  /// identity and must stay stable across process replacement.
  std::vector<BackendAddr> backends;
  std::size_t vnodes = 128;  ///< ring points per backend

  std::size_t max_connections = 1024;
  double idle_timeout_s = 60.0;
  std::size_t max_line_bytes = serve::kMaxLineBytes;

  /// Per-backend buffer high-water mark: when any backend's queue grows
  /// past this, the router stops reading from ingest clients (TCP
  /// backpressure) until every queue is back under half of it.
  std::size_t backend_buffer_bytes = 4 * 1024 * 1024;

  /// Dead-letter sink for lines rejected at the router.
  stream::QuarantineConfig quarantine;

  /// Register cluster_* metric families in the process registry.
  bool metrics = true;

  /// Health probing: every `probe_interval_s` the router opens a
  /// non-blocking GET /readyz to each backend with `probe_timeout_s` as
  /// the combined connect/read deadline. `probe_down_after` consecutive
  /// failures sever a still-connected backend (a hung process will not
  /// flush its queue; the spool reclaims it).
  double probe_interval_s = 2.0;
  double probe_timeout_s = 1.0;
  std::size_t probe_down_after = 3;

  /// Reconnect backoff (jittered exponential, stream::backoff_with_jitter,
  /// seeded from `net_faults.seed` so chaos drills replay identically).
  std::uint32_t reconnect_backoff_ms = 100;
  std::uint32_t reconnect_backoff_cap_ms = 5000;

  /// Per-backend spool byte budget: records owned by a not-up backend
  /// queue here; past the budget the router stops reading ingest (the
  /// same whole-ingest backpressure as backend_buffer_bytes) — overflow
  /// is never a drop.
  std::size_t spool_bytes = 16 * 1024 * 1024;

  /// Deadline for control-plane fan-out (forwarder flush before
  /// checkpoint/drain, plus every backend HTTP call the control plane
  /// makes). The CLI flag is --fanout-deadline-s.
  double fanout_deadline_s = 30.0;

  /// Deterministic network fault injection (--inject-net-faults,
  /// stream/faults.h net grammar); empty = off.
  stream::NetFaultPlan net_faults;
};

enum class RouteExit : std::uint8_t {
  kStopped,  ///< stop flag (SIGTERM path): buffers flushed, backends left up
  kDrained,  ///< POST /admin/drain completed across every backend
};

struct RouteStats {
  RouteExit exit = RouteExit::kStopped;
  std::uint64_t records_forwarded = 0;  ///< routed toward the owning backend
  std::uint64_t records_replayed = 0;   ///< skipped as epoch-covered
  std::uint64_t records_malformed = 0;  ///< no routing key; dead-lettered
  /// Counted loss — only possible at deliberate teardown with records
  /// still queued (spool overflow backpressures instead of dropping).
  std::uint64_t records_dropped = 0;
  /// Spooled records discarded because a backend restart made the client
  /// re-send authoritative (not loss; the re-send re-delivers them).
  std::uint64_t records_superseded = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t connections = 0;
};

class Router {
 public:
  /// Validates the backend list and builds the ring. Throws
  /// std::invalid_argument on an empty list or duplicate names.
  explicit Router(RouteConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connects every backend's forwarder (all must be reachable — a
  /// router with a known-dead backend should fail loudly at startup, not
  /// drop a shard silently; throws serve::NetError) and binds both
  /// listeners. Call once, before run().
  void start();

  [[nodiscard]] std::uint16_t ingest_port() const { return ingest_port_; }
  [[nodiscard]] std::uint16_t http_port() const { return http_port_; }

  /// The event loop: routes until `stop` becomes true (flushes and
  /// closes forwarder connections; backends keep running) or an
  /// /admin/drain completes across the cluster.
  RouteStats run(const std::atomic<bool>* stop = nullptr);

  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] const stream::Quarantine& quarantine() const {
    return *quarantine_;
  }

 private:
  struct Conn;
  struct Metrics;
  using Clock = std::chrono::steady_clock;

  void register_metrics();
  void accept_ready(serve::Fd& listener, bool is_http);
  void handle_read(Conn& c);
  void handle_ingest_eof(Conn& c);
  void process_ingest_line(std::string_view text, bool truncated);
  /// One decoded binary frame: per-record epoch accounting, then the
  /// surviving events are partitioned by ring owner, re-encoded as one
  /// sub-frame per backend and queued on the binary channels.
  void process_ingest_frame(serve::BinaryFrameDecoder::Frame& frame);
  /// One rejected binary frame: counted as a single malformed record and
  /// dead-lettered (hex-prefix detail) as `malformed_frame`.
  void process_frame_error(const serve::FrameError& error);
  void route_request(Conn& c);
  void flush_write(Conn& c);
  void sweep_idle(Clock::time_point now);
  void update_backend_gauges();

  /// Drives every pending forwarder buffer to the kernel, polling up to
  /// `deadline_ms`; a backend that cannot absorb its queue in time is
  /// severed (its remainder salvaged into the spool). Returns true when
  /// everything flushed.
  bool flush_all_blocking(int deadline_ms);

  // -- Self-healing (probe loop + reconnect + recovery protocol) --------

  /// Non-blocking health probe to one backend's GET /readyz, driven by
  /// the router's poll loop under its own fd tag.
  struct BackendHealth {
    enum class ProbePhase : std::uint8_t {
      kIdle,
      kConnecting,
      kSending,
      kReading,
    };
    ProbePhase phase = ProbePhase::kIdle;
    serve::Fd probe_fd;
    std::string probe_out;  ///< request bytes still to send
    std::size_t probe_off = 0;
    std::string probe_in;  ///< raw response accumulated to EOF
    Clock::time_point probe_deadline{};
    Clock::time_point next_probe_at{};  ///< epoch start = immediately due

    std::size_t consecutive_failures = 0;
    std::uint32_t reconnect_attempts = 0;
    Clock::time_point next_reconnect_at{};
    /// Geovalid-Instance from the last passing probe; a change across a
    /// recovery means the process restarted and replay must come from
    /// the clients, not the spool.
    std::string instance;
  };

  /// Due-time driving: start/expire probes, attempt backoff reconnects.
  void check_health_timers(Clock::time_point now);
  void start_probe(std::size_t index, Clock::time_point now);
  /// Poll-event hook for a probe fd; advances the probe state machine.
  void probe_io(std::size_t index, short revents);
  void finish_probe(std::size_t index, bool ok, std::string instance);
  void on_probe_success(std::size_t index, std::string instance);
  void on_probe_failure(std::size_t index);

  /// The epoch reset handle_replace pioneered, shared with instance-change
  /// recovery: sever ingest clients, fold sent_ into covered_, zero the
  /// covered prefix for users owned by `index`, clear per-epoch maps.
  /// Returns how many users' coverage was reset.
  std::uint64_t begin_new_epoch(std::size_t index);

  [[nodiscard]] int fanout_deadline_ms() const;

  [[nodiscard]] std::uint64_t covered_count(trace::UserId user) const;

  // Control-plane handlers (blocking fan-out over backend HTTP).
  void handle_readyz(int& status, std::string& content_type,
                     std::string& body);
  void handle_metrics(int& status, std::string& content_type,
                      std::string& body);
  void handle_summary(int& status, std::string& body);
  void handle_proxy_verdicts(std::string_view id_text, int& status,
                             std::string& body);
  /// Score lookup proxied to the ring owner (docs/DETECTION.md).
  void handle_proxy_score(std::string_view id_text, int& status,
                          std::string& body);
  /// /v1/suspects[?k=N]: fan out, merge the per-backend top-k lists into
  /// one ranking (score desc, user id asc; score bytes re-emitted
  /// verbatim), lead the body with "backends":N.
  void handle_suspects(std::string_view target, int& status,
                       std::string& body);
  void handle_checkpoint(int& status, std::string& body);
  void handle_replace(const std::string& name, const std::string& json,
                      int& status, std::string& body);
  void complete_drain();

  RouteConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Forwarder>> forwarders_;  ///< ring order
  std::vector<BackendHealth> health_;                   ///< parallel to ^
  std::optional<stream::NetFaultInjector> fault_injector_;
  std::optional<stream::Quarantine> quarantine_;

  serve::Fd ingest_listener_;
  serve::Fd http_listener_;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t http_port_ = 0;
  bool started_ = false;

  std::vector<std::unique_ptr<Conn>> conns_;
  std::size_t active_ingest_ = 0;
  std::size_t active_http_ = 0;
  bool paused_ = false;  ///< backpressure: ingest reads suspended

  /// Epoch accounting (see the header comment): `covered_` is the prefix
  /// already applied at the owner as of the last epoch change, `sent_`
  /// the records forwarded on top of it this epoch, `arrived_` the
  /// records received this epoch.
  std::unordered_map<trace::UserId, std::uint64_t> arrived_;
  std::unordered_map<trace::UserId, std::uint64_t> covered_;
  std::unordered_map<trace::UserId, std::uint64_t> sent_;

  /// Reused per-frame partition scratch: one event bucket per backend
  /// (ring order) plus the re-encode buffer — no allocation per frame
  /// once warm.
  std::vector<std::vector<stream::Event>> route_scratch_;
  std::string frame_scratch_;

  bool drain_requested_ = false;
  bool drain_done_ = false;
  std::string drain_body_;  ///< response for (late) drain callers
  int drain_status_ = 200;

  RouteStats stats_;
  std::unique_ptr<Metrics> metrics_;
};

}  // namespace geovalid::cluster
