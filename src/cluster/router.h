// The geovalid route daemon: a single-threaded poll() event loop that
// fronts N independent `geovalid serve` backends (docs/CLUSTER.md).
//
// Data plane: ingest clients speak either serve wire format, negotiated
// per connection from the first byte exactly as serve does (serve/wire.h).
// Text: the router extracts only the *routing key* from each line — the
// verb and the user id, the first two fields — picks the owning backend
// on a consistent-hash ring (cluster/ring.h), and forwards the raw bytes
// verbatim over a persistent per-backend TCP connection
// (cluster/forwarder.h). Full parsing and validation stay on the
// backends; that asymmetry is what lets one router outrun one serve
// process, whose ceiling is single-threaded record parsing. Lines whose
// routing key cannot be extracted dead-letter at the router through the
// usual quarantine path.
//
// Binary frames carry many users' records in one columnar unit, so
// verbatim forwarding cannot shard them: the router decodes each frame,
// runs the same per-record epoch accounting as the text path, partitions
// the surviving events by ring owner and re-encodes one sub-frame per
// backend (serve/wire.h append_binary_frame), queued on the forwarder's
// dedicated binary channel. Frames the codec rejects dead-letter here as
// `malformed_frame` with the same hex-prefix detail serve uses.
//
// Control plane: merged or fanned-out views over the backends' own
// endpoints — /healthz (router liveness), /readyz (every backend ready),
// GET /metrics (summed families plus the router's cluster_*), GET
// /v1/summary (user-weighted merge), /v1/users/{id}/verdicts (proxied to
// the ring owner), POST /admin/checkpoint and /admin/drain (fan-out,
// all-or-error), and POST /admin/backends/{name} — the rebalance hook
// that points a ring name at a replacement process.
//
// Exactly-once across rebalance: the router keeps per-user counts of
// records forwarded to each user's owner. Replacing a backend starts a
// new *epoch*: clients re-send their full traces, the router silently
// skips each healthy user's already-applied prefix, and the replacement
// process's own checkpoint-resume skip (serve/server.h) deduplicates the
// records its restored snapshot already covers. At-least-once delivery
// in, exactly-once application out — the cluster-level restatement of
// the serve resume contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/forwarder.h"
#include "cluster/ring.h"
#include "serve/net.h"
#include "serve/wire.h"
#include "stream/quarantine.h"

namespace geovalid::cluster {

struct RouteConfig {
  std::string host = "127.0.0.1";
  std::uint16_t ingest_port = 0;  ///< 0 = ephemeral
  std::uint16_t http_port = 0;    ///< 0 = ephemeral

  /// The backends to front. Names must be unique; they are the ring
  /// identity and must stay stable across process replacement.
  std::vector<BackendAddr> backends;
  std::size_t vnodes = 128;  ///< ring points per backend

  std::size_t max_connections = 1024;
  double idle_timeout_s = 60.0;
  std::size_t max_line_bytes = serve::kMaxLineBytes;

  /// Per-backend buffer high-water mark: when any backend's queue grows
  /// past this, the router stops reading from ingest clients (TCP
  /// backpressure) until every queue is back under half of it.
  std::size_t backend_buffer_bytes = 4 * 1024 * 1024;

  /// Dead-letter sink for lines rejected at the router.
  stream::QuarantineConfig quarantine;

  /// Register cluster_* metric families in the process registry.
  bool metrics = true;
};

enum class RouteExit : std::uint8_t {
  kStopped,  ///< stop flag (SIGTERM path): buffers flushed, backends left up
  kDrained,  ///< POST /admin/drain completed across every backend
};

struct RouteStats {
  RouteExit exit = RouteExit::kStopped;
  std::uint64_t records_forwarded = 0;  ///< routed to a healthy backend
  std::uint64_t records_replayed = 0;   ///< skipped as epoch-covered
  std::uint64_t records_malformed = 0;  ///< no routing key; dead-lettered
  std::uint64_t records_dropped = 0;    ///< owner was down; counted loss
  std::uint64_t http_requests = 0;
  std::uint64_t connections = 0;
};

class Router {
 public:
  /// Validates the backend list and builds the ring. Throws
  /// std::invalid_argument on an empty list or duplicate names.
  explicit Router(RouteConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connects every backend's forwarder (all must be reachable — a
  /// router with a known-dead backend should fail loudly at startup, not
  /// drop a shard silently; throws serve::NetError) and binds both
  /// listeners. Call once, before run().
  void start();

  [[nodiscard]] std::uint16_t ingest_port() const { return ingest_port_; }
  [[nodiscard]] std::uint16_t http_port() const { return http_port_; }

  /// The event loop: routes until `stop` becomes true (flushes and
  /// closes forwarder connections; backends keep running) or an
  /// /admin/drain completes across the cluster.
  RouteStats run(const std::atomic<bool>* stop = nullptr);

  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] const stream::Quarantine& quarantine() const {
    return *quarantine_;
  }

 private:
  struct Conn;
  struct Metrics;
  using Clock = std::chrono::steady_clock;

  void register_metrics();
  void accept_ready(serve::Fd& listener, bool is_http);
  void handle_read(Conn& c);
  void handle_ingest_eof(Conn& c);
  void process_ingest_line(std::string_view text, bool truncated);
  /// One decoded binary frame: per-record epoch accounting, then the
  /// surviving events are partitioned by ring owner, re-encoded as one
  /// sub-frame per backend and queued on the binary channels.
  void process_ingest_frame(serve::BinaryFrameDecoder::Frame& frame);
  /// One rejected binary frame: counted as a single malformed record and
  /// dead-lettered (hex-prefix detail) as `malformed_frame`.
  void process_frame_error(const serve::FrameError& error);
  void route_request(Conn& c);
  void flush_write(Conn& c);
  void sweep_idle(Clock::time_point now);
  void update_backend_gauges();

  /// Drives every pending forwarder buffer to the kernel, polling up to
  /// `deadline_ms`; a backend that cannot absorb its queue in time is
  /// marked down. Returns true when everything flushed.
  bool flush_all_blocking(int deadline_ms);

  [[nodiscard]] std::uint64_t covered_count(trace::UserId user) const;

  // Control-plane handlers (blocking fan-out over backend HTTP).
  void handle_readyz(int& status, std::string& content_type,
                     std::string& body);
  void handle_metrics(int& status, std::string& content_type,
                      std::string& body);
  void handle_summary(int& status, std::string& body);
  void handle_proxy_verdicts(std::string_view id_text, int& status,
                             std::string& body);
  void handle_checkpoint(int& status, std::string& body);
  void handle_replace(const std::string& name, const std::string& json,
                      int& status, std::string& body);
  void complete_drain();

  RouteConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Forwarder>> forwarders_;  ///< ring order
  std::optional<stream::Quarantine> quarantine_;

  serve::Fd ingest_listener_;
  serve::Fd http_listener_;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t http_port_ = 0;
  bool started_ = false;

  std::vector<std::unique_ptr<Conn>> conns_;
  std::size_t active_ingest_ = 0;
  std::size_t active_http_ = 0;
  bool paused_ = false;  ///< backpressure: ingest reads suspended

  /// Epoch accounting (see the header comment): `covered_` is the prefix
  /// already applied at the owner as of the last epoch change, `sent_`
  /// the records forwarded on top of it this epoch, `arrived_` the
  /// records received this epoch.
  std::unordered_map<trace::UserId, std::uint64_t> arrived_;
  std::unordered_map<trace::UserId, std::uint64_t> covered_;
  std::unordered_map<trace::UserId, std::uint64_t> sent_;

  /// Reused per-frame partition scratch: one event bucket per backend
  /// (ring order) plus the re-encode buffer — no allocation per frame
  /// once warm.
  std::vector<std::vector<stream::Event>> route_scratch_;
  std::string frame_scratch_;

  bool drain_requested_ = false;
  bool drain_done_ = false;
  std::string drain_body_;  ///< response for (late) drain callers
  int drain_status_ = 200;

  RouteStats stats_;
  std::unique_ptr<Metrics> metrics_;
};

}  // namespace geovalid::cluster
