#include "cluster/forwarder.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace geovalid::cluster {
namespace {

using Clock = std::chrono::steady_clock;

/// Coalescing cap for text spool entries: big enough to amortize the
/// per-entry overhead, small enough that one entry never dominates the
/// byte budget.
constexpr std::size_t kSpoolCoalesceBytes = 64 * 1024;

}  // namespace

const char* to_string(BackendState state) {
  switch (state) {
    case BackendState::kDown:
      return "down";
    case BackendState::kRecovering:
      return "recovering";
    case BackendState::kSuspect:
      return "suspect";
    case BackendState::kUp:
      return "up";
  }
  return "unknown";
}

bool Forwarder::connect() noexcept {
  try {
    fd_ = serve::tcp_connect_deadline(addr_.host, addr_.ingest_port,
                                      connect_timeout_ms_);
  } catch (const serve::NetError&) {
    fd_.reset();
    state_ = BackendState::kDown;
    return false;
  }
  if (ever_connected_) ++reconnects;
  ever_connected_ = true;
  // Not up yet: the router promotes once a probe passes and the replay
  // decision (drain vs. discard the spool) has been made.
  state_ = BackendState::kRecovering;
  return true;
}

double Forwarder::spool_age_seconds(Clock::time_point now) const {
  if (spool_.empty()) return 0.0;
  return std::chrono::duration<double>(now - spool_.front().queued_at)
      .count();
}

void Forwarder::spool_push(std::string bytes, std::uint64_t records,
                           bool frame) {
  spooled_total += records;
  spool_bytes_ += bytes.size();
  spool_records_ += records;
  if (!frame && !spool_.empty() && !spool_.back().frame &&
      spool_.back().bytes.size() < kSpoolCoalesceBytes) {
    spool_.back().bytes += bytes;
    spool_.back().records += records;
    return;
  }
  SpoolEntry entry;
  entry.bytes = std::move(bytes);
  entry.records = records;
  entry.frame = frame;
  entry.queued_at = Clock::now();
  spool_.push_back(std::move(entry));
}

void Forwarder::on_injected(const stream::NetFaultInjector::Triggered& t) {
  if (t.reset) inject_reset_ = true;
  if (t.drop) inject_drop_ = true;
  if (t.stall_millis > 0) {
    const Clock::time_point until =
        Clock::now() + std::chrono::milliseconds(t.stall_millis);
    if (until > stall_until_) stall_until_ = until;
  }
}

void Forwarder::enqueue(std::string_view line) {
  if (fault_injector_ != nullptr) {
    on_injected(fault_injector_->on_records(addr_.name, 1));
  }
  if (state_ != BackendState::kUp || !fd_.valid()) {
    std::string bytes;
    bytes.reserve(line.size() + 1);
    bytes.append(line.data(), line.size());
    bytes.push_back('\n');
    spool_push(std::move(bytes), 1, /*frame=*/false);
    return;
  }
  ++forwarded;
  buf_.append(line.data(), line.size());
  buf_.push_back('\n');
  const auto size = static_cast<std::uint32_t>(line.size() + 1);
  tpending_.push_back(Pending{size, size, 1});
}

bool Forwarder::ensure_binary_channel() noexcept {
  if (bfd_.valid()) return true;
  // Lazy second connection: the backend negotiates per connection from
  // the first byte, so binary frames need their own socket — the frame
  // magic 0xB1 the first flush sends is the negotiation.
  try {
    bfd_ = serve::tcp_connect_deadline(addr_.host, addr_.ingest_port,
                                       connect_timeout_ms_);
  } catch (const serve::NetError&) {
    bfd_.reset();
    return false;
  }
  return true;
}

void Forwarder::enqueue_frame(std::string_view frame, std::uint64_t records) {
  if (fault_injector_ != nullptr) {
    on_injected(fault_injector_->on_records(addr_.name, records));
  }
  if (state_ != BackendState::kUp || !fd_.valid()) {
    spool_push(std::string(frame), records, /*frame=*/true);
    return;
  }
  if (!ensure_binary_channel()) {
    // The backend accepts no new connections: treat it like any other
    // connection failure — spool the frame and start recovery.
    spool_push(std::string(frame), records, /*frame=*/true);
    sever();
    return;
  }
  forwarded += records;
  bbuf_.append(frame.data(), frame.size());
  const auto size = static_cast<std::uint32_t>(frame.size());
  bpending_.push_back(Pending{size, size, records});
}

/// Non-blocking send of one channel's pending bytes, crediting the
/// per-record accounting. Returns false on a fatal socket error
/// (EPIPE/ECONNRESET/anything unexpected) — the caller severs the whole
/// forwarder; a backend that lost one channel has lost the process
/// behind both.
bool Forwarder::flush_channel(serve::Fd& fd, std::string& buf,
                              std::size_t& off,
                              std::deque<Pending>& pending) {
  while (off < buf.size()) {
    const ssize_t n = ::send(fd.get(), buf.data() + off, buf.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      // Credit sent bytes against the oldest pending entries; an entry
      // stays until fully sent so salvage can re-queue it whole.
      std::size_t sent = static_cast<std::size_t>(n);
      while (sent > 0 && !pending.empty()) {
        Pending& p = pending.front();
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::size_t>(sent, p.left));
        p.left -= take;
        sent -= take;
        if (p.left == 0) pending.pop_front();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (pending.empty()) {
    buf.clear();
    off = 0;
  } else if (off > 256 * 1024) {
    // Compact only up to the first byte of the oldest pending entry: its
    // already-sent head must survive in the buffer for salvage.
    const std::size_t keep_from =
        off - (pending.front().size - pending.front().left);
    if (keep_from > 0) {
      buf.erase(0, keep_from);
      off -= keep_from;
    }
  }
  return true;
}

void Forwarder::flush() {
  if (!sending()) return;
  if (inject_reset_) {
    // Simulated ECONNRESET from `netreset=`: the next flush fails
    // abruptly, exactly as if the kernel reported the peer reset.
    inject_reset_ = false;
    sever();
    return;
  }
  if (inject_drop_) {
    // Simulated severed link from `netdrop=`: FIN both channels without
    // telling the forwarder. The router's normal peer-EOF detection (or
    // the next send's EPIPE) discovers it, exercising the passive path.
    inject_drop_ = false;
    if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
    if (bfd_.valid()) ::shutdown(bfd_.get(), SHUT_RDWR);
    return;
  }
  if (stall_until_ != Clock::time_point{} && Clock::now() < stall_until_) {
    // Simulated kernel stall from `netstall=`: behave as if every send
    // returned EAGAIN until the window passes.
    return;
  }
  if (!flush_channel(fd_, buf_, off_, tpending_)) {
    sever();
    return;
  }
  if (bfd_.valid() && boff_ < bbuf_.size()) {
    if (!flush_channel(bfd_, bbuf_, boff_, bpending_)) sever();
  }
}

void Forwarder::salvage_channel(std::string& buf, std::size_t& off,
                                std::deque<Pending>& pending, bool frame,
                                std::deque<SpoolEntry>& out) {
  if (!pending.empty()) {
    // The oldest entry may be partially sent; its whole bytes start at
    // off minus the sent head. Everything the kernel accepted before
    // that boundary was a complete record on a connection we are closing
    // in order, so it is the backend's; the partial entry's delivered
    // head dead-letters there as a truncated fragment, and the replayed
    // whole copy is applied exactly once.
    std::size_t pos = off - (pending.front().size - pending.front().left);
    if (frame) {
      for (const Pending& p : pending) {
        SpoolEntry entry;
        entry.bytes = buf.substr(pos, p.size);
        entry.records = p.records;
        entry.frame = true;
        entry.queued_at = Clock::now();
        out.push_back(std::move(entry));
        pos += p.size;
      }
    } else {
      SpoolEntry entry;
      entry.bytes = buf.substr(pos);
      for (const Pending& p : pending) entry.records += p.records;
      entry.frame = false;
      entry.queued_at = Clock::now();
      out.push_back(std::move(entry));
    }
  }
  buf.clear();
  off = 0;
  pending.clear();
}

void Forwarder::sever() {
  std::deque<SpoolEntry> salvaged;
  salvage_channel(buf_, off_, tpending_, /*frame=*/false, salvaged);
  salvage_channel(bbuf_, boff_, bpending_, /*frame=*/true, salvaged);
  // Salvaged bytes predate anything spooled while suspect: front of the
  // FIFO, original order preserved.
  for (auto it = salvaged.rbegin(); it != salvaged.rend(); ++it) {
    spool_bytes_ += it->bytes.size();
    spool_records_ += it->records;
    spooled_total += it->records;
    spool_.push_front(std::move(*it));
  }
  fd_.reset();
  bfd_.reset();
  state_ = BackendState::kDown;
}

bool Forwarder::drain_spool() {
  while (!spool_.empty()) {
    SpoolEntry& e = spool_.front();
    if (e.frame) {
      if (!ensure_binary_channel()) {
        sever();
        return false;
      }
      forwarded += e.records;
      bbuf_.append(e.bytes);
      const auto size = static_cast<std::uint32_t>(e.bytes.size());
      bpending_.push_back(
          Pending{size, size, static_cast<std::uint32_t>(e.records)});
    } else {
      // Re-establish per-record accounting: coalesced text splits back
      // into one pending entry per line, so a later salvage still lands
      // on record boundaries.
      forwarded += e.records;
      buf_.append(e.bytes);
      std::size_t start = 0;
      while (start < e.bytes.size()) {
        const char* nl = static_cast<const char*>(std::memchr(
            e.bytes.data() + start, '\n', e.bytes.size() - start));
        const std::size_t end =
            nl == nullptr ? e.bytes.size()
                          : static_cast<std::size_t>(nl - e.bytes.data()) + 1;
        const auto size = static_cast<std::uint32_t>(end - start);
        tpending_.push_back(Pending{size, size, 1});
        start = end;
      }
    }
    spool_bytes_ -= e.bytes.size();
    spool_records_ -= e.records;
    spool_.pop_front();
  }
  return true;
}

std::uint64_t Forwarder::discard_spool() {
  const std::uint64_t count = spool_records_;
  superseded += count;
  spool_.clear();
  spool_bytes_ = 0;
  spool_records_ = 0;
  return count;
}

void Forwarder::close() {
  // Deliberate teardown: whatever is still queued has no re-delivery
  // path from here, so the loss is counted, never silent.
  for (const Pending& p : tpending_) dropped += p.records;
  for (const Pending& p : bpending_) dropped += p.records;
  dropped += spool_records_;
  fd_.reset();
  bfd_.reset();
  buf_.clear();
  off_ = 0;
  tpending_.clear();
  bbuf_.clear();
  boff_ = 0;
  bpending_.clear();
  spool_.clear();
  spool_bytes_ = 0;
  spool_records_ = 0;
  state_ = BackendState::kDown;
}

bool Forwarder::replace(BackendAddr addr) noexcept {
  // The rebalance re-send supersedes everything queued for the old
  // process: discard without counting dropped.
  fd_.reset();
  bfd_.reset();
  for (const Pending& p : tpending_) superseded += p.records;
  for (const Pending& p : bpending_) superseded += p.records;
  buf_.clear();
  off_ = 0;
  tpending_.clear();
  bbuf_.clear();
  boff_ = 0;
  bpending_.clear();
  (void)discard_spool();
  state_ = BackendState::kDown;
  addr_ = std::move(addr);
  return connect();
}

}  // namespace geovalid::cluster
