#include "cluster/forwarder.h"

#include <sys/socket.h>

#include <cerrno>
#include <utility>

namespace geovalid::cluster {

bool Forwarder::connect() noexcept {
  try {
    fd_ = serve::tcp_connect(addr_.host, addr_.ingest_port);
    serve::set_nonblocking(fd_.get());
  } catch (const serve::NetError&) {
    fd_.reset();
    healthy_ = false;
    return false;
  }
  healthy_ = true;
  return true;
}

bool Forwarder::enqueue(std::string_view line) {
  if (!healthy_) {
    ++dropped;
    return false;
  }
  ++forwarded;
  buf_.append(line.data(), line.size());
  buf_.push_back('\n');
  return true;
}

void Forwarder::flush() {
  if (!healthy_) return;
  while (off_ < buf_.size()) {
    const ssize_t n = ::send(fd_.get(), buf_.data() + off_,
                             buf_.size() - off_, MSG_NOSIGNAL);
    if (n > 0) {
      off_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET (backend gone) and anything else: down. The
    // router counts the loss and surfaces it via cluster_* metrics; the
    // rebalance path recovers the shard.
    mark_down();
    return;
  }
  if (off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  } else if (off_ > 256 * 1024) {
    buf_.erase(0, off_);
    off_ = 0;
  }
}

void Forwarder::close() {
  fd_.reset();
  healthy_ = false;
  buf_.clear();
  off_ = 0;
}

void Forwarder::mark_down() {
  // Buffered bytes are whole records plus possibly a partial record the
  // kernel accepted half of; either way the backend connection is gone,
  // so everything still queued is lost. Count records conservatively by
  // newlines remaining in the buffer.
  for (std::size_t i = off_; i < buf_.size(); ++i) {
    if (buf_[i] == '\n') ++dropped;
  }
  close();
}

bool Forwarder::replace(BackendAddr addr) noexcept {
  close();
  addr_ = std::move(addr);
  return connect();
}

}  // namespace geovalid::cluster
