#include "cluster/forwarder.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace geovalid::cluster {

bool Forwarder::connect() noexcept {
  try {
    fd_ = serve::tcp_connect(addr_.host, addr_.ingest_port);
    serve::set_nonblocking(fd_.get());
  } catch (const serve::NetError&) {
    fd_.reset();
    healthy_ = false;
    return false;
  }
  healthy_ = true;
  return true;
}

bool Forwarder::enqueue(std::string_view line) {
  if (!healthy_) {
    ++dropped;
    return false;
  }
  ++forwarded;
  buf_.append(line.data(), line.size());
  buf_.push_back('\n');
  return true;
}

bool Forwarder::enqueue_frame(std::string_view frame, std::uint64_t records) {
  if (!healthy_) {
    dropped += records;
    return false;
  }
  if (!bfd_.valid()) {
    // Lazy second connection: the backend negotiates per connection from
    // the first byte, so binary frames need their own socket — the frame
    // magic 0xB1 the first flush sends is the negotiation.
    try {
      bfd_ = serve::tcp_connect(addr_.host, addr_.ingest_port);
      serve::set_nonblocking(bfd_.get());
    } catch (const serve::NetError&) {
      bfd_.reset();
      dropped += records;
      return false;
    }
  }
  forwarded += records;
  bbuf_.append(frame.data(), frame.size());
  bframes_.push_back(PendingFrame{frame.size(), records});
  return true;
}

/// Non-blocking send of one channel's pending bytes. Returns false on a
/// fatal socket error (EPIPE/ECONNRESET/anything unexpected) — the caller
/// marks the whole forwarder down; a backend that lost one channel has
/// lost the process behind both.
bool Forwarder::flush_channel(serve::Fd& fd, std::string& buf,
                              std::size_t& off) {
  while (off < buf.size()) {
    const ssize_t n = ::send(fd.get(), buf.data() + off, buf.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      if (&buf == &bbuf_) {
        // Credit sent bytes against the oldest pending frames, so
        // mark_down() knows which frames still have bytes at risk.
        std::size_t sent = static_cast<std::size_t>(n);
        while (sent > 0 && !bframes_.empty()) {
          PendingFrame& f = bframes_.front();
          const std::size_t take = std::min(sent, f.bytes_left);
          f.bytes_left -= take;
          sent -= take;
          if (f.bytes_left == 0) bframes_.pop_front();
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (off == buf.size()) {
    buf.clear();
    off = 0;
  } else if (off > 256 * 1024) {
    buf.erase(0, off);
    off = 0;
  }
  return true;
}

void Forwarder::flush() {
  if (!healthy_) return;
  if (!flush_channel(fd_, buf_, off_)) {
    // EPIPE/ECONNRESET (backend gone) and anything else: down. The
    // router counts the loss and surfaces it via cluster_* metrics; the
    // rebalance path recovers the shard.
    mark_down();
    return;
  }
  if (bfd_.valid() && boff_ < bbuf_.size()) {
    if (!flush_channel(bfd_, bbuf_, boff_)) mark_down();
  }
}

void Forwarder::close() {
  fd_.reset();
  bfd_.reset();
  healthy_ = false;
  buf_.clear();
  off_ = 0;
  bbuf_.clear();
  boff_ = 0;
  bframes_.clear();
}

void Forwarder::mark_down() {
  // Buffered bytes are whole records plus possibly a partial record the
  // kernel accepted half of; either way the backend connection is gone,
  // so everything still queued is lost. Count text records conservatively
  // by newlines remaining in the buffer; binary frames by their pending
  // accounting (a partially-sent frame loses all its records — the
  // backend dead-letters the half-frame as truncated).
  for (std::size_t i = off_; i < buf_.size(); ++i) {
    if (buf_[i] == '\n') ++dropped;
  }
  for (const PendingFrame& f : bframes_) {
    if (f.bytes_left > 0) dropped += f.records;
  }
  close();
}

bool Forwarder::replace(BackendAddr addr) noexcept {
  close();
  addr_ = std::move(addr);
  return connect();
}

}  // namespace geovalid::cluster
