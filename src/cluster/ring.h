// Consistent-hash ring: the cluster layer's one routing decision.
//
// `geovalid route` shards ingest across N independent `geovalid serve`
// backends by user id. The paper's validation pipeline is per-user
// separable (the property every equivalence test in this repo leans on),
// so the only cluster-wide invariant the router must maintain is "all of
// one user's records reach one backend, in order" — exactly what a hash
// ring gives us, with two extra properties a plain `user % N` lacks:
//
//   - Stability under membership change: adding or removing one backend
//     moves only ~1/N of the user population; `user % N` reshuffles
//     almost everything, which would force a full-cluster drain for any
//     scale-out.
//   - Stability under configuration reordering: ring points are hashed
//     from backend *names*, never list positions, so the same `--backend`
//     flags in any order produce the same assignment.
//
// Hashing is deliberately hand-rolled (FNV-1a + the splitmix64 finalizer)
// instead of std::hash: assignments must be identical across platforms,
// standard libraries and builds, because a router restart with the same
// backend names must route users to the backends that hold their state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/user.h"

namespace geovalid::cluster {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer with fixed,
/// platform-independent constants.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the bytes, then mixed: ring-point and name hashing.
[[nodiscard]] std::uint64_t hash_bytes(std::string_view bytes);

struct RingConfig {
  /// Ring points per backend. More points smooth the load split at the
  /// cost of a larger (still tiny) sorted array; 128 keeps the max/min
  /// load ratio under ~1.5 at 16 backends (tests/test_cluster_ring.cpp
  /// asserts the bound).
  std::size_t vnodes = 128;
};

/// Maps user ids onto named backends. Backends are identified by name —
/// the stable ring identity that survives a backend *process* being
/// replaced at a new address during a rebalance.
class HashRing {
 public:
  explicit HashRing(RingConfig config = {});

  /// Adds `name`'s vnodes to the ring. Throws std::invalid_argument on a
  /// duplicate or empty name.
  void add_backend(const std::string& name);

  /// Removes `name` and all its ring points. Throws std::invalid_argument
  /// when absent.
  void remove_backend(const std::string& name);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  /// Index (into names(), i.e. insertion order) of the backend owning
  /// `user`. Throws std::logic_error on an empty ring.
  [[nodiscard]] std::size_t owner_index(trace::UserId user) const;

  [[nodiscard]] const std::string& owner(trace::UserId user) const {
    return names_[owner_index(user)];
  }

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::size_t backend = 0;  ///< index into names_
  };

  void insert_points(const std::string& name, std::size_t index);

  RingConfig config_;
  std::vector<std::string> names_;
  std::vector<Point> points_;  ///< sorted by (hash, owner name)
};

}  // namespace geovalid::cluster
