#include "cluster/router.h"

#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <variant>

#include "cluster/aggregate.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/http.h"

namespace geovalid::cluster {
namespace {

using serve::Fd;
using serve::HttpRequest;
using serve::HttpRequestParser;
using serve::http_response;
using serve::NetError;

constexpr int kPollTimeoutMs = 100;
constexpr std::size_t kReadBudgetBytes = 256 * 1024;

/// Opportunistic flush threshold: a forwarder buffer past this tries the
/// socket immediately instead of waiting for the next POLLOUT round.
constexpr std::size_t kFlushChunkBytes = 64 * 1024;

/// Sanity cap on a /readyz probe response; anything bigger is a protocol
/// violation, not a slow header.
constexpr std::size_t kMaxProbeResponseBytes = 64 * 1024;

/// conn_of_pollfd sentinels (connection indices are always far below).
/// Each forwarder can contribute two pollfds: its text channel (tagged
/// from kForwarderBase) and its lazily-opened binary channel (tagged from
/// kForwarderBinBase); each in-flight health probe one more (tagged from
/// kProbeBase). All three are disjoint ranges.
constexpr std::size_t kIngestListener = SIZE_MAX;
constexpr std::size_t kHttpListener = SIZE_MAX - 1;
constexpr std::size_t kForwarderBase = SIZE_MAX / 2;
constexpr std::size_t kForwarderBinBase = SIZE_MAX / 4;
constexpr std::size_t kProbeBase = SIZE_MAX / 8;

/// Seconds-to-ms for the config's double-valued deadlines, clamped so a
/// tiny-but-positive value still polls.
int to_ms(double seconds) {
  return std::max(1, static_cast<int>(seconds * 1000.0));
}

/// Fully non-blocking connect start for the probe loop: returns an fd
/// whose connect is in flight (or already complete); invalid on
/// immediate failure. Never blocks — EINPROGRESS is the success path.
Fd probe_connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0) {
    return Fd();
  }
  Fd fd(::socket(res->ai_family,
                 res->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                 res->ai_protocol));
  if (fd.valid()) {
    if (::connect(fd.get(), res->ai_addr, res->ai_addrlen) < 0 &&
        errno != EINPROGRESS) {
      fd.reset();
    }
  }
  ::freeaddrinfo(res);
  return fd;
}

/// Minimal response scan for the probe state machine: HTTP status plus
/// the Geovalid-Instance header (serve stamps it on /readyz so the
/// router can tell a connection blip from a process restart).
bool parse_probe_response(const std::string& raw, int& status,
                          std::string& instance) {
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return false;
  status = 0;
  const char* begin = raw.data() + sp + 1;
  const auto [ptr, ec] = std::from_chars(begin, begin + 3, status);
  if (ec != std::errc{} || ptr != begin + 3) return false;
  std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) head_end = raw.size();
  const std::string_view head(raw.data(), head_end);
  static constexpr std::string_view kHeader = "geovalid-instance:";
  std::size_t line = head.find("\r\n");
  while (line != std::string_view::npos && line + 2 < head.size()) {
    const std::string_view rest = head.substr(line + 2);
    if (rest.size() > kHeader.size()) {
      bool match = true;
      for (std::size_t i = 0; i < kHeader.size(); ++i) {
        const char c = rest[i];
        const char lower =
            (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        if (lower != kHeader[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view value = rest.substr(kHeader.size());
        const std::size_t eol = value.find("\r\n");
        if (eol != std::string_view::npos) value = value.substr(0, eol);
        while (!value.empty() && value.front() == ' ') {
          value.remove_prefix(1);
        }
        while (!value.empty() && value.back() == ' ') {
          value.remove_suffix(1);
        }
        instance.assign(value);
        break;
      }
    }
    line = head.find("\r\n", line + 2);
  }
  return true;
}

/// The fixed route vocabulary of cluster_http_requests_total{route=...}.
constexpr const char* kRouteLabels[] = {
    "/healthz",          "/readyz",
    "/metrics",          "/v1/summary",
    "/v1/users/{id}/verdicts",
    "/v1/users/{id}/score",
    "/v1/suspects",
    "/admin/checkpoint", "/admin/drain",
    "/admin/backends/{name}",
    "other",
};

/// Routing key: verb + user id, the first two wire fields. Everything
/// after the second comma is the backend's business — this is the only
/// parsing the router does per record.
std::optional<trace::UserId> route_key(std::string_view line) {
  std::string_view rest;
  if (line.rfind("gps,", 0) == 0) {
    rest = line.substr(4);
  } else if (line.rfind("checkin,", 0) == 0) {
    rest = line.substr(8);
  } else {
    return std::nullopt;
  }
  const std::size_t comma = rest.find(',');
  if (comma == 0 || comma == std::string_view::npos) return std::nullopt;
  trace::UserId id = 0;
  const char* begin = rest.data();
  const auto [ptr, ec] = std::from_chars(begin, begin + comma, id);
  if (ec != std::errc{} || ptr != begin + comma) return std::nullopt;
  return id;
}

std::optional<std::string> json_string_field(std::string_view json,
                                             std::string_view key) {
  const std::string pattern = "\"" + std::string(key) + "\"";
  std::size_t p = json.find(pattern);
  if (p == std::string_view::npos) return std::nullopt;
  p = json.find(':', p + pattern.size());
  if (p == std::string_view::npos) return std::nullopt;
  ++p;
  while (p < json.size() && (json[p] == ' ' || json[p] == '\t')) ++p;
  if (p >= json.size() || json[p] != '"') return std::nullopt;
  ++p;
  std::string out;
  while (p < json.size() && json[p] != '"') {
    if (json[p] == '\\' && p + 1 < json.size()) ++p;
    out += json[p++];
  }
  if (p >= json.size()) return std::nullopt;
  return out;
}

void append_json_string_array(std::string& out,
                              const std::vector<std::string>& items) {
  out += '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += items[i];
    out += '"';
  }
  out += ']';
}

/// The bare number token after `"key":` in one flat JSON object — returned
/// verbatim, so the merged suspects body re-emits each backend's score
/// bytes untouched (byte-determinism without float round-tripping).
std::string_view json_number_token(std::string_view obj,
                                   std::string_view key) {
  const std::string pattern = "\"" + std::string(key) + "\":";
  std::size_t p = obj.find(pattern);
  if (p == std::string_view::npos) return {};
  p += pattern.size();
  std::size_t e = p;
  while (e < obj.size() && obj[e] != ',' && obj[e] != '}') ++e;
  return obj.substr(p, e - p);
}

/// One row of a backend's /v1/suspects answer, kept textual.
struct SuspectToken {
  trace::UserId user = 0;
  double score_value = 0.0;   ///< parsed copy, ordering only
  std::string score_text;     ///< verbatim backend token
  std::string checkins_text;  ///< verbatim backend token
};

/// Pulls the suspect rows out of one backend body
/// ({"k":K,"suspects":[{"user":U,"score":S,"checkins":C},...]}). Rows
/// that fail to parse are dropped — a malformed backend degrades the
/// merge, it does not poison it.
void extract_suspects(std::string_view body,
                      std::vector<SuspectToken>& out) {
  std::size_t p = body.find("\"suspects\":[");
  if (p == std::string_view::npos) return;
  p += 12;
  while (p < body.size() && body[p] != ']') {
    const std::size_t open = body.find('{', p);
    if (open == std::string_view::npos) return;
    const std::size_t close = body.find('}', open);
    if (close == std::string_view::npos) return;
    const std::string_view obj = body.substr(open, close - open + 1);
    SuspectToken token;
    const std::string_view user = json_number_token(obj, "user");
    const std::string_view score = json_number_token(obj, "score");
    const std::string_view checkins = json_number_token(obj, "checkins");
    const auto [uptr, uec] =
        std::from_chars(user.data(), user.data() + user.size(), token.user);
    const auto [sptr, sec] = std::from_chars(
        score.data(), score.data() + score.size(), token.score_value);
    if (!user.empty() && uec == std::errc{} &&
        uptr == user.data() + user.size() && !score.empty() &&
        sec == std::errc{} && !checkins.empty()) {
      token.score_text.assign(score);
      token.checkins_text.assign(checkins);
      out.push_back(std::move(token));
    }
    p = close + 1;
  }
}

}  // namespace

/// One accepted socket, either protocol — serve's Conn, verbatim
/// discipline: queued response bytes drip out under POLLOUT.
struct Router::Conn {
  /// Wire format of an ingest connection, decided by its first byte
  /// (serve/wire.h negotiation rule: 0xB1 = binary, anything else =
  /// text) and fixed for the connection's lifetime.
  enum class WireMode : std::uint8_t { kUndecided, kText, kBinary };

  Fd fd;
  bool is_http = false;
  bool dead = false;
  bool close_after_write = false;
  bool awaiting_drain = false;
  WireMode mode = WireMode::kUndecided;
  serve::LineDecoder decoder;
  serve::BinaryFrameDecoder frame_decoder;
  HttpRequestParser parser;
  std::string wbuf;
  std::size_t woff = 0;
  Clock::time_point last_activity;

  explicit Conn(Fd socket, bool http, std::size_t max_line_bytes)
      : fd(std::move(socket)), is_http(http), decoder(max_line_bytes) {
    last_activity = Clock::now();
  }
};

/// Cached cluster_* metric handles; per-backend vectors are ring-ordered
/// and stay valid across replace() because labels key on the stable name.
struct Router::Metrics {
  obs::Gauge* backends = nullptr;
  std::vector<obs::Gauge*> up;
  std::vector<obs::Gauge*> state;
  std::vector<obs::Gauge*> buffered;
  std::vector<obs::Gauge*> spool_bytes;
  std::vector<obs::Gauge*> spool_records;
  std::vector<obs::Gauge*> spool_age;
  std::vector<obs::Counter*> fwd_records;
  std::vector<obs::Counter*> fwd_dropped;
  std::vector<obs::Counter*> superseded;
  std::vector<obs::Counter*> reconnects;
  std::vector<obs::Counter*> probe_failures;
  std::vector<obs::Counter*> backend_errors;
  std::vector<std::uint64_t> dropped_seen;     ///< reconcile watermark
  std::vector<std::uint64_t> superseded_seen;  ///< reconcile watermark
  std::vector<std::uint64_t> reconnects_seen;  ///< reconcile watermark
  obs::Counter* rec_forwarded = nullptr;
  obs::Counter* rec_replayed = nullptr;
  obs::Counter* rec_malformed = nullptr;
  obs::Counter* pauses = nullptr;
  obs::Counter* conns_ingest = nullptr;
  obs::Counter* conns_http = nullptr;

  obs::Counter& http_requests(const std::string& route, int status) {
    return obs::registry().counter(
        "cluster_http_requests_total",
        "Router control-plane requests, by route and response status",
        {{"route", route}, {"status", std::to_string(status)}});
  }
};

Router::Router(RouteConfig config)
    : config_(std::move(config)), ring_(RingConfig{config_.vnodes}) {
  if (config_.backends.empty()) {
    throw std::invalid_argument("Router: at least one backend is required");
  }
  for (BackendAddr& b : config_.backends) {
    if (b.name.empty()) {
      b.name = b.host + ":" + std::to_string(b.ingest_port);
    }
    ring_.add_backend(b.name);  // rejects duplicates
    forwarders_.push_back(std::make_unique<Forwarder>(b));
  }
  route_scratch_.resize(forwarders_.size());
  health_.resize(forwarders_.size());
  if (!config_.net_faults.empty()) {
    fault_injector_.emplace(config_.net_faults);
  }
  for (const auto& f : forwarders_) {
    if (fault_injector_) f->set_fault_injector(&*fault_injector_);
    f->set_connect_timeout_ms(to_ms(config_.probe_timeout_s));
  }
  quarantine_.emplace(config_.quarantine);
  if (config_.metrics) register_metrics();
}

Router::~Router() = default;

void Router::register_metrics() {
  obs::Registry& r = obs::registry();
  metrics_ = std::make_unique<Metrics>();
  Metrics& m = *metrics_;
  m.backends = &r.gauge("cluster_backends",
                        "Backends configured on the hash ring");
  m.backends->set(static_cast<std::int64_t>(forwarders_.size()));
  for (const auto& f : forwarders_) {
    const std::string& name = f->addr().name;
    m.up.push_back(&r.gauge(
        "cluster_backend_up",
        "Forwarder connection state per backend (1 up, 0 down)",
        {{"backend", name}}));
    m.state.push_back(&r.gauge(
        "cluster_backend_state",
        "Health state machine per backend (0 down, 1 recovering, "
        "2 suspect, 3 up)",
        {{"backend", name}}));
    m.buffered.push_back(&r.gauge(
        "cluster_backend_buffered_bytes",
        "Bytes queued for a backend, waiting on its ingest socket",
        {{"backend", name}}));
    m.spool_bytes.push_back(&r.gauge(
        "cluster_spool_bytes",
        "Bytes spooled for a backend that is not up",
        {{"backend", name}}));
    m.spool_records.push_back(&r.gauge(
        "cluster_spool_records",
        "Records spooled for a backend that is not up",
        {{"backend", name}}));
    m.spool_age.push_back(&r.gauge(
        "cluster_spool_age_seconds",
        "Age of the oldest spooled entry per backend (0 when empty)",
        {{"backend", name}}));
    m.fwd_records.push_back(&r.counter(
        "cluster_forward_records_total",
        "Records forwarded to each backend", {{"backend", name}}));
    m.fwd_dropped.push_back(&r.counter(
        "cluster_forward_dropped_total",
        "Records lost at deliberate teardown with the backend still "
        "unable to absorb them (the only counted-loss path; spool "
        "overflow backpressures instead)",
        {{"backend", name}}));
    m.superseded.push_back(&r.counter(
        "cluster_spool_superseded_total",
        "Spooled records discarded because a backend restart made the "
        "client re-send authoritative (re-delivered, not lost)",
        {{"backend", name}}));
    m.reconnects.push_back(&r.counter(
        "cluster_reconnects_total",
        "Successful forwarder reconnects after a severed connection",
        {{"backend", name}}));
    m.probe_failures.push_back(&r.counter(
        "cluster_probe_failures_total",
        "Health probes that failed (connect/read deadline, non-200, or "
        "malformed response)",
        {{"backend", name}}));
    m.backend_errors.push_back(&r.counter(
        "cluster_backend_errors_total",
        "Failed control-plane calls to a backend (scrapes, fan-outs, "
        "proxies)",
        {{"backend", name}}));
    m.dropped_seen.push_back(0);
    m.superseded_seen.push_back(0);
    m.reconnects_seen.push_back(0);
  }
  static constexpr std::string_view kRecordHelp =
      "Ingest records seen by the router, by outcome: forwarded to the "
      "owning backend, replayed (epoch-covered prefix of a client "
      "re-send), malformed (no routing key; dead-lettered)";
  m.rec_forwarded = &r.counter("cluster_ingest_records_total", kRecordHelp,
                               {{"result", "forwarded"}});
  m.rec_replayed = &r.counter("cluster_ingest_records_total", kRecordHelp,
                              {{"result", "replayed"}});
  m.rec_malformed = &r.counter("cluster_ingest_records_total", kRecordHelp,
                               {{"result", "malformed"}});
  m.pauses = &r.counter(
      "cluster_backpressure_pauses_total",
      "Times ingest reads were suspended because a backend buffer "
      "crossed the high-water mark");
  static constexpr std::string_view kConnHelp =
      "Connections accepted by the router, by listener kind";
  m.conns_ingest = &r.counter("cluster_connections_total", kConnHelp,
                              {{"kind", "ingest"}});
  m.conns_http = &r.counter("cluster_connections_total", kConnHelp,
                            {{"kind", "http"}});
  for (const char* route : kRouteLabels) m.http_requests(route, 200);
}

void Router::start() {
  if (started_) throw std::logic_error("Router::start called twice");
  for (const auto& f : forwarders_) {
    if (!f->connect()) {
      throw NetError("route: backend '" + f->addr().name +
                     "' unreachable at " + f->addr().host + ":" +
                     std::to_string(f->addr().ingest_port));
    }
  }
  // Learn each backend's instance id synchronously (one deadline-bounded
  // probe per backend) so a ready backend is up before the first ingest
  // byte, and the very first asynchronous probe can already distinguish a
  // restart from a blip.
  const Clock::time_point now = Clock::now();
  const int timeout_ms = to_ms(config_.probe_timeout_s);
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    Forwarder& f = *forwarders_[i];
    BackendHealth& h = health_[i];
    try {
      const serve::HttpResponse resp = serve::http_get_deadline(
          f.addr().host, f.addr().http_port, "/readyz", timeout_ms);
      if (resp.status == 200) {
        f.set_state(BackendState::kUp);
        h.instance = resp.header("Geovalid-Instance");
      }
    } catch (const NetError&) {
      // Not ready yet: stays recovering; the probe loop promotes it.
    }
    h.next_probe_at =
        now + std::chrono::milliseconds(to_ms(config_.probe_interval_s));
  }
  ingest_listener_ = serve::tcp_listen(config_.host, config_.ingest_port);
  ingest_port_ = serve::local_port(ingest_listener_.get());
  http_listener_ = serve::tcp_listen(config_.host, config_.http_port);
  http_port_ = serve::local_port(http_listener_.get());
  started_ = true;
}

std::uint64_t Router::covered_count(trace::UserId user) const {
  const auto it = covered_.find(user);
  return it == covered_.end() ? 0 : it->second;
}

void Router::accept_ready(Fd& listener, bool is_http) {
  while (conns_.size() < config_.max_connections) {
    const int cfd = ::accept4(listener.get(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    conns_.push_back(std::make_unique<Conn>(Fd(cfd), is_http,
                                            config_.max_line_bytes));
    ++stats_.connections;
    if (is_http) {
      ++active_http_;
      if (metrics_) metrics_->conns_http->inc();
    } else {
      ++active_ingest_;
      if (metrics_) metrics_->conns_ingest->inc();
    }
  }
}

void Router::process_ingest_line(std::string_view text, bool truncated) {
  if (truncated) {
    ++stats_.records_malformed;
    if (metrics_) metrics_->rec_malformed->inc();
    quarantine_->record_raw(text, stream::QuarantineReason::kMalformedLine);
    return;
  }
  if (text.empty()) return;  // blank keepalive line
  const std::optional<trace::UserId> user = route_key(text);
  if (!user) {
    ++stats_.records_malformed;
    if (metrics_) metrics_->rec_malformed->inc();
    quarantine_->record_raw(text, stream::QuarantineReason::kMalformedLine);
    return;
  }
  const std::uint64_t arrived = ++arrived_[*user];
  if (arrived <= covered_count(*user)) {
    // Epoch-covered prefix of a full re-send after a rebalance: the
    // owning backend already applied it. This skip is what keeps healthy
    // backends from double-applying while a replaced one catches up.
    ++stats_.records_replayed;
    if (metrics_) metrics_->rec_replayed->inc();
    return;
  }
  const std::size_t owner = ring_.owner_index(*user);
  Forwarder& f = *forwarders_[owner];
  // enqueue() cannot lose the record: a not-up owner spools it (bounded
  // by the backpressure check in run()) until recovery settles replay.
  f.enqueue(text);
  ++sent_[*user];
  ++stats_.records_forwarded;
  if (metrics_) {
    metrics_->rec_forwarded->inc();
    metrics_->fwd_records[owner]->inc();
  }
  if (f.buffered() >= kFlushChunkBytes) f.flush();
}

void Router::process_ingest_frame(serve::BinaryFrameDecoder::Frame& frame) {
  // Same per-record epoch discipline as the text path — the frame is just
  // a denser envelope. Events that survive the replay skip are bucketed
  // by ring owner; each touched backend then gets exactly one re-encoded
  // sub-frame on its binary channel.
  for (auto& bucket : route_scratch_) bucket.clear();
  for (const stream::Event& e : frame.events) {
    const std::uint64_t arrived = ++arrived_[e.user];
    if (arrived <= covered_count(e.user)) {
      ++stats_.records_replayed;
      if (metrics_) metrics_->rec_replayed->inc();
      continue;
    }
    route_scratch_[ring_.owner_index(e.user)].push_back(e);
  }
  for (std::size_t owner = 0; owner < route_scratch_.size(); ++owner) {
    const std::vector<stream::Event>& bucket = route_scratch_[owner];
    if (bucket.empty()) continue;
    frame_scratch_.clear();
    serve::append_binary_frame(frame_scratch_, bucket);
    Forwarder& f = *forwarders_[owner];
    f.enqueue_frame(frame_scratch_, bucket.size());
    for (const stream::Event& e : bucket) ++sent_[e.user];
    stats_.records_forwarded += bucket.size();
    if (metrics_) {
      metrics_->rec_forwarded->inc(bucket.size());
      metrics_->fwd_records[owner]->inc(bucket.size());
    }
    if (f.buffered() >= kFlushChunkBytes) f.flush();
  }
}

void Router::process_frame_error(const serve::FrameError& error) {
  // One rejected frame = one malformed ingest record: its claimed record
  // count is exactly what cannot be trusted.
  ++stats_.records_malformed;
  if (metrics_) metrics_->rec_malformed->inc();
  quarantine_->record_raw(error.detail,
                          stream::QuarantineReason::kMalformedFrame);
}

void Router::handle_ingest_eof(Conn& c) {
  if (c.mode == Conn::WireMode::kBinary) {
    if (const auto err = c.frame_decoder.finish()) {
      process_frame_error(*err);
    }
  } else if (const auto fragment = c.decoder.finish()) {
    process_ingest_line(fragment->text, true);
  }
  c.dead = true;
}

void Router::handle_read(Conn& c) {
  char buf[65536];
  std::size_t budget = kReadBudgetBytes;
  while (budget > 0 && !c.dead) {
    const ssize_t n =
        ::recv(c.fd.get(), buf, std::min(sizeof(buf), budget), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      c.dead = true;
      return;
    }
    if (n == 0) {
      if (c.is_http) {
        c.dead = true;
      } else {
        handle_ingest_eof(c);
      }
      return;
    }
    budget -= static_cast<std::size_t>(n);
    c.last_activity = Clock::now();
    const std::string_view chunk(buf, static_cast<std::size_t>(n));
    if (c.is_http) {
      const auto state = c.parser.consume(chunk);
      if (state == HttpRequestParser::State::kDone) {
        route_request(c);
        return;
      }
      if (state == HttpRequestParser::State::kError) {
        ++stats_.http_requests;
        if (metrics_) {
          metrics_->http_requests("other", c.parser.error_status()).inc();
        }
        c.wbuf += http_response(c.parser.error_status(), "text/plain",
                                c.parser.error() + "\n");
        c.close_after_write = true;
        flush_write(c);
        return;
      }
    } else {
      if (c.mode == Conn::WireMode::kUndecided) {
        // serve/wire.h negotiation: the first byte of the connection
        // picks the format for its lifetime. 0xB1 cannot start a text
        // record, so the dispatch is unambiguous.
        c.mode = (static_cast<unsigned char>(chunk.front()) ==
                  serve::kFrameMagic0)
                     ? Conn::WireMode::kBinary
                     : Conn::WireMode::kText;
      }
      if (c.mode == Conn::WireMode::kBinary) {
        c.frame_decoder.feed(chunk);
        while (auto result = c.frame_decoder.next()) {
          if (auto* frame =
                  std::get_if<serve::BinaryFrameDecoder::Frame>(&*result)) {
            process_ingest_frame(*frame);
          } else {
            process_frame_error(std::get<serve::FrameError>(*result));
          }
        }
      } else {
        c.decoder.feed(chunk);
        while (auto line = c.decoder.next()) {
          process_ingest_line(line->text, line->truncated);
        }
      }
    }
  }
}

void Router::handle_readyz(int& status, std::string& content_type,
                           std::string& body) {
  // Per-backend verdict: the probe-driven state machine first (a backend
  // the router cannot forward to is not ready, whatever its own /readyz
  // says), then a live deadline-bounded probe for up backends.
  std::string not_ready;
  std::size_t count = 0;
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    const Forwarder& f = *forwarders_[i];
    std::string why;
    if (f.state() != BackendState::kUp) {
      why = to_string(f.state());
    } else {
      try {
        if (serve::http_get_deadline(f.addr().host, f.addr().http_port,
                                     "/readyz",
                                     to_ms(config_.probe_timeout_s))
                .status != 200) {
          why = "not_ready";
        }
      } catch (const NetError&) {
        why = "unreachable";
        if (metrics_) metrics_->backend_errors[i]->inc();
      }
    }
    if (why.empty()) continue;
    if (count++ > 0) not_ready += ',';
    not_ready += "{\"name\":\"" + f.addr().name + "\",\"state\":\"" + why +
                 "\"}";
  }
  if (count == 0) {
    status = 200;
    content_type = "text/plain";
    body = "ready\n";
  } else {
    status = 503;
    body = "{\"not_ready\":[" + not_ready + "]}";
  }
}

void Router::handle_metrics(int& status, std::string& content_type,
                            std::string& body) {
  update_backend_gauges();
  std::vector<std::string> texts;
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    const BackendAddr& addr = forwarders_[i]->addr();
    try {
      serve::HttpResponse resp = serve::http_get_deadline(
          addr.host, addr.http_port, "/metrics", fanout_deadline_ms());
      if (resp.status == 200) {
        texts.push_back(strip_prometheus(resp.body, "cluster_"));
      } else if (metrics_) {
        metrics_->backend_errors[i]->inc();
      }
    } catch (const NetError&) {
      // Degraded scrape: the missing backend is visible through the
      // router's own cluster_backend_state gauge, so a partial merge is
      // still truthful.
      if (metrics_) metrics_->backend_errors[i]->inc();
    }
  }
  // Only the router's own cluster_* families join the merge: in-process
  // deployments (tests, bench) share one registry with the backends, and
  // re-adding their serve_* families here would double-count them.
  texts.push_back(filter_prometheus(obs::to_prometheus(obs::registry()),
                                    "cluster_"));
  status = 200;
  content_type = std::string(obs::kPrometheusContentType);
  body = merge_prometheus(texts);
}

void Router::handle_summary(int& status, std::string& body) {
  std::vector<std::string> bodies;
  std::vector<std::string> failed;
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    const BackendAddr& addr = forwarders_[i]->addr();
    try {
      serve::HttpResponse resp = serve::http_get_deadline(
          addr.host, addr.http_port, "/v1/summary", fanout_deadline_ms());
      if (resp.status == 200) {
        bodies.push_back(std::move(resp.body));
      } else {
        failed.push_back(addr.name);
      }
    } catch (const NetError&) {
      failed.push_back(addr.name);
      if (metrics_) metrics_->backend_errors[i]->inc();
    }
  }
  if (bodies.empty()) {
    // Nothing to merge: the whole cluster is unreachable, error out.
    status = 502;
    body = "{\"error\":\"summary fan-out failed\",\"failed\":";
    append_json_string_array(body, failed);
    body += "}";
    return;
  }
  status = 200;
  body = merge_summaries(bodies);
  if (!failed.empty()) {
    // Partial sum: a partially-down cluster degrades instead of erroring,
    // and the annotation keeps the understatement explicit.
    std::string annotation = "\"degraded\":";
    append_json_string_array(annotation, failed);
    annotation += ',';
    body.insert(1, annotation);
  }
}

void Router::handle_proxy_verdicts(std::string_view id_text, int& status,
                                   std::string& body) {
  trace::UserId id = 0;
  const auto [ptr, ec] =
      std::from_chars(id_text.data(), id_text.data() + id_text.size(), id);
  if (id_text.empty() || ec != std::errc{} ||
      ptr != id_text.data() + id_text.size()) {
    status = 400;
    body = "{\"error\":\"bad user id\"}";
    return;
  }
  const std::size_t owner = ring_.owner_index(id);
  const BackendAddr& addr = forwarders_[owner]->addr();
  try {
    serve::HttpResponse resp = serve::http_get_deadline(
        addr.host, addr.http_port,
        "/v1/users/" + std::to_string(id) + "/verdicts",
        fanout_deadline_ms());
    status = resp.status;
    body = std::move(resp.body);
  } catch (const NetError&) {
    if (metrics_) metrics_->backend_errors[owner]->inc();
    status = 502;
    body = "{\"error\":\"backend unreachable\",\"backend\":\"" + addr.name +
           "\"}";
  }
}

void Router::handle_proxy_score(std::string_view id_text, int& status,
                                std::string& body) {
  trace::UserId id = 0;
  const auto [ptr, ec] =
      std::from_chars(id_text.data(), id_text.data() + id_text.size(), id);
  if (id_text.empty() || ec != std::errc{} ||
      ptr != id_text.data() + id_text.size()) {
    status = 400;
    body = "{\"error\":\"bad user id\"}";
    return;
  }
  // The ring owner holds every record of this user, so its answer — score,
  // 404 for an unknown user, 409 without a model — is the cluster's.
  const std::size_t owner = ring_.owner_index(id);
  const BackendAddr& addr = forwarders_[owner]->addr();
  try {
    serve::HttpResponse resp = serve::http_get_deadline(
        addr.host, addr.http_port,
        "/v1/users/" + std::to_string(id) + "/score", fanout_deadline_ms());
    status = resp.status;
    body = std::move(resp.body);
  } catch (const NetError&) {
    if (metrics_) metrics_->backend_errors[owner]->inc();
    status = 502;
    body = "{\"error\":\"backend unreachable\",\"backend\":\"" + addr.name +
           "\"}";
  }
}

void Router::handle_suspects(std::string_view target, int& status,
                             std::string& body) {
  std::size_t k = 10;
  if (target != "/v1/suspects") {
    const std::string_view k_text = target.substr(15);
    const auto [ptr, ec] =
        std::from_chars(k_text.data(), k_text.data() + k_text.size(), k);
    if (k_text.empty() || ec != std::errc{} ||
        ptr != k_text.data() + k_text.size()) {
      status = 400;
      body = "{\"error\":\"bad k\"}";
      return;
    }
  }
  // Every backend's top-k is a superset of its contribution to the
  // cluster top-k (users never span backends), so fan out the same k and
  // re-rank the union with the backends' own total order.
  const std::string path = "/v1/suspects?k=" + std::to_string(k);
  std::vector<SuspectToken> merged;
  std::vector<std::string> failed;
  std::size_t answered = 0;
  bool saw_no_model = false;
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    const BackendAddr& addr = forwarders_[i]->addr();
    try {
      serve::HttpResponse resp = serve::http_get_deadline(
          addr.host, addr.http_port, path, fanout_deadline_ms());
      if (resp.status == 200) {
        ++answered;
        extract_suspects(resp.body, merged);
      } else {
        if (resp.status == 409) saw_no_model = true;
        failed.push_back(addr.name);
      }
    } catch (const NetError&) {
      failed.push_back(addr.name);
      if (metrics_) metrics_->backend_errors[i]->inc();
    }
  }
  if (answered == 0) {
    if (saw_no_model) {
      // Uniform config case: the cluster serves without a model.
      status = 409;
      body = "{\"error\":\"serving without a model\"}";
      return;
    }
    status = 502;
    body = "{\"error\":\"suspects fan-out failed\",\"failed\":";
    append_json_string_array(body, failed);
    body += "}";
    return;
  }
  std::sort(merged.begin(), merged.end(),
            [](const SuspectToken& a, const SuspectToken& b) {
              if (a.score_value != b.score_value) {
                return a.score_value > b.score_value;
              }
              return a.user < b.user;
            });
  if (merged.size() > k) merged.resize(k);
  status = 200;
  body = "{\"backends\":" + std::to_string(answered);
  if (!failed.empty()) {
    body += ",\"degraded\":";
    append_json_string_array(body, failed);
  }
  body += ",\"k\":" + std::to_string(k) + ",\"suspects\":[";
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"user\":" + std::to_string(merged[i].user) + ",\"score\":" +
            merged[i].score_text + ",\"checkins\":" +
            merged[i].checkins_text + "}";
  }
  body += "]}";
}

void Router::handle_checkpoint(int& status, std::string& body) {
  // Buffered records must reach the backends first, or the fanned-out
  // checkpoints would not cover everything the router has accepted.
  flush_all_blocking(fanout_deadline_ms());
  std::vector<std::string> failed;
  std::string ok_entries;
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    const Forwarder& f = *forwarders_[i];
    if (!f.sending() || f.spool_records() > 0) {
      // Down, flush-expired, or records still spooled: its checkpoint
      // could not cover the shard.
      failed.push_back(f.addr().name);
      continue;
    }
    try {
      serve::HttpResponse resp = serve::http_post_deadline(
          f.addr().host, f.addr().http_port, "/admin/checkpoint",
          fanout_deadline_ms());
      if (resp.status == 200) {
        if (!ok_entries.empty()) ok_entries += ',';
        ok_entries += "{\"name\":\"" + f.addr().name +
                      "\",\"response\":" + resp.body + "}";
      } else {
        failed.push_back(f.addr().name);
      }
    } catch (const NetError&) {
      failed.push_back(f.addr().name);
      if (metrics_) metrics_->backend_errors[i]->inc();
    }
  }
  if (!failed.empty()) {
    status = 502;
    body = "{\"error\":\"checkpoint fan-out failed\",\"failed\":";
    append_json_string_array(body, failed);
    body += "}";
    return;
  }
  status = 200;
  body = "{\"status\":\"ok\",\"backends\":[" + ok_entries + "]}";
}

void Router::handle_replace(const std::string& name,
                            const std::string& json, int& status,
                            std::string& body) {
  std::size_t index = forwarders_.size();
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    if (forwarders_[i]->addr().name == name) {
      index = i;
      break;
    }
  }
  if (index == forwarders_.size()) {
    status = 404;
    body = "{\"error\":\"unknown backend\"}";
    return;
  }

  double ingest = 0.0;
  double http = 0.0;
  try {
    for (const auto& [path, value] : flatten_json_numbers(json)) {
      if (path == "ingest_port") ingest = value;
      if (path == "http_port") http = value;
    }
  } catch (const std::invalid_argument&) {
    status = 400;
    body = "{\"error\":\"malformed body\"}";
    return;
  }
  if (ingest < 1.0 || ingest > 65535.0 || http < 1.0 || http > 65535.0) {
    status = 400;
    body =
        "{\"error\":\"body must carry ingest_port and http_port "
        "(1-65535)\"}";
    return;
  }
  BackendAddr addr;
  addr.name = name;
  addr.host = json_string_field(json, "host")
                  .value_or(forwarders_[index]->addr().host);
  addr.ingest_port = static_cast<std::uint16_t>(ingest);
  addr.http_port = static_cast<std::uint16_t>(http);

  if (!forwarders_[index]->replace(addr)) {
    status = 502;
    body = "{\"error\":\"replacement unreachable\"}";
    return;
  }

  const std::uint64_t reset_users = begin_new_epoch(index);

  // Fresh health episode for the replacement process: forget the old
  // instance and probe immediately, so the promotion to up (and the
  // spool drain that comes with it) happens within one loop iteration.
  BackendHealth& h = health_[index];
  h.instance.clear();
  h.consecutive_failures = 0;
  h.reconnect_attempts = 0;
  h.phase = BackendHealth::ProbePhase::kIdle;
  h.probe_fd.reset();
  h.next_probe_at = Clock::now();

  status = 200;
  body = "{\"status\":\"replaced\",\"backend\":\"" + name +
         "\",\"users_reset\":" + std::to_string(reset_users) + "}";
}

std::uint64_t Router::begin_new_epoch(std::size_t index) {
  // New epoch. Everything forwarded so far is folded into the covered
  // prefix for users on healthy backends; users owned by backend `index`
  // reset to zero — its process's own checkpoint-resume skip deduplicates
  // whatever its restored snapshot already covers. Clients must now
  // re-send their full traces (docs/CLUSTER.md runbook).
  //
  // Sever every ingest connection first: bytes still queued on them
  // (kernel buffers, half-decoded lines or frames) are deliveries of the
  // epoch being invalidated. Interpreting them under the cleared arrival
  // table would re-forward an arbitrary mid-trace suffix as if it were a
  // fresh prefix and corrupt the resume skip — the exact at-least-once
  // hole the re-send protocol exists to close.
  for (const auto& conn : conns_) {
    if (!conn->is_http) conn->dead = true;
  }
  for (const auto& [user, sent] : sent_) covered_[user] += sent;
  std::uint64_t reset_users = 0;
  for (auto& [user, cov] : covered_) {
    if (ring_.owner_index(user) == index) {
      cov = 0;
      ++reset_users;
    }
  }
  sent_.clear();
  arrived_.clear();
  return reset_users;
}

int Router::fanout_deadline_ms() const {
  return to_ms(config_.fanout_deadline_s);
}

void Router::check_health_timers(Clock::time_point now) {
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    BackendHealth& h = health_[i];
    Forwarder& f = *forwarders_[i];
    if (h.phase != BackendHealth::ProbePhase::kIdle &&
        now >= h.probe_deadline) {
      finish_probe(i, /*ok=*/false, {});
    }
    if (h.phase == BackendHealth::ProbePhase::kIdle &&
        now >= h.next_probe_at) {
      start_probe(i, now);
    }
    if (!f.connected() && !drain_requested_ && now >= h.next_reconnect_at) {
      if (f.connect()) {
        // Probe immediately: the instance comparison decides whether the
        // spool drains (same process) or a new epoch starts (restart).
        h.next_probe_at = now;
      } else {
        const std::uint32_t delay = stream::backoff_with_jitter(
            config_.reconnect_backoff_ms, config_.reconnect_backoff_cap_ms,
            h.reconnect_attempts, config_.net_faults.seed, i);
        ++h.reconnect_attempts;
        h.next_reconnect_at = now + std::chrono::milliseconds(delay);
      }
    }
  }
}

void Router::start_probe(std::size_t index, Clock::time_point now) {
  BackendHealth& h = health_[index];
  const BackendAddr& addr = forwarders_[index]->addr();
  // Interval runs probe-start to probe-start, independent of outcome.
  h.next_probe_at =
      now + std::chrono::milliseconds(to_ms(config_.probe_interval_s));
  h.probe_deadline =
      now + std::chrono::milliseconds(to_ms(config_.probe_timeout_s));
  h.probe_in.clear();
  h.probe_off = 0;
  h.probe_out = "GET /readyz HTTP/1.1\r\nHost: " + addr.host +
                "\r\nConnection: close\r\n\r\n";
  h.probe_fd = probe_connect(addr.host, addr.http_port);
  if (!h.probe_fd.valid()) {
    h.phase = BackendHealth::ProbePhase::kIdle;
    on_probe_failure(index);
    return;
  }
  h.phase = BackendHealth::ProbePhase::kConnecting;
}

void Router::probe_io(std::size_t index, short revents) {
  BackendHealth& h = health_[index];
  if (h.phase == BackendHealth::ProbePhase::kIdle || !h.probe_fd.valid()) {
    return;
  }
  if ((revents & (POLLERR | POLLNVAL)) != 0) {
    finish_probe(index, /*ok=*/false, {});
    return;
  }
  if (h.phase == BackendHealth::ProbePhase::kConnecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(h.probe_fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) <
            0 ||
        err != 0) {
      finish_probe(index, /*ok=*/false, {});
      return;
    }
    h.phase = BackendHealth::ProbePhase::kSending;
  }
  if (h.phase == BackendHealth::ProbePhase::kSending) {
    while (h.probe_off < h.probe_out.size()) {
      const ssize_t n = ::send(h.probe_fd.get(),
                               h.probe_out.data() + h.probe_off,
                               h.probe_out.size() - h.probe_off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        h.probe_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      finish_probe(index, /*ok=*/false, {});
      return;
    }
    h.phase = BackendHealth::ProbePhase::kReading;
  }
  if (h.phase == BackendHealth::ProbePhase::kReading) {
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(h.probe_fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        h.probe_in.append(buf, static_cast<std::size_t>(n));
        if (h.probe_in.size() > kMaxProbeResponseBytes) {
          finish_probe(index, /*ok=*/false, {});
          return;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n == 0) {
        int status = 0;
        std::string instance;
        const bool ok = parse_probe_response(h.probe_in, status, instance) &&
                        status == 200;
        finish_probe(index, ok, std::move(instance));
        return;
      }
      finish_probe(index, /*ok=*/false, {});
      return;
    }
  }
}

void Router::finish_probe(std::size_t index, bool ok,
                          std::string instance) {
  BackendHealth& h = health_[index];
  h.phase = BackendHealth::ProbePhase::kIdle;
  h.probe_fd.reset();
  h.probe_out.clear();
  h.probe_in.clear();
  h.probe_off = 0;
  if (ok) {
    on_probe_success(index, std::move(instance));
  } else {
    on_probe_failure(index);
  }
}

void Router::on_probe_success(std::size_t index, std::string instance) {
  BackendHealth& h = health_[index];
  Forwarder& f = *forwarders_[index];
  h.consecutive_failures = 0;

  const bool restarted = !h.instance.empty() && !instance.empty() &&
                         instance != h.instance;
  if (restarted) {
    // The process behind this name changed: the spool's records were
    // applied (at most) by the dead instance, and the new one resumes
    // from its checkpoint. The client re-send is authoritative —
    // discard the spool (counted superseded, not dropped) and start a
    // new epoch so re-sent prefixes replay correctly everywhere.
    if (f.state() == BackendState::kUp ||
        f.state() == BackendState::kSuspect) {
      // A restart that beat our EOF detection: the live-looking
      // connection belongs to a dead process. Drop it and reconnect.
      f.sever();
    }
    (void)f.discard_spool();
    begin_new_epoch(index);
  }
  if (!instance.empty()) h.instance = std::move(instance);

  if (!f.connected()) {
    // Probes pass but the forwarder is not connected yet (e.g. the
    // ingest listener came up a beat after /readyz): reconnect now.
    h.next_reconnect_at = Clock::now();
    return;
  }
  if (f.state() != BackendState::kUp) {
    // Same instance (or first sighting): the backend's applied state
    // includes everything we ever flushed, so the spool simply drains in
    // arrival order behind whatever is still buffered.
    if (f.drain_spool()) {
      f.set_state(BackendState::kUp);
      h.reconnect_attempts = 0;
      f.flush();
    }
    // drain_spool() failure re-severed; the reconnect timer retries.
  }
}

void Router::on_probe_failure(std::size_t index) {
  BackendHealth& h = health_[index];
  Forwarder& f = *forwarders_[index];
  ++h.consecutive_failures;
  if (metrics_) metrics_->probe_failures[index]->inc();
  if (!f.connected()) {
    f.set_state(BackendState::kDown);
    return;
  }
  if (h.consecutive_failures >= config_.probe_down_after) {
    // The connection still looks live but the process has stopped
    // answering: a hung backend will never flush its queue. Sever so the
    // records move to the spool and recovery owns them.
    f.sever();
    h.reconnect_attempts = 0;
    h.next_reconnect_at = Clock::now();
  } else if (f.state() == BackendState::kUp) {
    f.set_state(BackendState::kSuspect);
  }
}

void Router::route_request(Conn& c) {
  const HttpRequest& req = c.parser.request();
  ++stats_.http_requests;

  std::string route = "other";
  int status = 404;
  std::string body = "{\"error\":\"not found\"}";
  std::string content_type = "application/json";

  const auto respond_method_not_allowed = [&](const char* route_name) {
    route = route_name;
    status = 405;
    body = "{\"error\":\"method not allowed\"}";
  };

  if (req.target == "/healthz") {
    route = "/healthz";
    if (req.method == "GET") {
      status = 200;
      content_type = "text/plain";
      body = "ok\n";
    } else {
      respond_method_not_allowed("/healthz");
    }
  } else if (req.target == "/readyz") {
    route = "/readyz";
    if (req.method == "GET") {
      if (drain_requested_) {
        status = 503;
        body = "{\"error\":\"draining\"}";
      } else {
        handle_readyz(status, content_type, body);
      }
    } else {
      respond_method_not_allowed("/readyz");
    }
  } else if (req.target == "/metrics") {
    route = "/metrics";
    if (req.method == "GET") {
      handle_metrics(status, content_type, body);
    } else {
      respond_method_not_allowed("/metrics");
    }
  } else if (req.target == "/v1/summary") {
    route = "/v1/summary";
    if (req.method == "GET") {
      handle_summary(status, body);
    } else {
      respond_method_not_allowed("/v1/summary");
    }
  } else if (req.target.rfind("/v1/users/", 0) == 0 &&
             req.target.size() > 10 &&
             req.target.compare(req.target.size() - 9, 9, "/verdicts") ==
                 0) {
    route = "/v1/users/{id}/verdicts";
    if (req.method == "GET") {
      handle_proxy_verdicts(
          std::string_view(req.target).substr(10, req.target.size() - 19),
          status, body);
    } else {
      respond_method_not_allowed("/v1/users/{id}/verdicts");
    }
  } else if (req.target.rfind("/v1/users/", 0) == 0 &&
             req.target.size() > 10 &&
             req.target.compare(req.target.size() - 6, 6, "/score") == 0) {
    route = "/v1/users/{id}/score";
    if (req.method == "GET") {
      handle_proxy_score(
          std::string_view(req.target).substr(10, req.target.size() - 16),
          status, body);
    } else {
      respond_method_not_allowed("/v1/users/{id}/score");
    }
  } else if (req.target == "/v1/suspects" ||
             req.target.rfind("/v1/suspects?k=", 0) == 0) {
    route = "/v1/suspects";
    if (req.method == "GET") {
      handle_suspects(req.target, status, body);
    } else {
      respond_method_not_allowed("/v1/suspects");
    }
  } else if (req.target == "/admin/checkpoint") {
    route = "/admin/checkpoint";
    if (req.method == "POST") {
      handle_checkpoint(status, body);
    } else {
      respond_method_not_allowed("/admin/checkpoint");
    }
  } else if (req.target == "/admin/drain") {
    route = "/admin/drain";
    if (req.method != "POST") {
      respond_method_not_allowed("/admin/drain");
    } else if (drain_done_) {
      status = drain_status_;
      body = drain_body_;
    } else {
      // Deferred: the router stops accepting ingest, reads the connected
      // streams to EOF, pushes every buffered record, closes the
      // forwarder connections (EOF to the backends) and fans the drain
      // out — the caller is answered only when the whole cluster has
      // quiesced (complete_drain()).
      drain_requested_ = true;
      c.awaiting_drain = true;
      if (metrics_) metrics_->http_requests(route, 200).inc();
      return;
    }
  } else if (req.target.rfind("/admin/backends/", 0) == 0 &&
             req.target.size() > 16) {
    route = "/admin/backends/{name}";
    if (req.method == "POST") {
      handle_replace(req.target.substr(16), req.body, status, body);
    } else {
      respond_method_not_allowed("/admin/backends/{name}");
    }
  }

  if (metrics_) metrics_->http_requests(route, status).inc();
  c.wbuf += http_response(status, content_type, body);
  c.close_after_write = true;
  flush_write(c);
}

void Router::flush_write(Conn& c) {
  while (c.woff < c.wbuf.size()) {
    const ssize_t n = ::send(c.fd.get(), c.wbuf.data() + c.woff,
                             c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      c.dead = true;
      return;
    }
    c.woff += static_cast<std::size_t>(n);
  }
  c.wbuf.clear();
  c.woff = 0;
  if (c.close_after_write) c.dead = true;
}

void Router::sweep_idle(Clock::time_point now) {
  if (config_.idle_timeout_s <= 0) return;
  const auto timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.idle_timeout_s));
  for (auto& conn : conns_) {
    if (conn->dead) continue;
    if (now - conn->last_activity > timeout) {
      if (!conn->is_http) {
        if (conn->mode == Conn::WireMode::kBinary) {
          if (const auto err = conn->frame_decoder.finish()) {
            process_frame_error(*err);
          }
        } else if (const auto fragment = conn->decoder.finish()) {
          process_ingest_line(fragment->text, true);
        }
      }
      conn->dead = true;
    }
  }
}

void Router::update_backend_gauges() {
  const Clock::time_point now = Clock::now();
  std::uint64_t dropped_total = 0;
  std::uint64_t superseded_total = 0;
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    const Forwarder& f = *forwarders_[i];
    dropped_total += f.dropped;
    superseded_total += f.superseded;
    if (!metrics_) continue;
    metrics_->up[i]->set(f.connected() ? 1 : 0);
    metrics_->state[i]->set(static_cast<std::int64_t>(f.state()));
    metrics_->buffered[i]->set(static_cast<std::int64_t>(f.buffered()));
    metrics_->spool_bytes[i]->set(
        static_cast<std::int64_t>(f.spool_bytes()));
    metrics_->spool_records[i]->set(
        static_cast<std::int64_t>(f.spool_records()));
    metrics_->spool_age[i]->set(
        static_cast<std::int64_t>(f.spool_age_seconds(now)));
    const std::uint64_t delta = f.dropped - metrics_->dropped_seen[i];
    if (delta > 0) {
      metrics_->fwd_dropped[i]->inc(delta);
      metrics_->dropped_seen[i] = f.dropped;
    }
    const std::uint64_t sup = f.superseded - metrics_->superseded_seen[i];
    if (sup > 0) {
      metrics_->superseded[i]->inc(sup);
      metrics_->superseded_seen[i] = f.superseded;
    }
    const std::uint64_t rec = f.reconnects - metrics_->reconnects_seen[i];
    if (rec > 0) {
      metrics_->reconnects[i]->inc(rec);
      metrics_->reconnects_seen[i] = f.reconnects;
    }
  }
  stats_.records_dropped = dropped_total;
  stats_.records_superseded = superseded_total;
}

bool Router::flush_all_blocking(int deadline_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  bool all = true;
  for (const auto& f : forwarders_) {
    while (f->wants_write() || f->wants_binary_write()) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now())
              .count();
      if (remaining <= 0) {
        f->sever();
        all = false;
        break;
      }
      pollfd ps[2];
      nfds_t nfds = 0;
      if (f->wants_write()) ps[nfds++] = {f->fd(), POLLOUT, 0};
      if (f->wants_binary_write()) {
        ps[nfds++] = {f->binary_fd(), POLLOUT, 0};
      }
      if (::poll(ps, nfds, static_cast<int>(remaining)) < 0 &&
          errno != EINTR) {
        f->sever();
        all = false;
        break;
      }
      f->flush();
      if (!f->sending()) {
        all = false;
        break;
      }
    }
  }
  update_backend_gauges();
  return all;
}

void Router::complete_drain() {
  flush_all_blocking(fanout_deadline_ms());
  std::vector<std::string> failed;
  std::string ok_entries;
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    Forwarder& f = *forwarders_[i];
    // A backend that still holds queued or spooled records at drain time
    // cannot have applied them: name it failed (close() counts the loss).
    if (f.buffered() > 0 || f.spool_records() > 0) {
      failed.push_back(f.addr().name);
    }
    f.close();  // EOF: the backend's drain can now see ingest quiesce
  }
  const auto mark_failed = [&failed](const std::string& name) {
    if (std::find(failed.begin(), failed.end(), name) == failed.end()) {
      failed.push_back(name);
    }
  };
  for (std::size_t i = 0; i < forwarders_.size(); ++i) {
    const BackendAddr& addr = forwarders_[i]->addr();
    try {
      serve::HttpResponse resp = serve::http_post_deadline(
          addr.host, addr.http_port, "/admin/drain", fanout_deadline_ms());
      if (resp.status == 200) {
        if (!ok_entries.empty()) ok_entries += ',';
        ok_entries += "{\"name\":\"" + addr.name +
                      "\",\"response\":" + resp.body + "}";
      } else {
        mark_failed(addr.name);
      }
    } catch (const NetError&) {
      mark_failed(addr.name);
      if (metrics_) metrics_->backend_errors[i]->inc();
    }
  }
  if (failed.empty()) {
    drain_status_ = 200;
    drain_body_ =
        "{\"status\":\"drained\",\"backends\":[" + ok_entries + "]}";
  } else {
    // Not atomic: backends that answered 200 have drained and exited;
    // the rest are listed for the operator (docs/CLUSTER.md, failure
    // semantics).
    drain_status_ = 502;
    drain_body_ = "{\"error\":\"drain fan-out failed\",\"failed\":";
    append_json_string_array(drain_body_, failed);
    drain_body_ += "}";
  }
  drain_done_ = true;
  for (const auto& conn : conns_) {
    if (conn->dead || !conn->awaiting_drain) continue;
    conn->awaiting_drain = false;
    if (metrics_ && drain_status_ != 200) {
      metrics_->http_requests("/admin/drain", drain_status_).inc();
    }
    conn->wbuf += http_response(drain_status_, "application/json",
                                drain_body_);
    conn->close_after_write = true;
    flush_write(*conn);
  }
}

RouteStats Router::run(const std::atomic<bool>* stop) {
  if (!started_) throw std::logic_error("Router::run before start()");

  std::vector<pollfd> pollfds;
  std::vector<std::size_t> conn_of_pollfd;

  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
    if (drain_done_) {
      bool waiting = false;
      for (const auto& c : conns_) {
        if (!c->dead && (c->awaiting_drain || !c->wbuf.empty())) {
          waiting = true;
          break;
        }
      }
      if (!waiting) break;
    }

    // Backpressure with hysteresis: pause client reads when any backend
    // queue crosses the high-water mark — the socket buffer or the spool
    // (a long outage fills the spool budget instead of router memory; the
    // overflow is backpressure, never a drop) — resume once all are
    // under half of each.
    bool over = false;
    bool under = true;
    for (const auto& f : forwarders_) {
      if (f->buffered() > config_.backend_buffer_bytes ||
          f->spool_bytes() > config_.spool_bytes) {
        over = true;
      }
      if (f->buffered() > config_.backend_buffer_bytes / 2 ||
          f->spool_bytes() > config_.spool_bytes / 2) {
        under = false;
      }
    }
    if (!paused_ && over) {
      paused_ = true;
      if (metrics_) metrics_->pauses->inc();
    } else if (paused_ && under) {
      paused_ = false;
    }

    pollfds.clear();
    conn_of_pollfd.clear();
    const bool at_cap = conns_.size() >= config_.max_connections;
    if (!at_cap && !drain_requested_ && !paused_) {
      pollfds.push_back({ingest_listener_.get(), POLLIN, 0});
      conn_of_pollfd.push_back(kIngestListener);
    }
    if (!at_cap) {
      pollfds.push_back({http_listener_.get(), POLLIN, 0});
      conn_of_pollfd.push_back(kHttpListener);
    }
    for (std::size_t i = 0; i < forwarders_.size(); ++i) {
      const Forwarder& f = *forwarders_[i];
      if (!f.connected()) continue;
      // POLLIN watches for the backend closing its end (drain/death);
      // POLLOUT drains the queue. The binary channel, once open, gets
      // the same treatment under its own sentinel range.
      short events = POLLIN;
      if (f.wants_write()) events |= POLLOUT;
      pollfds.push_back({f.fd(), events, 0});
      conn_of_pollfd.push_back(kForwarderBase + i);
      if (f.binary_fd() >= 0) {
        short bin_events = POLLIN;
        if (f.wants_binary_write()) bin_events |= POLLOUT;
        pollfds.push_back({f.binary_fd(), bin_events, 0});
        conn_of_pollfd.push_back(kForwarderBinBase + i);
      }
    }
    for (std::size_t i = 0; i < health_.size(); ++i) {
      const BackendHealth& h = health_[i];
      if (h.phase == BackendHealth::ProbePhase::kIdle ||
          !h.probe_fd.valid()) {
        continue;
      }
      const short events =
          h.phase == BackendHealth::ProbePhase::kReading ? POLLIN
                                                         : POLLOUT;
      pollfds.push_back({h.probe_fd.get(), events, 0});
      conn_of_pollfd.push_back(kProbeBase + i);
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const Conn& c = *conns_[i];
      short events = 0;
      if (c.is_http || !paused_) events |= POLLIN;
      if (c.woff < c.wbuf.size()) events |= POLLOUT;
      if (events == 0) continue;  // paused ingest conn: leave it queued
      pollfds.push_back({c.fd.get(), events, 0});
      conn_of_pollfd.push_back(i);
    }

    const int ready = ::poll(pollfds.data(),
                             static_cast<nfds_t>(pollfds.size()),
                             kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) {
      throw NetError(std::string("poll: ") + std::strerror(errno));
    }

    for (std::size_t i = 0; i < pollfds.size(); ++i) {
      if (pollfds[i].revents == 0) continue;
      const std::size_t tag = conn_of_pollfd[i];
      if (tag == kIngestListener) {
        accept_ready(ingest_listener_, /*is_http=*/false);
        continue;
      }
      if (tag == kHttpListener) {
        accept_ready(http_listener_, /*is_http=*/true);
        continue;
      }
      if (tag >= kForwarderBinBase) {
        const bool binary = tag < kForwarderBase;
        Forwarder& f = *forwarders_[binary ? tag - kForwarderBinBase
                                           : tag - kForwarderBase];
        if (!f.connected()) continue;
        if ((pollfds[i].revents & (POLLERR | POLLNVAL | POLLHUP)) != 0) {
          f.sever();
          continue;
        }
        if ((pollfds[i].revents & POLLIN) != 0) {
          // The backend never sends on its ingest sockets; readable here
          // means EOF or reset (either channel — one dead channel means
          // the process behind both is gone).
          char probe[256];
          const ssize_t n =
              ::recv(binary ? f.binary_fd() : f.fd(), probe, sizeof(probe),
                     0);
          if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR)) {
            f.sever();
            continue;
          }
        }
        if ((pollfds[i].revents & POLLOUT) != 0) f.flush();
        continue;
      }
      if (tag >= kProbeBase) {
        probe_io(tag - kProbeBase, pollfds[i].revents);
        continue;
      }
      Conn& c = *conns_[tag];
      if (c.dead) continue;
      if ((pollfds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        c.dead = true;
        continue;
      }
      if ((pollfds[i].revents & POLLOUT) != 0) flush_write(c);
      if (!c.dead && (pollfds[i].revents & (POLLIN | POLLHUP)) != 0) {
        handle_read(c);
      }
    }

    if (!drain_done_) check_health_timers(Clock::now());

    sweep_idle(Clock::now());

    for (const auto& c : conns_) {
      if (c->dead) (c->is_http ? active_http_ : active_ingest_) -= 1;
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->dead;
                                }),
                 conns_.end());

    if (drain_requested_ && !drain_done_ && active_ingest_ == 0) {
      complete_drain();
    }

    update_backend_gauges();
  }

  // Teardown. The drain path already flushed and closed everything; the
  // stop path (SIGTERM) pushes what it can and leaves the backends up.
  ingest_listener_.reset();
  http_listener_.reset();
  conns_.clear();
  active_ingest_ = active_http_ = 0;
  if (drain_done_) {
    stats_.exit = RouteExit::kDrained;
  } else {
    flush_all_blocking(5'000);
    for (const auto& f : forwarders_) f->close();
    stats_.exit = RouteExit::kStopped;
  }
  update_backend_gauges();
  quarantine_->flush();
  return stats_;
}

}  // namespace geovalid::cluster
