// Levy Walk model fitting (§6.1, Figure 7).
//
// Following Rhee et al. [23] as the paper does:
//   flight (movement) distance ~ Pareto(x_min, alpha_d)
//   pause time                 ~ Pareto(p_min, alpha_p)
//   movement time              t = k * d^(1-rho)   (log-log least squares)
#pragma once

#include "mobility/samples.h"
#include "stats/pareto.h"
#include "stats/powerlaw.h"

namespace geovalid::mobility {

/// A fully fitted Levy Walk model.
struct LevyWalkModel {
  std::string name;  ///< which trace trained it ("gps", "honest", "all")

  stats::ParetoParams flight;  ///< movement distance, metres
  stats::ParetoParams pause;   ///< pause time, seconds
  stats::PowerLawFit time_of_distance;  ///< t(seconds) = k * d(m)^gamma

  /// Truncation used when sampling (keeps synthetic flights/pauses inside
  /// the support actually observed in the training data).
  double flight_max_m = 0.0;
  double pause_max_s = 0.0;

  /// Goodness-of-fit diagnostics surfaced by the Figure 7 bench.
  double flight_ks = 1.0;
  double pause_ks = 1.0;
};

/// Fits a model from extracted samples. When `samples.pause_s` is empty the
/// model reuses `pause_fallback` — the paper's "conservative approach" of
/// borrowing the GPS pause distribution for checkin-trained models.
///
/// Throws std::invalid_argument when distance samples are too few (< 16).
[[nodiscard]] LevyWalkModel fit_levy_walk(const MobilitySamples& samples,
                                          std::string name,
                                          const LevyWalkModel* pause_fallback =
                                              nullptr);

}  // namespace geovalid::mobility
