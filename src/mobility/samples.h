// Trip/pause extraction — turns traces into the three observables the Levy
// Walk model is fitted on (§6.1):
//   movement distance  d   (km-scale, heavy tailed)
//   movement time      t   (paired with d; the paper fits t = k d^(1-rho))
//   pause time         p   (only derivable from the GPS trace)
#pragma once

#include <functional>
#include <vector>

#include "match/pipeline.h"
#include "trace/dataset.h"

namespace geovalid::mobility {

/// Pooled movement observables of one trace type.
struct MobilitySamples {
  std::vector<double> distance_m;   ///< trip lengths
  std::vector<double> duration_s;   ///< paired trip durations (same size)
  std::vector<double> pause_s;      ///< stay durations (empty for checkins)
};

/// Extracts trips from the GPS visit sequence: a trip runs from the end of
/// one visit to the start of the next (same user, same day-ish; gaps above
/// `max_gap_s` are recording outages, not trips, and are skipped, as are
/// displacements under `min_distance_m` — wandering inside one site is not
/// a flight).
[[nodiscard]] MobilitySamples samples_from_visits(const trace::Dataset& ds,
                                                  double max_gap_s = 4 * 3600,
                                                  double min_distance_m = 100.0);

/// Extracts trips from consecutive checkin events of each user, keeping
/// only events accepted by `keep` (pass everything for the all-checkin
/// trace; pass honest-only for the honest-checkin trace). Checkins carry no
/// dwell information, so pause_s stays empty.
[[nodiscard]] MobilitySamples samples_from_checkins(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    const std::function<bool(match::CheckinClass)>& keep,
    double max_gap_s = 4 * 3600);

}  // namespace geovalid::mobility
