#include "mobility/levy_fit.h"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.h"

namespace geovalid::mobility {
namespace {

/// Fits a *generative* Pareto: x_min pinned to a low quantile so the model
/// describes the whole distribution, not just its far tail (a tail-optimal
/// x_min of several km would make every synthetic flight cross town, which
/// is not what Figure 7 fits — its Pareto lines span the full support).
stats::ParetoFit fit_generative_pareto(std::span<const double> xs) {
  const double x_min = std::max(1.0, stats::quantile(xs, 0.05));
  return stats::fit_pareto(xs, x_min);
}

}  // namespace

LevyWalkModel fit_levy_walk(const MobilitySamples& samples, std::string name,
                            const LevyWalkModel* pause_fallback) {
  if (samples.distance_m.size() < 16) {
    throw std::invalid_argument("fit_levy_walk: too few distance samples");
  }
  if (samples.distance_m.size() != samples.duration_s.size()) {
    throw std::invalid_argument(
        "fit_levy_walk: distance/duration sample mismatch");
  }

  LevyWalkModel model;
  model.name = std::move(name);

  const stats::ParetoFit flight_fit =
      fit_generative_pareto(samples.distance_m);
  model.flight = flight_fit.params;
  model.flight_ks = flight_fit.ks_stat;
  model.flight_max_m =
      *std::max_element(samples.distance_m.begin(), samples.distance_m.end());

  if (!samples.pause_s.empty()) {
    const stats::ParetoFit pause_fit = fit_generative_pareto(samples.pause_s);
    model.pause = pause_fit.params;
    model.pause_ks = pause_fit.ks_stat;
    model.pause_max_s =
        *std::max_element(samples.pause_s.begin(), samples.pause_s.end());
  } else if (pause_fallback != nullptr) {
    model.pause = pause_fallback->pause;
    model.pause_ks = pause_fallback->pause_ks;
    model.pause_max_s = pause_fallback->pause_max_s;
  } else {
    throw std::invalid_argument(
        "fit_levy_walk: no pause samples and no fallback model");
  }

  model.time_of_distance =
      stats::fit_power_law(samples.distance_m, samples.duration_s);
  return model;
}

}  // namespace geovalid::mobility
