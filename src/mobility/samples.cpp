#include "mobility/samples.h"

#include <stdexcept>

#include "geo/geodesic.h"

namespace geovalid::mobility {

MobilitySamples samples_from_visits(const trace::Dataset& ds,
                                    double max_gap_s,
                                    double min_distance_m) {
  MobilitySamples out;
  for (const trace::UserRecord& u : ds.users()) {
    for (std::size_t i = 0; i + 1 < u.visits.size(); ++i) {
      const trace::Visit& a = u.visits[i];
      const trace::Visit& b = u.visits[i + 1];
      const auto gap = static_cast<double>(b.start - a.end);
      if (gap < 0.0 || gap > max_gap_s) continue;
      const double d = geo::distance_m(a.centroid, b.centroid);
      if (d < min_distance_m) continue;
      out.distance_m.push_back(d);
      // A zero-length gap (visit boundary artifacts) still took *some*
      // time; clamp to one second to keep the power-law fit usable.
      out.duration_s.push_back(std::max(1.0, gap));
    }
    for (const trace::Visit& v : u.visits) {
      const auto dwell = static_cast<double>(v.duration());
      if (dwell > 0.0) out.pause_s.push_back(dwell);
    }
  }
  return out;
}

MobilitySamples samples_from_checkins(
    const trace::Dataset& ds, const match::ValidationResult& validation,
    const std::function<bool(match::CheckinClass)>& keep, double max_gap_s) {
  if (ds.user_count() != validation.users.size()) {
    throw std::invalid_argument(
        "samples_from_checkins: validation does not match dataset");
  }
  MobilitySamples out;
  const auto users = ds.users();
  for (std::size_t uidx = 0; uidx < users.size(); ++uidx) {
    const trace::UserRecord& u = users[uidx];
    const match::UserValidation& uv = validation.users[uidx];
    const auto events = u.checkins.events();

    bool have_prev = false;
    trace::Checkin prev;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (!keep(uv.labels[i])) continue;
      if (have_prev) {
        const auto gap = static_cast<double>(events[i].t - prev.t);
        const double d = geo::distance_m(prev.location, events[i].location);
        if (gap >= 0.0 && gap <= max_gap_s && d > 0.0) {
          out.distance_m.push_back(d);
          out.duration_s.push_back(std::max(1.0, gap));
        }
      }
      prev = events[i];
      have_prev = true;
    }
  }
  return out;
}

}  // namespace geovalid::mobility
