// Levy Walk synthetic movement generation (§6.2).
//
// Each node alternates flights and pauses: pick a uniform direction and a
// Pareto flight length, move along it for t = k * d^gamma seconds, then
// pause for a Pareto-distributed time. Flights reflect off the arena
// boundary.
#pragma once

#include <vector>

#include "geo/projection.h"
#include "mobility/levy_fit.h"
#include "stats/rng.h"

namespace geovalid::mobility {

/// A timestamped waypoint in arena coordinates (metres).
struct Waypoint {
  double t = 0.0;  ///< seconds since simulation start
  geo::PlanePoint pos;
};

/// Piecewise-linear movement of one node. Waypoints are time-ascending;
/// position between waypoints is linear interpolation, after the last
/// waypoint the node rests there.
class NodeTrack {
 public:
  NodeTrack() = default;
  explicit NodeTrack(std::vector<Waypoint> waypoints);

  [[nodiscard]] const std::vector<Waypoint>& waypoints() const {
    return waypoints_;
  }

  /// Position at time t (clamped to the track's span).
  [[nodiscard]] geo::PlanePoint position(double t) const;

 private:
  std::vector<Waypoint> waypoints_;
};

/// Arena and generation parameters for synthetic traces.
struct ArenaConfig {
  double width_m = 100000.0;   ///< the paper's 100 km
  double height_m = 100000.0;
  /// Nodes start uniformly inside a disc of this radius at the arena
  /// center. The fitted models describe city-scale movement (~15 km), so a
  /// clustered start reproduces the urban density the traces came from; a
  /// uniform scatter over 10^4 km^2 with a 1 km radio would never connect.
  /// (Documented substitution — see DESIGN.md.)
  double start_cluster_radius_m = 6000.0;
};

/// Generates one node's track covering [0, duration_s].
[[nodiscard]] NodeTrack generate_track(const LevyWalkModel& model,
                                       const ArenaConfig& arena,
                                       double duration_s, stats::Rng& rng);

/// Generates tracks for `node_count` nodes (each from a forked RNG stream,
/// so node k's trajectory does not depend on node count).
[[nodiscard]] std::vector<NodeTrack> generate_tracks(
    const LevyWalkModel& model, const ArenaConfig& arena, double duration_s,
    std::size_t node_count, stats::Rng& rng);

}  // namespace geovalid::mobility
