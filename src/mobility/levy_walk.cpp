#include "mobility/levy_walk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/samplers.h"

namespace geovalid::mobility {
namespace {

constexpr double kTau = 6.28318530717958647692;

/// Reflects x into [0, limit].
double reflect(double x, double limit) {
  if (limit <= 0.0) return 0.0;
  x = std::fmod(x, 2.0 * limit);
  if (x < 0.0) x += 2.0 * limit;
  return x <= limit ? x : 2.0 * limit - x;
}

}  // namespace

NodeTrack::NodeTrack(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].t < waypoints_[i - 1].t) {
      throw std::invalid_argument("NodeTrack: waypoints not time-ordered");
    }
  }
}

geo::PlanePoint NodeTrack::position(double t) const {
  if (waypoints_.empty()) return geo::PlanePoint{};
  if (t <= waypoints_.front().t) return waypoints_.front().pos;
  if (t >= waypoints_.back().t) return waypoints_.back().pos;

  const auto it = std::upper_bound(
      waypoints_.begin(), waypoints_.end(), t,
      [](double v, const Waypoint& w) { return v < w.t; });
  const Waypoint& b = *it;
  const Waypoint& a = *std::prev(it);
  const double span = b.t - a.t;
  if (span <= 0.0) return a.pos;
  const double frac = (t - a.t) / span;
  return geo::PlanePoint{a.pos.x_m + frac * (b.pos.x_m - a.pos.x_m),
                         a.pos.y_m + frac * (b.pos.y_m - a.pos.y_m)};
}

NodeTrack generate_track(const LevyWalkModel& model, const ArenaConfig& arena,
                         double duration_s, stats::Rng& rng) {
  if (duration_s <= 0.0) {
    throw std::invalid_argument("generate_track: non-positive duration");
  }

  std::vector<Waypoint> wps;
  // Clustered start around the arena center.
  const double cx = arena.width_m / 2.0;
  const double cy = arena.height_m / 2.0;
  const double r0 = arena.start_cluster_radius_m * std::sqrt(rng.uniform());
  const double a0 = rng.uniform() * kTau;
  geo::PlanePoint pos{reflect(cx + r0 * std::cos(a0), arena.width_m),
                      reflect(cy + r0 * std::sin(a0), arena.height_m)};
  double now = 0.0;
  wps.push_back(Waypoint{now, pos});

  const double flight_cap =
      model.flight_max_m > model.flight.x_min ? model.flight_max_m
                                              : model.flight.x_min * 100.0;
  const double pause_cap = model.pause_max_s > model.pause.x_min
                               ? model.pause_max_s
                               : model.pause.x_min * 100.0;

  while (now < duration_s) {
    // Pause first (nodes begin parked, like people at home).
    const double pause =
        stats::sample_truncated_pareto(rng, model.pause, pause_cap);
    now += pause;
    wps.push_back(Waypoint{now, pos});
    if (now >= duration_s) break;

    // Flight.
    const double d =
        stats::sample_truncated_pareto(rng, model.flight, flight_cap);
    const double t_move =
        std::max(1.0, stats::power_law_eval(model.time_of_distance, d));
    const double theta = rng.uniform() * kTau;
    pos = geo::PlanePoint{reflect(pos.x_m + d * std::cos(theta), arena.width_m),
                          reflect(pos.y_m + d * std::sin(theta), arena.height_m)};
    now += t_move;
    wps.push_back(Waypoint{now, pos});
  }
  return NodeTrack(std::move(wps));
}

std::vector<NodeTrack> generate_tracks(const LevyWalkModel& model,
                                       const ArenaConfig& arena,
                                       double duration_s,
                                       std::size_t node_count,
                                       stats::Rng& rng) {
  std::vector<NodeTrack> tracks;
  tracks.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    stats::Rng node_rng = rng.fork(i + 1);
    tracks.push_back(generate_track(model, arena, duration_s, node_rng));
  }
  return tracks;
}

}  // namespace geovalid::mobility
