#include "serve/http.h"

#include <cctype>
#include <charconv>

namespace geovalid::serve {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

HttpRequestParser::State HttpRequestParser::fail(int status,
                                                 std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
  return state_;
}

HttpRequestParser::State HttpRequestParser::consume(std::string_view data) {
  if (state_ == State::kDone || state_ == State::kError) return state_;
  buf_.append(data);
  if (state_ == State::kHead) {
    const std::size_t head_end = buf_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buf_.size() > kMaxHttpHeadBytes) {
        return fail(431, "request head too large");
      }
      return state_;
    }
    if (head_end > kMaxHttpHeadBytes) {
      return fail(431, "request head too large");
    }
    const State parsed = parse_head();
    if (parsed == State::kError) return state_;
    buf_.erase(0, head_end + 4);
    state_ = State::kBody;
  }
  if (state_ == State::kBody) {
    if (buf_.size() >= body_expected_) {
      request_.body = buf_.substr(0, body_expected_);
      buf_.clear();
      state_ = State::kDone;
    }
  }
  return state_;
}

HttpRequestParser::State HttpRequestParser::parse_head() {
  // Request line: METHOD SP TARGET SP VERSION.
  std::size_t pos = buf_.find("\r\n");
  const std::string_view line = std::string_view(buf_).substr(0, pos);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return fail(400, "malformed request line");
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(trim(line.substr(sp2 + 1)));
  if (request_.method.empty() || request_.target.empty() ||
      request_.version.rfind("HTTP/", 0) != 0) {
    return fail(400, "malformed request line");
  }

  // Header lines until the blank one.
  pos += 2;
  while (true) {
    const std::size_t end = buf_.find("\r\n", pos);
    const std::string_view header_line =
        std::string_view(buf_).substr(pos, end - pos);
    if (header_line.empty()) break;
    const std::size_t colon = header_line.find(':');
    if (colon == std::string_view::npos) {
      return fail(400, "malformed header line");
    }
    request_.headers.emplace_back(
        to_lower(trim(header_line.substr(0, colon))),
        std::string(trim(header_line.substr(colon + 1))));
    pos = end + 2;
  }

  const std::string_view length = request_.header("content-length");
  if (!length.empty()) {
    std::size_t n = 0;
    const auto [ptr, ec] =
        std::from_chars(length.data(), length.data() + length.size(), n);
    if (ec != std::errc{} || ptr != length.data() + length.size()) {
      return fail(400, "bad Content-Length");
    }
    if (n > kMaxHttpBodyBytes) return fail(413, "request body too large");
    body_expected_ = n;
  }
  if (!request_.header("transfer-encoding").empty()) {
    return fail(501, "chunked requests unsupported");
  }
  return state_;
}

std::string http_response(
    int status, std::string_view content_type, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out;
  out.reserve(body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += http_status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n";
  for (const auto& [k, v] : extra_headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string_view http_status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

}  // namespace geovalid::serve
