#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/parallel.h"
#include "match/classifier.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "stream/checkpoint.h"
#include "stream/snapshot_io.h"

namespace geovalid::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Poll tick: the idle sweep / checkpoint / stop-flag / pause-gate
/// granularity — the longest a reactor can lag behind a rendezvous.
constexpr int kPollTimeoutMs = 100;

/// Per-connection read budget per loop iteration, so one firehose client
/// cannot starve the others between polls.
constexpr std::size_t kReadBudgetBytes = 256 * 1024;

/// The fixed route vocabulary of serve_http_requests_total{route=...} —
/// unknown targets collapse into "other" so hostile clients cannot mint
/// unbounded label values.
constexpr const char* kRouteLabels[] = {
    "/healthz",          "/readyz",        "/metrics",
    "/v1/summary",       "/v1/users/{id}/verdicts",
    "/v1/users/{id}/score",                "/v1/suspects",
    "/admin/checkpoint", "/admin/drain",   "other",
};

std::uint64_t ns_since(Clock::time_point start) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - start)
                      .count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

void append_json_number(std::string& out, double v) {
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

void append_json_number(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_partition_json(std::string& out, const match::Partition& p) {
  out += "{\"honest\":";
  append_json_number(out, static_cast<std::uint64_t>(p.honest));
  out += ",\"extraneous\":";
  append_json_number(out, static_cast<std::uint64_t>(p.extraneous));
  out += ",\"missing\":";
  append_json_number(out, static_cast<std::uint64_t>(p.missing));
  out += ",\"checkins\":";
  append_json_number(out, static_cast<std::uint64_t>(p.checkins));
  out += ",\"visits\":";
  append_json_number(out, static_cast<std::uint64_t>(p.visits));
  out += ",\"by_class\":{";
  for (std::size_t c = 0; c < match::kCheckinClassCount; ++c) {
    if (c > 0) out += ',';
    out += '"';
    out += match::to_string(static_cast<match::CheckinClass>(c));
    out += "\":";
    append_json_number(out, static_cast<std::uint64_t>(p.by_class[c]));
  }
  out += "}}";
}

std::string user_verdicts_json(const stream::UserVerdicts& v) {
  std::string out = "{\"user\":";
  append_json_number(out, static_cast<std::uint64_t>(v.id));
  out += ",\"partition\":";
  append_partition_json(out, v.partition);
  out += ",\"extraneous_ratio\":";
  append_json_number(out, v.extraneous_ratio());
  out += ",\"interarrival\":{\"gaps\":";
  append_json_number(out, v.gap_count);
  out += ",\"mean_min\":";
  append_json_number(out, v.gap_mean_min);
  out += ",\"stddev_min\":";
  append_json_number(out, v.gap_stddev_min());
  out += ",\"burstiness\":";
  append_json_number(out, v.burstiness());
  out += "}}";
  return out;
}

}  // namespace

/// One accepted socket, either protocol, owned by exactly one reactor.
/// Response bytes queue in `wbuf` and drip out under POLLOUT, so a slow
/// reader never blocks its reactor.
struct Server::Conn {
  /// Ingest wire format, decided by the connection's first byte: 0xB1 (no
  /// text record can start with it) selects binary frames for the
  /// connection's lifetime, anything else the text grammar — existing
  /// clients never see a difference.
  enum class WireMode : std::uint8_t { kUndecided, kText, kBinary };

  Fd fd;
  bool is_http = false;
  bool dead = false;
  bool close_after_write = false;
  bool awaiting_drain = false;  ///< /admin/drain caller; answered once the
                                ///< ingest side has quiesced
  WireMode mode = WireMode::kUndecided;
  LineDecoder decoder;
  BinaryFrameDecoder frame_decoder;
  HttpRequestParser parser;
  std::string wbuf;
  std::size_t woff = 0;
  Clock::time_point last_activity;

  explicit Conn(Fd socket, bool http, std::size_t max_line_bytes)
      : fd(std::move(socket)), is_http(http), decoder(max_line_bytes) {
    last_activity = Clock::now();
  }
};

/// One event-loop thread's private world: the connections it accepted,
/// its engine producer handle, and its serve_reactor_* metric handles.
/// Nothing here is ever touched by another reactor.
struct Server::Reactor {
  std::size_t index = 0;
  std::vector<std::unique_ptr<Conn>> conns;
  stream::StreamEngine::Producer producer;
  /// Reusable per-frame scratch: the non-replayed slice of a decoded
  /// binary frame, handed to the engine in one stage_batch call.
  std::vector<stream::Event> frame_scratch;

  obs::Counter* m_events = nullptr;       ///< serve_reactor_events_total
  obs::Counter* m_connections = nullptr;  ///< serve_reactor_connections_total
  obs::Counter* m_stalls = nullptr;       ///< serve_reactor_stalls_total
  obs::Histogram* m_loop_ns = nullptr;    ///< serve_reactor_loop_ns
  std::uint64_t stalls_synced = 0;  ///< producer stalls already mirrored

  Reactor(std::size_t i, stream::StreamEngine& engine)
      : index(i), producer(engine) {}
};

/// Cached serve_* metric handles (null when ServeConfig::metrics is off).
struct Server::Metrics {
  obs::Counter* connections_ingest = nullptr;
  obs::Counter* connections_http = nullptr;
  obs::Gauge* active_ingest = nullptr;
  obs::Gauge* active_http = nullptr;
  obs::Counter* bytes_read_ingest = nullptr;
  obs::Counter* bytes_read_http = nullptr;
  obs::Counter* bytes_written_ingest = nullptr;
  obs::Counter* bytes_written_http = nullptr;
  obs::Counter* records_applied = nullptr;
  obs::Counter* records_replayed = nullptr;
  obs::Counter* records_malformed = nullptr;
  obs::Gauge* ingest_lag = nullptr;
  obs::Counter* idle_timeouts = nullptr;
  obs::Counter* accept_backpressure = nullptr;
  obs::Counter* wire_frames = nullptr;       ///< serve_wire_frames_total
  obs::Counter* wire_bytes_text = nullptr;   ///< serve_wire_bytes_total
  obs::Counter* wire_bytes_binary = nullptr;
  obs::Histogram* wire_batch_records = nullptr;
  /// serve_wire_malformed_frames_total{reason=...}, indexed by
  /// FrameErrorKind — the vocabulary is fixed and pre-registered.
  std::array<obs::Counter*, kFrameErrorKindCount> wire_malformed{};

  /// serve_http_requests_total{route,status}; statuses appear lazily, the
  /// route vocabulary is fixed (kRouteLabels).
  obs::Counter& http_requests(const std::string& route, int status) {
    return obs::registry().counter(
        "serve_http_requests_total",
        "Control-plane requests served, by route and response status",
        {{"route", route}, {"status", std::to_string(status)}});
  }
};

Server::Server(ServeConfig config) : config_(std::move(config)) {
  config_.reactors = core::resolve_threads(config_.reactors);
  // Distinct across processes (pid) and across Servers within one process
  // (counter) — in-process cluster tests restart "backends" without
  // forking, and a restart must present a new instance.
  static std::atomic<std::uint64_t> instance_counter{0};
  instance_id_ =
      std::to_string(static_cast<std::uint64_t>(::getpid())) + "." +
      std::to_string(instance_counter.fetch_add(1, std::memory_order_relaxed));
  quarantine_.emplace(config_.quarantine);
  // A network feed is never trusted: the quarantine path is always on, so
  // malformed payloads degrade to dead letters instead of poisoning the
  // engine (ISSUE: "typed rejection into the quarantine path").
  config_.engine.quarantine = &*quarantine_;
  if (!config_.model_path.empty()) {
    model_.emplace(score::load_model(config_.model_path));
    config_.engine.model = &*model_;
  }
  engine_.emplace(config_.engine);
  reactors_.reserve(config_.reactors);
  for (std::size_t i = 0; i < config_.reactors; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(i, *engine_));
  }
  if (config_.metrics) register_metrics();
}

Server::~Server() = default;

void Server::register_metrics() {
  obs::Registry& r = obs::registry();
  metrics_ = std::make_unique<Metrics>();
  Metrics& m = *metrics_;
  static constexpr std::string_view kConnHelp =
      "Connections accepted, by listener kind";
  m.connections_ingest =
      &r.counter("serve_connections_total", kConnHelp, {{"kind", "ingest"}});
  m.connections_http =
      &r.counter("serve_connections_total", kConnHelp, {{"kind", "http"}});
  static constexpr std::string_view kActiveHelp =
      "Currently open connections, by listener kind";
  m.active_ingest =
      &r.gauge("serve_connections_active", kActiveHelp, {{"kind", "ingest"}});
  m.active_http =
      &r.gauge("serve_connections_active", kActiveHelp, {{"kind", "http"}});
  static constexpr std::string_view kReadHelp =
      "Bytes received from clients, by listener kind";
  m.bytes_read_ingest =
      &r.counter("serve_bytes_read_total", kReadHelp, {{"kind", "ingest"}});
  m.bytes_read_http =
      &r.counter("serve_bytes_read_total", kReadHelp, {{"kind", "http"}});
  static constexpr std::string_view kWriteHelp =
      "Bytes sent to clients, by listener kind";
  m.bytes_written_ingest = &r.counter("serve_bytes_written_total", kWriteHelp,
                                      {{"kind", "ingest"}});
  m.bytes_written_http = &r.counter("serve_bytes_written_total", kWriteHelp,
                                    {{"kind", "http"}});
  static constexpr std::string_view kRecordHelp =
      "Ingest records, by outcome: applied to the engine, replayed "
      "(checkpoint-covered prefix after a resume), malformed "
      "(dead-lettered)";
  m.records_applied = &r.counter("serve_ingest_records_total", kRecordHelp,
                                 {{"result", "applied"}});
  m.records_replayed = &r.counter("serve_ingest_records_total", kRecordHelp,
                                  {{"result", "replayed"}});
  m.records_malformed = &r.counter("serve_ingest_records_total", kRecordHelp,
                                   {{"result", "malformed"}});
  m.ingest_lag = &r.gauge(
      "serve_ingest_lag_events",
      "Events accepted by the server but not yet processed by the engine "
      "workers (in-flight depth)");
  m.idle_timeouts = &r.counter(
      "serve_idle_timeouts_total",
      "Connections closed by the idle sweep");
  m.accept_backpressure = &r.counter(
      "serve_accept_backpressure_total",
      "Times the listeners left the poll set because the connection cap "
      "was reached (new clients wait in the kernel backlog)");
  m.wire_frames = &r.counter(
      "serve_wire_frames_total",
      "Binary wire frames decoded and applied to the ingest path");
  static constexpr std::string_view kWireBytesHelp =
      "Ingest bytes received, by negotiated wire format";
  m.wire_bytes_text = &r.counter("serve_wire_bytes_total", kWireBytesHelp,
                                 {{"format", "text"}});
  m.wire_bytes_binary = &r.counter("serve_wire_bytes_total", kWireBytesHelp,
                                   {{"format", "binary"}});
  m.wire_batch_records = &r.histogram(
      "serve_wire_batch_records",
      "Records per decoded binary frame (columnar batch size)");
  // Pre-register every frame rejection reason, mirroring the quarantine
  // counters: absence means "no binary ingest", not "no rejects".
  for (std::size_t i = 0; i < kFrameErrorKindCount; ++i) {
    m.wire_malformed[i] = &r.counter(
        "serve_wire_malformed_frames_total",
        "Binary wire frames rejected and dead-lettered, by reason",
        {{"reason",
          std::string(to_string(static_cast<FrameErrorKind>(i)))}});
  }
  // Pre-register the fixed route vocabulary with the success status, so a
  // scrape (and the obs-docs test) sees the family before any request.
  for (const char* route : kRouteLabels) m.http_requests(route, 200);
  // Per-reactor families, registered for every reactor up front so a
  // scrape always sees the full {reactor="0".."N-1"} vocabulary.
  for (auto& reactor : reactors_) {
    const obs::Labels label{{"reactor", std::to_string(reactor->index)}};
    reactor->m_events = &r.counter(
        "serve_reactor_events_total",
        "Well-formed wire records decoded, per reactor thread", label);
    reactor->m_connections = &r.counter(
        "serve_reactor_connections_total",
        "Connections accepted, per reactor thread", label);
    reactor->m_stalls = &r.counter(
        "serve_reactor_stalls_total",
        "Times this reactor's engine producer found a shard mailbox full "
        "and had to wait (engine backpressure, per reactor)", label);
    reactor->m_loop_ns = &r.histogram(
        "serve_reactor_loop_ns",
        "One event-loop iteration's service time after poll() returns "
        "(nanoseconds), per reactor", label);
  }
}

void Server::start() {
  if (started_) throw std::logic_error("Server::start called twice");
  if (config_.resume && !config_.checkpoint_dir.empty()) {
    restore_from_checkpoint();
  }
  ingest_listener_ = tcp_listen(config_.host, config_.ingest_port);
  ingest_port_ = local_port(ingest_listener_.get());
  http_listener_ = tcp_listen(config_.host, config_.http_port);
  http_port_ = local_port(http_listener_.get());
  started_ = true;
}

void Server::restore_from_checkpoint() {
  const auto restored = stream::restore_latest(config_.checkpoint_dir);
  if (!restored) return;
  // Serve payload: per-user accepted-record coverage, then the engine
  // payload as an opaque blob.
  stream::SnapshotReader r(restored->payload);
  const std::uint64_t users = r.u64();
  for (std::uint64_t i = 0; i < users; ++i) {
    const trace::UserId id = r.u32();
    const std::uint64_t count = r.u64();
    if (count == 0 || !resumed_.emplace(id, count).second) {
      throw stream::SnapshotError(
          "snapshot: malformed serve coverage table");
    }
  }
  const std::string engine_payload = r.blob();
  if (!r.exhausted()) {
    throw stream::SnapshotError(
        "snapshot: trailing bytes after serve state");
  }
  engine_->load_state(engine_payload);
  cursor_.store(restored->cursor, std::memory_order_relaxed);
  restored_cursor_ = restored->cursor;
}

std::uint64_t Server::resumed_count(trace::UserId user) const {
  const auto it = resumed_.find(user);
  return it == resumed_.end() ? 0 : it->second;
}

std::uint64_t Server::arrive(trace::UserId user) {
  // Same splitmix64 multiplier the engine shards with; the top bits keep
  // sequential ids from piling onto one stripe.
  const std::size_t stripe = static_cast<std::size_t>(
      (static_cast<std::uint64_t>(user) * 0x9E3779B97F4A7C15ULL) >> 58);
  CoverageStripe& s = arrived_[stripe % kCoverageStripes];
  std::lock_guard<std::mutex> lock(s.mu);
  return ++s.counts[user];
}

std::filesystem::path Server::write_checkpoint_now() {
  // Coverage per user: everything arrived this lifetime, or restored from
  // the previous one — whichever is further (a user may not have re-sent
  // its full prefix yet when a checkpoint fires mid-replay). The stripe
  // locks make the snapshot consistent against record arrivals, though
  // run_quiesced has already parked every other reactor anyway.
  std::vector<std::pair<trace::UserId, std::uint64_t>> coverage;
  for (CoverageStripe& stripe : arrived_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    coverage.insert(coverage.end(), stripe.counts.begin(),
                    stripe.counts.end());
  }
  for (const auto& [id, count] : resumed_) {
    bool merged = false;
    for (auto& [cid, ccount] : coverage) {
      if (cid == id) {
        ccount = std::max(ccount, count);
        merged = true;
        break;
      }
    }
    if (!merged) coverage.emplace_back(id, count);
  }
  std::sort(coverage.begin(), coverage.end());

  stream::SnapshotWriter w;
  w.u64(coverage.size());
  for (const auto& [id, count] : coverage) {
    w.u32(id);
    w.u64(count);
  }
  w.blob(engine_->save_state());  // drains; quarantine flushed with it
  return stream::write_checkpoint(
      config_.checkpoint_dir,
      {cursor_.load(std::memory_order_relaxed), w.take()});
}

void Server::accept_ready(Reactor& r, Fd& listener, bool is_http) {
  while (true) {
    // Reserve the slot under the global cap *before* accepting, so N
    // reactors racing on the shared listener can never overshoot
    // --max-connections.
    std::size_t cur = total_conns_.load(std::memory_order_relaxed);
    do {
      if (cur >= config_.max_connections) return;
    } while (!total_conns_.compare_exchange_weak(cur, cur + 1,
                                                 std::memory_order_relaxed));
    int cfd = -1;
    do {
      cfd = ::accept4(listener.get(), nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
    } while (cfd < 0 && errno == EINTR);
    if (cfd < 0) {
      total_conns_.fetch_sub(1, std::memory_order_relaxed);
      if (errno == ECONNABORTED) continue;
      return;  // EAGAIN (another reactor won), or a transient kernel error
    }
    r.conns.push_back(std::make_unique<Conn>(Fd(cfd), is_http,
                                             config_.max_line_bytes));
    connections_.fetch_add(1, std::memory_order_relaxed);
    if (r.m_connections != nullptr) r.m_connections->inc();
    if (is_http) {
      ++active_http_;  // HTTP accepts happen on reactor 0 only
      if (metrics_) {
        metrics_->connections_http->inc();
        metrics_->active_http->set(static_cast<std::int64_t>(active_http_));
      }
    } else {
      const std::size_t active =
          active_ingest_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (metrics_) {
        metrics_->connections_ingest->inc();
        metrics_->active_ingest->set(static_cast<std::int64_t>(active));
      }
    }
  }
}

void Server::process_ingest_line(Reactor& r, std::string_view text,
                                 bool truncated) {
  if (truncated) {
    records_malformed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->records_malformed->inc();
    quarantine_->record_raw(text, stream::QuarantineReason::kMalformedLine);
    return;
  }
  if (text.empty()) return;  // blank keepalive line
  const WireResult result = parse_wire_record(text);
  if (const auto* error = std::get_if<WireError>(&result)) {
    records_malformed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->records_malformed->inc();
    quarantine_->record_raw(text, stream::QuarantineReason::kMalformedLine);
    (void)error;
    return;
  }
  const stream::Event& e = std::get<stream::Event>(result);
  const std::uint64_t parsed =
      records_parsed_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (r.m_events != nullptr) r.m_events->inc();
  const std::uint64_t arrived = arrive(e.user);
  if (arrived <= resumed_count(e.user)) {
    // Checkpoint-covered prefix re-sent after a resume: the engine state
    // already includes it. Skipping here is what turns the clients'
    // at-least-once redelivery into exactly-once application.
    records_replayed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->records_replayed->inc();
  } else {
    // push() may block on engine backpressure — that is the design: TCP
    // receive buffers fill and the feed slows to what the shards sustain.
    if (r.producer.push(e)) routed_.fetch_add(1, std::memory_order_relaxed);
    cursor_.fetch_add(1, std::memory_order_relaxed);
    records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
    records_applied_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->records_applied->inc();
  }
  if (config_.crash_after_records != 0 &&
      parsed >= config_.crash_after_records) {
    crash_pending_.store(true, std::memory_order_relaxed);
  }
}

void Server::process_ingest_frame(Reactor& r,
                                  BinaryFrameDecoder::Frame& frame) {
  const std::uint64_t count = frame.events.size();
  const std::uint64_t parsed =
      records_parsed_.fetch_add(count, std::memory_order_relaxed) + count;
  if (r.m_events != nullptr) r.m_events->inc(count);
  if (metrics_) {
    metrics_->wire_frames->inc();
    metrics_->wire_batch_records->observe(count);
  }

  // Coverage first, record by record (the exactly-once replay skip is
  // per-user, per-record), then the survivors reach the engine as one
  // columnar batch — a single stage_batch handoff per frame.
  r.frame_scratch.clear();
  std::uint64_t replayed = 0;
  for (const stream::Event& e : frame.events) {
    if (arrive(e.user) <= resumed_count(e.user)) {
      ++replayed;
    } else {
      r.frame_scratch.push_back(e);
    }
  }
  if (replayed > 0) {
    records_replayed_.fetch_add(replayed, std::memory_order_relaxed);
    if (metrics_) metrics_->records_replayed->inc(replayed);
  }
  if (!r.frame_scratch.empty()) {
    const std::uint64_t applied = r.frame_scratch.size();
    // stage_batch may block on engine backpressure, exactly like push():
    // TCP receive buffers fill and the feed slows to what the shards
    // sustain.
    routed_.fetch_add(r.producer.stage_batch(r.frame_scratch),
                      std::memory_order_relaxed);
    cursor_.fetch_add(applied, std::memory_order_relaxed);
    records_since_checkpoint_.fetch_add(applied, std::memory_order_relaxed);
    records_applied_.fetch_add(applied, std::memory_order_relaxed);
    if (metrics_) metrics_->records_applied->inc(applied);
  }
  if (config_.crash_after_records != 0 &&
      parsed >= config_.crash_after_records) {
    crash_pending_.store(true, std::memory_order_relaxed);
  }
}

void Server::process_frame_error(const FrameError& error) {
  // One rejected frame counts as one malformed ingest record (its claimed
  // record count is exactly what cannot be trusted).
  records_malformed_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_) {
    metrics_->records_malformed->inc();
    metrics_->wire_malformed[static_cast<std::size_t>(error.kind)]->inc();
  }
  // The detail is already printable (reason + byte count + hex prefix) —
  // raw frame bytes never reach the dead-letter CSV.
  quarantine_->record_raw(error.detail,
                          stream::QuarantineReason::kMalformedFrame);
}

void Server::handle_ingest_eof(Reactor& r, Conn& c) {
  if (c.mode == Conn::WireMode::kBinary) {
    if (const auto error = c.frame_decoder.finish()) {
      // Abrupt mid-frame disconnect: the incomplete tail is dead-lettered,
      // never half-decoded into the engine.
      process_frame_error(*error);
    }
  } else if (const auto fragment = c.decoder.finish()) {
    // Abrupt mid-record disconnect: the unterminated tail is dead-lettered,
    // never half-parsed into the engine.
    process_ingest_line(r, fragment->text, true);
  }
  c.dead = true;
}

void Server::handle_read(Reactor& r, Conn& c) {
  char buf[65536];
  std::size_t budget = kReadBudgetBytes;
  while (budget > 0 && !c.dead &&
         !crash_pending_.load(std::memory_order_relaxed)) {
    const ssize_t n =
        ::recv(c.fd.get(), buf, std::min(sizeof(buf), budget), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      c.dead = true;
      return;
    }
    if (n == 0) {  // orderly EOF
      if (c.is_http) {
        c.dead = true;
      } else {
        handle_ingest_eof(r, c);
      }
      return;
    }
    budget -= static_cast<std::size_t>(n);
    c.last_activity = Clock::now();
    const std::string_view chunk(buf, static_cast<std::size_t>(n));
    if (metrics_) {
      (c.is_http ? metrics_->bytes_read_http : metrics_->bytes_read_ingest)
          ->inc(static_cast<std::uint64_t>(n));
    }
    if (c.is_http) {
      const auto state = c.parser.consume(chunk);
      if (state == HttpRequestParser::State::kDone) {
        route_request(r, c);
        return;
      }
      if (state == HttpRequestParser::State::kError) {
        http_requests_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_) {
          metrics_->http_requests("other", c.parser.error_status()).inc();
        }
        c.wbuf += http_response(c.parser.error_status(), "text/plain",
                                c.parser.error() + "\n");
        c.close_after_write = true;
        flush_write(c);
        return;
      }
    } else {
      if (c.mode == Conn::WireMode::kUndecided) {
        c.mode = static_cast<unsigned char>(chunk.front()) == kFrameMagic0
                     ? Conn::WireMode::kBinary
                     : Conn::WireMode::kText;
      }
      if (c.mode == Conn::WireMode::kBinary) {
        if (metrics_) {
          metrics_->wire_bytes_binary->inc(static_cast<std::uint64_t>(n));
        }
        c.frame_decoder.feed(chunk);
        while (auto result = c.frame_decoder.next()) {
          if (auto* frame = std::get_if<BinaryFrameDecoder::Frame>(&*result)) {
            process_ingest_frame(r, *frame);
          } else {
            process_frame_error(std::get<FrameError>(*result));
          }
          if (crash_pending_.load(std::memory_order_relaxed)) return;
        }
      } else {
        if (metrics_) {
          metrics_->wire_bytes_text->inc(static_cast<std::uint64_t>(n));
        }
        c.decoder.feed(chunk);
        while (auto line = c.decoder.next()) {
          process_ingest_line(r, line->text, line->truncated);
          if (crash_pending_.load(std::memory_order_relaxed)) return;
        }
      }
    }
  }
}

void Server::route_request(Reactor& r, Conn& c) {
  const HttpRequest& req = c.parser.request();
  http_requests_.fetch_add(1, std::memory_order_relaxed);

  std::string route = "other";
  int status = 404;
  std::string body = "{\"error\":\"not found\"}";
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;

  const auto respond_method_not_allowed = [&](const char* route_name) {
    route = route_name;
    status = 405;
    body = "{\"error\":\"method not allowed\"}";
  };

  if (req.target == "/healthz") {
    route = "/healthz";
    if (req.method == "GET") {
      status = 200;
      content_type = "text/plain";
      body = "ok\n";
    } else {
      respond_method_not_allowed("/healthz");
    }
  } else if (req.target == "/readyz") {
    // Readiness, as distinct from /healthz liveness: a draining daemon is
    // alive but must not receive new traffic, which is what a router or
    // orchestrator keys on. The other not-ready phase — checkpoint
    // restore — runs synchronously in start() before the listeners bind,
    // so it is correctly reported by connection refusal.
    route = "/readyz";
    if (req.method == "GET") {
      // The instance header travels on both outcomes so a router probe
      // can learn the nonce even while the daemon drains.
      extra_headers.emplace_back("Geovalid-Instance", instance_id_);
      if (drain_requested_.load(std::memory_order_relaxed)) {
        status = 503;
        body = "{\"error\":\"draining\"}";
      } else {
        status = 200;
        content_type = "text/plain";
        body = "ready\n";
      }
    } else {
      respond_method_not_allowed("/readyz");
    }
  } else if (req.target == "/metrics") {
    route = "/metrics";
    if (req.method == "GET") {
      update_lag_gauge();
      status = 200;
      content_type = std::string(obs::kPrometheusContentType);
      body = obs::to_prometheus(obs::registry());
    } else {
      respond_method_not_allowed("/metrics");
    }
  } else if (req.target == "/v1/summary") {
    route = "/v1/summary";
    if (req.method == "GET") {
      // summary_json() quiesces the engine (drain() inside
      // all_user_verdicts()), which requires the single-producer window
      // the pause gate provides.
      if (run_quiesced(r, [&] { body = summary_json(); })) {
        status = 200;
      } else {
        status = 503;  // crashing; the connection dies with the daemon
        body = "{\"error\":\"shutting down\"}";
      }
    } else {
      respond_method_not_allowed("/v1/summary");
    }
  } else if (req.target.rfind("/v1/users/", 0) == 0 &&
             req.target.size() > 10 &&
             req.target.compare(req.target.size() - 9, 9, "/verdicts") ==
                 0) {
    route = "/v1/users/{id}/verdicts";
    const std::string_view id_text =
        std::string_view(req.target).substr(10, req.target.size() - 19);
    trace::UserId id = 0;
    const auto [ptr, ec] =
        std::from_chars(id_text.data(), id_text.data() + id_text.size(), id);
    if (req.method != "GET") {
      respond_method_not_allowed("/v1/users/{id}/verdicts");
    } else if (id_text.empty() || ec != std::errc{} ||
               ptr != id_text.data() + id_text.size()) {
      status = 400;
      body = "{\"error\":\"bad user id\"}";
    } else {
      std::optional<stream::UserVerdicts> verdicts;
      if (!run_quiesced(r, [&] { verdicts = engine_->user_verdicts(id); })) {
        status = 503;  // crashing; the connection dies with the daemon
        body = "{\"error\":\"shutting down\"}";
      } else if (verdicts) {
        status = 200;
        body = user_verdicts_json(*verdicts);
      } else {
        status = 404;
        body = "{\"error\":\"unknown user\"}";
      }
    }
  } else if (req.target.rfind("/v1/users/", 0) == 0 &&
             req.target.size() > 10 &&
             req.target.compare(req.target.size() - 6, 6, "/score") == 0) {
    route = "/v1/users/{id}/score";
    const std::string_view id_text =
        std::string_view(req.target).substr(10, req.target.size() - 16);
    trace::UserId id = 0;
    const auto [ptr, ec] =
        std::from_chars(id_text.data(), id_text.data() + id_text.size(), id);
    if (req.method != "GET") {
      respond_method_not_allowed("/v1/users/{id}/score");
    } else if (!engine_->scoring_enabled()) {
      status = 409;
      body = "{\"error\":\"serving without a model\"}";
    } else if (id_text.empty() || ec != std::errc{} ||
               ptr != id_text.data() + id_text.size()) {
      status = 400;
      body = "{\"error\":\"bad user id\"}";
    } else {
      std::optional<score::UserScoreSnapshot> snap;
      if (!run_quiesced(r, [&] { snap = engine_->user_score(id); })) {
        status = 503;  // crashing; the connection dies with the daemon
        body = "{\"error\":\"shutting down\"}";
      } else if (snap) {
        status = 200;
        body = "{\"user\":" + std::to_string(id) + ",\"score\":";
        append_json_number(body, snap->score);
        body += ",\"live_score\":";
        append_json_number(body, snap->live_score);
        body += ",\"checkins\":";
        append_json_number(body, snap->checkins);
        body += "}";
      } else {
        status = 404;
        body = "{\"error\":\"unknown user\"}";
      }
    }
  } else if (req.target == "/v1/suspects" ||
             req.target.rfind("/v1/suspects?k=", 0) == 0) {
    route = "/v1/suspects";
    std::size_t k = 10;
    bool k_ok = true;
    if (req.target != "/v1/suspects") {
      const std::string_view k_text =
          std::string_view(req.target).substr(15);
      const auto [ptr, ec] =
          std::from_chars(k_text.data(), k_text.data() + k_text.size(), k);
      k_ok = !k_text.empty() && ec == std::errc{} &&
             ptr == k_text.data() + k_text.size();
    }
    if (req.method != "GET") {
      respond_method_not_allowed("/v1/suspects");
    } else if (!engine_->scoring_enabled()) {
      status = 409;
      body = "{\"error\":\"serving without a model\"}";
    } else if (!k_ok) {
      status = 400;
      body = "{\"error\":\"bad k\"}";
    } else {
      std::vector<score::SuspectEntry> suspects;
      if (!run_quiesced(r, [&] { suspects = engine_->top_suspects(k); })) {
        status = 503;  // crashing; the connection dies with the daemon
        body = "{\"error\":\"shutting down\"}";
      } else {
        status = 200;
        body = "{\"k\":" + std::to_string(k) + ",\"suspects\":[";
        bool first = true;
        for (const score::SuspectEntry& s : suspects) {
          if (!first) body += ",";
          first = false;
          body += "{\"user\":" + std::to_string(s.user) + ",\"score\":";
          append_json_number(body, s.score);
          body += ",\"checkins\":";
          append_json_number(body, s.checkins);
          body += "}";
        }
        body += "]}";
      }
    }
  } else if (req.target == "/admin/checkpoint") {
    route = "/admin/checkpoint";
    if (req.method != "POST") {
      respond_method_not_allowed("/admin/checkpoint");
    } else if (config_.checkpoint_dir.empty()) {
      status = 409;
      body = "{\"error\":\"serving without a checkpoint directory\"}";
    } else {
      std::filesystem::path path;
      if (run_quiesced(r, [&] { path = write_checkpoint_now(); })) {
        records_since_checkpoint_.store(0, std::memory_order_relaxed);
        status = 200;
        body = "{\"cursor\":" +
               std::to_string(cursor_.load(std::memory_order_relaxed)) +
               ",\"path\":\"" + path.string() + "\"}";
      } else {
        status = 503;  // crashing; the connection dies with the daemon
        body = "{\"error\":\"shutting down\"}";
      }
    }
  } else if (req.target == "/admin/drain") {
    route = "/admin/drain";
    if (req.method != "POST") {
      respond_method_not_allowed("/admin/drain");
    } else if (drain_done_.load(std::memory_order_relaxed)) {
      // A drain already completed; answer straight away (the loop is
      // about to exit).
      status = 200;
      body = "{\"status\":\"drained\",\"cursor\":" +
             std::to_string(cursor_.load(std::memory_order_relaxed)) + "}";
    } else {
      // Deferred response: every reactor stops accepting ingest, finishes
      // reading its connected streams to EOF, then reactor 0 quiesces all
      // reactors, drains the engine, writes a final checkpoint and only
      // then answers — so a 200 here means "all records you sent are in
      // the verdicts". The loop exits once the answer is flushed.
      drain_requested_.store(true, std::memory_order_relaxed);
      c.awaiting_drain = true;
      if (metrics_) metrics_->http_requests(route, 200).inc();
      return;
    }
  }

  if (metrics_) metrics_->http_requests(route, status).inc();
  c.wbuf += http_response(status, content_type, body, extra_headers);
  c.close_after_write = true;
  flush_write(c);
}

void Server::flush_write(Conn& c) {
  while (c.woff < c.wbuf.size()) {
    const ssize_t n = ::send(c.fd.get(), c.wbuf.data() + c.woff,
                             c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      c.dead = true;  // EPIPE / reset: the client is gone
      return;
    }
    c.woff += static_cast<std::size_t>(n);
    if (metrics_) {
      (c.is_http ? metrics_->bytes_written_http
                 : metrics_->bytes_written_ingest)
          ->inc(static_cast<std::uint64_t>(n));
    }
  }
  c.wbuf.clear();
  c.woff = 0;
  if (c.close_after_write) c.dead = true;
}

void Server::sweep_idle(Reactor& r, Clock::time_point now) {
  if (config_.idle_timeout_s <= 0) return;
  const auto timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.idle_timeout_s));
  for (auto& conn : r.conns) {
    if (conn->dead) continue;
    if (now - conn->last_activity > timeout) {
      if (!conn->is_http) {
        // Whatever half-line (or half-frame) the idle client left behind
        // is dead-lettered, exactly as if it had disconnected mid-record.
        if (conn->mode == Conn::WireMode::kBinary) {
          if (const auto error = conn->frame_decoder.finish()) {
            process_frame_error(*error);
          }
        } else if (const auto fragment = conn->decoder.finish()) {
          process_ingest_line(r, fragment->text, true);
        }
      }
      conn->dead = true;
      if (metrics_) metrics_->idle_timeouts->inc();
    }
  }
}

void Server::park_if_paused(Reactor& r) {
  if (!pause_flag_.load(std::memory_order_acquire)) return;
  // Hand every staged event to the shard mailboxes before reporting
  // parked: once reactor 0 proceeds, the engine must see a complete,
  // single-producer view of everything this reactor has read.
  r.producer.flush();
  std::unique_lock<std::mutex> lock(gate_mu_);
  if (!pause_requested_) return;  // raced with the release
  ++parked_;
  gate_cv_.notify_all();
  gate_cv_.wait(lock, [&] { return !pause_requested_; });
  --parked_;
}

bool Server::run_quiesced(Reactor& r0, const std::function<void()>& op) {
  if (reactors_.size() > 1) {
    pause_flag_.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(gate_mu_);
    pause_requested_ = true;
    // Reactors notice the flag at their loop top, at worst one poll tick
    // away; exiting reactors decrement running_others_ under gate_mu_, so
    // the wait also unblocks when a reactor leaves instead of parking.
    gate_cv_.wait(lock, [&] { return parked_ >= running_others_; });
  }
  r0.producer.flush();
  if (crash_pending_.load(std::memory_order_relaxed)) {
    // A reactor took the simulated SIGKILL while we gathered the
    // rendezvous: it exited without flushing, so the arrived-coverage
    // table now overstates what the engine holds. Running the operation
    // (a checkpoint, a finalize, a query drain) would persist or serve
    // that inconsistent view — bail out and let the crash teardown run.
    // (The running_others_ decrement happens under gate_mu_ after the
    // crash flag is set, so the wait above cannot miss this store.)
    release_gate();
    return false;
  }
  try {
    op();
  } catch (...) {
    release_gate();
    throw;
  }
  release_gate();
  return true;
}

void Server::release_gate() {
  if (reactors_.size() <= 1) return;
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    pause_requested_ = false;
  }
  pause_flag_.store(false, std::memory_order_release);
  gate_cv_.notify_all();
}

void Server::update_lag_gauge() {
  if (!metrics_) return;
  const std::uint64_t routed = routed_.load(std::memory_order_relaxed);
  const std::uint64_t processed = engine_->events_processed();
  metrics_->ingest_lag->set(static_cast<std::int64_t>(
      routed > processed ? routed - processed : 0));
}

std::string Server::summary_json() {
  // drain() inside all_user_verdicts() makes every number exact for the
  // records applied so far — the serve analogue of finish()-then-report.
  // Caller must hold the pause gate (run_quiesced).
  const std::vector<stream::UserVerdicts> users =
      engine_->all_user_verdicts();
  const match::Partition totals = engine_->partition();

  std::uint64_t users_with_checkins = 0;
  double ratio_sum = 0.0;
  std::uint64_t users_with_gaps = 0;
  double burstiness_sum = 0.0;
  for (const stream::UserVerdicts& v : users) {
    if (v.partition.checkins > 0) {
      ++users_with_checkins;
      ratio_sum += v.extraneous_ratio();
    }
    if (v.gap_count > 0) {
      ++users_with_gaps;
      burstiness_sum += v.burstiness();
    }
  }

  std::string out = "{\"users\":";
  append_json_number(out, static_cast<std::uint64_t>(users.size()));
  out += ",\"events_processed\":";
  append_json_number(out,
                     static_cast<std::uint64_t>(engine_->events_processed()));
  out += ",\"records_parsed\":";
  append_json_number(out,
                     records_parsed_.load(std::memory_order_relaxed));
  out += ",\"cursor\":";
  append_json_number(out, cursor_.load(std::memory_order_relaxed));
  out += ",\"partition\":";
  append_partition_json(out, totals);
  out += ",\"prevalence\":{\"users_with_checkins\":";
  append_json_number(out, users_with_checkins);
  out += ",\"mean_extraneous_ratio\":";
  append_json_number(out, users_with_checkins == 0
                              ? 0.0
                              : ratio_sum / static_cast<double>(
                                                users_with_checkins));
  out += "},\"burstiness\":{\"users_with_gaps\":";
  append_json_number(out, users_with_gaps);
  out += ",\"mean\":";
  append_json_number(
      out, users_with_gaps == 0
               ? 0.0
               : burstiness_sum / static_cast<double>(users_with_gaps));
  out += "},\"quarantined\":";
  append_json_number(out, quarantine_->total());
  out += "}";
  return out;
}

void Server::reactor_loop(Reactor& r, const std::atomic<bool>* stop,
                          bool* stopped_out) {
  const bool leader = (r.index == 0);
  std::vector<pollfd> pollfds;
  std::vector<std::size_t> conn_of_pollfd;  // parallel; SIZE_MAX = listener

  while (true) {
    if (stop_all_.load(std::memory_order_relaxed)) break;
    if (crash_pending_.load(std::memory_order_relaxed)) break;
    if (leader) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        if (stopped_out != nullptr) *stopped_out = true;
        break;
      }
      if (drain_done_.load(std::memory_order_relaxed)) {
        // Leave once every drain caller has its answer (or is gone).
        bool waiting = false;
        for (const auto& c : r.conns) {
          if (!c->dead && (c->awaiting_drain || !c->wbuf.empty())) {
            waiting = true;
            break;
          }
        }
        if (!waiting) break;
      }
    } else {
      // Non-zero reactors have no HTTP conns; once the drain completed
      // their remaining work is zero (all ingest conns hit EOF before the
      // drain could finish).
      if (drain_done_.load(std::memory_order_relaxed) && r.conns.empty()) {
        break;
      }
      park_if_paused(r);
    }

    pollfds.clear();
    conn_of_pollfd.clear();
    const bool at_cap =
        total_conns_.load(std::memory_order_relaxed) >=
        config_.max_connections;
    if (leader) {
      if (at_cap && !was_at_cap_ && metrics_) {
        metrics_->accept_backpressure->inc();
      }
      was_at_cap_ = at_cap;
    }
    if (!at_cap && !drain_requested_.load(std::memory_order_relaxed)) {
      // Shared accept: every reactor polls the one ingest listener.
      pollfds.push_back({ingest_listener_.get(), POLLIN, 0});
      conn_of_pollfd.push_back(SIZE_MAX);
    }
    if (leader && !at_cap) {
      // Control plane pinned to reactor 0. Only the ingest listener
      // leaves the poll sets on drain: the control plane stays reachable
      // so probes see /readyz flip to 503 and a fronting router can keep
      // fanning out admin calls.
      pollfds.push_back({http_listener_.get(), POLLIN, 0});
      conn_of_pollfd.push_back(SIZE_MAX - 1);
    }
    for (std::size_t i = 0; i < r.conns.size(); ++i) {
      short events = POLLIN;
      if (r.conns[i]->woff < r.conns[i]->wbuf.size()) events |= POLLOUT;
      pollfds.push_back({r.conns[i]->fd.get(), events, 0});
      conn_of_pollfd.push_back(i);
    }

    const int ready = ::poll(pollfds.empty() ? nullptr : pollfds.data(),
                             static_cast<nfds_t>(pollfds.size()),
                             kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) {
      throw NetError(std::string("poll: ") + std::strerror(errno));
    }
    const Clock::time_point iteration_start = Clock::now();

    for (std::size_t i = 0; i < pollfds.size(); ++i) {
      if (pollfds[i].revents == 0) continue;
      if (conn_of_pollfd[i] == SIZE_MAX) {
        accept_ready(r, ingest_listener_, /*is_http=*/false);
        continue;
      }
      if (conn_of_pollfd[i] == SIZE_MAX - 1) {
        accept_ready(r, http_listener_, /*is_http=*/true);
        continue;
      }
      Conn& c = *r.conns[conn_of_pollfd[i]];
      if (c.dead) continue;
      if ((pollfds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        c.dead = true;
        continue;
      }
      if ((pollfds[i].revents & POLLOUT) != 0) flush_write(c);
      if (!c.dead && (pollfds[i].revents & (POLLIN | POLLHUP)) != 0) {
        handle_read(r, c);
      }
    }

    sweep_idle(r, Clock::now());

    // Reap dead connections (after the revents pass: indices stay stable
    // while handlers run); release their cap slots.
    for (const auto& c : r.conns) {
      if (!c->dead) continue;
      total_conns_.fetch_sub(1, std::memory_order_relaxed);
      if (c->is_http) {
        --active_http_;  // leader-only field, and HTTP lives on the leader
      } else {
        active_ingest_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    r.conns.erase(std::remove_if(r.conns.begin(), r.conns.end(),
                                 [](const std::unique_ptr<Conn>& c) {
                                   return c->dead;
                                 }),
                  r.conns.end());
    if (leader && metrics_) {
      metrics_->active_http->set(static_cast<std::int64_t>(active_http_));
      metrics_->active_ingest->set(static_cast<std::int64_t>(
          active_ingest_.load(std::memory_order_relaxed)));
    }

    // Drain completion (leader only): every ingest stream everywhere has
    // been read to EOF and reaped (clients either closed or were
    // idle-swept), so the record set is final — park all reactors, flush
    // every producer, quiesce the engine, persist, finalize, and answer
    // the waiting caller(s).
    if (leader && drain_requested_.load(std::memory_order_relaxed) &&
        !drain_done_.load(std::memory_order_relaxed) &&
        active_ingest_.load(std::memory_order_relaxed) == 0) {
      // Checkpoint first (resumable, pre-finalization state), then
      // finish(): finalization resolves the matcher's pending tail exactly
      // like end-of-stream in the batch pipeline, so the partition and the
      // per-user verdicts served after a drain equal a batch run bit for
      // bit.
      const bool finalized = run_quiesced(r, [&] {
        if (!config_.checkpoint_dir.empty()) {
          write_checkpoint_now();
          records_since_checkpoint_.store(0, std::memory_order_relaxed);
        }
        engine_->finish();
      });
      if (finalized) {
        drain_done_.store(true, std::memory_order_release);
        const std::string body =
            "{\"status\":\"drained\",\"cursor\":" +
            std::to_string(cursor_.load(std::memory_order_relaxed)) + "}";
        for (const auto& conn : r.conns) {
          if (conn->dead || !conn->awaiting_drain) continue;
          conn->awaiting_drain = false;
          conn->wbuf += http_response(200, "application/json", body);
          conn->close_after_write = true;
          flush_write(*conn);
        }
      }  // else: the crash hook fired mid-drain; the loop top exits next.
    }

    if (leader && !config_.checkpoint_dir.empty() &&
        config_.checkpoint_interval_records != 0 &&
        records_since_checkpoint_.load(std::memory_order_relaxed) >=
            config_.checkpoint_interval_records) {
      if (run_quiesced(r, [&] { write_checkpoint_now(); })) {
        records_since_checkpoint_.store(0, std::memory_order_relaxed);
      }
    }

    if (leader) update_lag_gauge();

    // Mirror producer stalls into the per-reactor counter and sample the
    // iteration's service time (poll wait excluded).
    if (r.m_stalls != nullptr) {
      const std::uint64_t stalls = r.producer.stalls();
      if (stalls > r.stalls_synced) {
        r.m_stalls->inc(stalls - r.stalls_synced);
        r.stalls_synced = stalls;
      }
    }
    if (r.m_loop_ns != nullptr) {
      r.m_loop_ns->observe(ns_since(iteration_start));
    }
  }

  // Loop exit: on the graceful paths, staged events must reach the engine
  // before the teardown drain/checkpoint. On the crash path everything
  // staged is lost, exactly as a real SIGKILL would lose it. (After a
  // completed drain the staging is already empty — flushed at the
  // rendezvous before finish().)
  if (!crash_pending_.load(std::memory_order_relaxed)) {
    r.producer.flush();
  }
}

ServeStats Server::run(const std::atomic<bool>* stop) {
  if (!started_) throw std::logic_error("Server::run before start()");

  bool stopped = false;
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    running_others_ = reactors_.size() - 1;
    parked_ = 0;
  }
  std::vector<std::thread> threads;
  threads.reserve(reactors_.size() - 1);
  for (std::size_t i = 1; i < reactors_.size(); ++i) {
    threads.emplace_back([this, i] {
      try {
        reactor_loop(*reactors_[i], nullptr, nullptr);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu_);
          if (!reactor_error_) reactor_error_ = std::current_exception();
        }
        // A dead reactor cannot keep its conns or staging honest; treat
        // it as a crash so teardown abandons instead of checkpointing a
        // partial view.
        crash_pending_.store(true, std::memory_order_relaxed);
      }
      {
        std::lock_guard<std::mutex> lock(gate_mu_);
        --running_others_;
      }
      gate_cv_.notify_all();
    });
  }

  try {
    reactor_loop(*reactors_[0], stop, &stopped);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!reactor_error_) reactor_error_ = std::current_exception();
    crash_pending_.store(true, std::memory_order_relaxed);
  }
  stop_all_.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  // Teardown. Crash simulation abandons everything in flight (recovery
  // must come from the last periodic checkpoint, as after a real SIGKILL);
  // the graceful paths quiesce and persist. All reactor threads are
  // joined, so the engine is single-producer again from here on.
  ingest_listener_.reset();
  http_listener_.reset();
  for (auto& reactor : reactors_) reactor->conns.clear();
  total_conns_.store(0, std::memory_order_relaxed);
  active_ingest_.store(0, std::memory_order_relaxed);
  active_http_ = 0;
  if (crash_pending_.load(std::memory_order_relaxed)) {
    engine_->shutdown();
    stats_.exit = ServeExit::kCrashed;
  } else if (drain_done_.load(std::memory_order_relaxed)) {
    // Already checkpointed and finalized in the drain-completion step.
    stats_.exit = ServeExit::kDrained;
  } else {
    engine_->drain();
    if (!config_.checkpoint_dir.empty()) write_checkpoint_now();
    stats_.exit = stopped ? ServeExit::kStopped : ServeExit::kDrained;
  }
  stats_.records_parsed = records_parsed_.load(std::memory_order_relaxed);
  stats_.records_applied = records_applied_.load(std::memory_order_relaxed);
  stats_.records_replayed =
      records_replayed_.load(std::memory_order_relaxed);
  stats_.records_malformed =
      records_malformed_.load(std::memory_order_relaxed);
  stats_.http_requests = http_requests_.load(std::memory_order_relaxed);
  stats_.connections = connections_.load(std::memory_order_relaxed);
  stats_.cursor = cursor_.load(std::memory_order_relaxed);
  stats_.restored_cursor = restored_cursor_;

  // A reactor-thread failure is a runtime error, not a clean exit: report
  // it exactly like the single-threaded loop reported a poll failure.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = reactor_error_;
  }
  if (error) std::rethrow_exception(error);
  return stats_;
}

}  // namespace geovalid::serve
