#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "match/classifier.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "stream/checkpoint.h"
#include "stream/snapshot_io.h"

namespace geovalid::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Poll tick: the idle sweep / checkpoint / stop-flag granularity.
constexpr int kPollTimeoutMs = 100;

/// Per-connection read budget per loop iteration, so one firehose client
/// cannot starve the others between polls.
constexpr std::size_t kReadBudgetBytes = 256 * 1024;

/// The fixed route vocabulary of serve_http_requests_total{route=...} —
/// unknown targets collapse into "other" so hostile clients cannot mint
/// unbounded label values.
constexpr const char* kRouteLabels[] = {
    "/healthz",          "/readyz",        "/metrics",
    "/v1/summary",       "/v1/users/{id}/verdicts",
    "/admin/checkpoint", "/admin/drain",   "other",
};

void append_json_number(std::string& out, double v) {
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

void append_json_number(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_partition_json(std::string& out, const match::Partition& p) {
  out += "{\"honest\":";
  append_json_number(out, static_cast<std::uint64_t>(p.honest));
  out += ",\"extraneous\":";
  append_json_number(out, static_cast<std::uint64_t>(p.extraneous));
  out += ",\"missing\":";
  append_json_number(out, static_cast<std::uint64_t>(p.missing));
  out += ",\"checkins\":";
  append_json_number(out, static_cast<std::uint64_t>(p.checkins));
  out += ",\"visits\":";
  append_json_number(out, static_cast<std::uint64_t>(p.visits));
  out += ",\"by_class\":{";
  for (std::size_t c = 0; c < match::kCheckinClassCount; ++c) {
    if (c > 0) out += ',';
    out += '"';
    out += match::to_string(static_cast<match::CheckinClass>(c));
    out += "\":";
    append_json_number(out, static_cast<std::uint64_t>(p.by_class[c]));
  }
  out += "}}";
}

std::string user_verdicts_json(const stream::UserVerdicts& v) {
  std::string out = "{\"user\":";
  append_json_number(out, static_cast<std::uint64_t>(v.id));
  out += ",\"partition\":";
  append_partition_json(out, v.partition);
  out += ",\"extraneous_ratio\":";
  append_json_number(out, v.extraneous_ratio());
  out += ",\"interarrival\":{\"gaps\":";
  append_json_number(out, v.gap_count);
  out += ",\"mean_min\":";
  append_json_number(out, v.gap_mean_min);
  out += ",\"stddev_min\":";
  append_json_number(out, v.gap_stddev_min());
  out += ",\"burstiness\":";
  append_json_number(out, v.burstiness());
  out += "}}";
  return out;
}

}  // namespace

/// One accepted socket, either protocol. Response bytes queue in `wbuf`
/// and drip out under POLLOUT, so a slow reader never blocks the loop.
struct Server::Conn {
  Fd fd;
  bool is_http = false;
  bool dead = false;
  bool close_after_write = false;
  bool awaiting_drain = false;  ///< /admin/drain caller; answered once the
                                ///< ingest side has quiesced
  LineDecoder decoder;
  HttpRequestParser parser;
  std::string wbuf;
  std::size_t woff = 0;
  Clock::time_point last_activity;

  explicit Conn(Fd socket, bool http, std::size_t max_line_bytes)
      : fd(std::move(socket)), is_http(http), decoder(max_line_bytes) {
    last_activity = Clock::now();
  }
};

/// Cached serve_* metric handles (null when ServeConfig::metrics is off).
struct Server::Metrics {
  obs::Counter* connections_ingest = nullptr;
  obs::Counter* connections_http = nullptr;
  obs::Gauge* active_ingest = nullptr;
  obs::Gauge* active_http = nullptr;
  obs::Counter* bytes_read_ingest = nullptr;
  obs::Counter* bytes_read_http = nullptr;
  obs::Counter* bytes_written_ingest = nullptr;
  obs::Counter* bytes_written_http = nullptr;
  obs::Counter* records_applied = nullptr;
  obs::Counter* records_replayed = nullptr;
  obs::Counter* records_malformed = nullptr;
  obs::Gauge* ingest_lag = nullptr;
  obs::Counter* idle_timeouts = nullptr;
  obs::Counter* accept_backpressure = nullptr;

  /// serve_http_requests_total{route,status}; statuses appear lazily, the
  /// route vocabulary is fixed (kRouteLabels).
  obs::Counter& http_requests(const std::string& route, int status) {
    return obs::registry().counter(
        "serve_http_requests_total",
        "Control-plane requests served, by route and response status",
        {{"route", route}, {"status", std::to_string(status)}});
  }
};

Server::Server(ServeConfig config) : config_(std::move(config)) {
  quarantine_.emplace(config_.quarantine);
  // A network feed is never trusted: the quarantine path is always on, so
  // malformed payloads degrade to dead letters instead of poisoning the
  // engine (ISSUE: "typed rejection into the quarantine path").
  config_.engine.quarantine = &*quarantine_;
  engine_.emplace(config_.engine);
  if (config_.metrics) register_metrics();
}

Server::~Server() = default;

void Server::register_metrics() {
  obs::Registry& r = obs::registry();
  metrics_ = std::make_unique<Metrics>();
  Metrics& m = *metrics_;
  static constexpr std::string_view kConnHelp =
      "Connections accepted, by listener kind";
  m.connections_ingest =
      &r.counter("serve_connections_total", kConnHelp, {{"kind", "ingest"}});
  m.connections_http =
      &r.counter("serve_connections_total", kConnHelp, {{"kind", "http"}});
  static constexpr std::string_view kActiveHelp =
      "Currently open connections, by listener kind";
  m.active_ingest =
      &r.gauge("serve_connections_active", kActiveHelp, {{"kind", "ingest"}});
  m.active_http =
      &r.gauge("serve_connections_active", kActiveHelp, {{"kind", "http"}});
  static constexpr std::string_view kReadHelp =
      "Bytes received from clients, by listener kind";
  m.bytes_read_ingest =
      &r.counter("serve_bytes_read_total", kReadHelp, {{"kind", "ingest"}});
  m.bytes_read_http =
      &r.counter("serve_bytes_read_total", kReadHelp, {{"kind", "http"}});
  static constexpr std::string_view kWriteHelp =
      "Bytes sent to clients, by listener kind";
  m.bytes_written_ingest = &r.counter("serve_bytes_written_total", kWriteHelp,
                                      {{"kind", "ingest"}});
  m.bytes_written_http = &r.counter("serve_bytes_written_total", kWriteHelp,
                                    {{"kind", "http"}});
  static constexpr std::string_view kRecordHelp =
      "Ingest records, by outcome: applied to the engine, replayed "
      "(checkpoint-covered prefix after a resume), malformed "
      "(dead-lettered)";
  m.records_applied = &r.counter("serve_ingest_records_total", kRecordHelp,
                                 {{"result", "applied"}});
  m.records_replayed = &r.counter("serve_ingest_records_total", kRecordHelp,
                                  {{"result", "replayed"}});
  m.records_malformed = &r.counter("serve_ingest_records_total", kRecordHelp,
                                   {{"result", "malformed"}});
  m.ingest_lag = &r.gauge(
      "serve_ingest_lag_events",
      "Events accepted by the server but not yet processed by the engine "
      "workers (in-flight depth)");
  m.idle_timeouts = &r.counter(
      "serve_idle_timeouts_total",
      "Connections closed by the idle sweep");
  m.accept_backpressure = &r.counter(
      "serve_accept_backpressure_total",
      "Times the listeners left the poll set because the connection cap "
      "was reached (new clients wait in the kernel backlog)");
  // Pre-register the fixed route vocabulary with the success status, so a
  // scrape (and the obs-docs test) sees the family before any request.
  for (const char* route : kRouteLabels) m.http_requests(route, 200);
}

void Server::start() {
  if (started_) throw std::logic_error("Server::start called twice");
  if (config_.resume && !config_.checkpoint_dir.empty()) {
    restore_from_checkpoint();
  }
  ingest_listener_ = tcp_listen(config_.host, config_.ingest_port);
  ingest_port_ = local_port(ingest_listener_.get());
  http_listener_ = tcp_listen(config_.host, config_.http_port);
  http_port_ = local_port(http_listener_.get());
  started_ = true;
}

void Server::restore_from_checkpoint() {
  const auto restored = stream::restore_latest(config_.checkpoint_dir);
  if (!restored) return;
  // Serve payload: per-user accepted-record coverage, then the engine
  // payload as an opaque blob.
  stream::SnapshotReader r(restored->payload);
  const std::uint64_t users = r.u64();
  for (std::uint64_t i = 0; i < users; ++i) {
    const trace::UserId id = r.u32();
    const std::uint64_t count = r.u64();
    if (count == 0 || !resumed_.emplace(id, count).second) {
      throw stream::SnapshotError(
          "snapshot: malformed serve coverage table");
    }
  }
  const std::string engine_payload = r.blob();
  if (!r.exhausted()) {
    throw stream::SnapshotError(
        "snapshot: trailing bytes after serve state");
  }
  engine_->load_state(engine_payload);
  cursor_ = restored->cursor;
  restored_cursor_ = restored->cursor;
}

std::uint64_t Server::resumed_count(trace::UserId user) const {
  const auto it = resumed_.find(user);
  return it == resumed_.end() ? 0 : it->second;
}

std::filesystem::path Server::write_checkpoint_now() {
  // Coverage per user: everything arrived this lifetime, or restored from
  // the previous one — whichever is further (a user may not have re-sent
  // its full prefix yet when a checkpoint fires mid-replay).
  std::vector<std::pair<trace::UserId, std::uint64_t>> coverage(
      arrived_.begin(), arrived_.end());
  for (const auto& [id, count] : resumed_) {
    bool merged = false;
    for (auto& [cid, ccount] : coverage) {
      if (cid == id) {
        ccount = std::max(ccount, count);
        merged = true;
        break;
      }
    }
    if (!merged) coverage.emplace_back(id, count);
  }
  std::sort(coverage.begin(), coverage.end());

  stream::SnapshotWriter w;
  w.u64(coverage.size());
  for (const auto& [id, count] : coverage) {
    w.u32(id);
    w.u64(count);
  }
  w.blob(engine_->save_state());  // drains; quarantine flushed with it
  return stream::write_checkpoint(config_.checkpoint_dir,
                                  {cursor_, w.take()});
}

void Server::accept_ready(Fd& listener, bool is_http) {
  while (conns_.size() < config_.max_connections) {
    const int cfd = ::accept4(listener.get(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN, or a transient kernel error: retry next round
    }
    conns_.push_back(std::make_unique<Conn>(Fd(cfd), is_http,
                                            config_.max_line_bytes));
    ++stats_.connections;
    if (is_http) {
      ++active_http_;
      if (metrics_) {
        metrics_->connections_http->inc();
        metrics_->active_http->set(static_cast<std::int64_t>(active_http_));
      }
    } else {
      ++active_ingest_;
      if (metrics_) {
        metrics_->connections_ingest->inc();
        metrics_->active_ingest->set(
            static_cast<std::int64_t>(active_ingest_));
      }
    }
  }
}

void Server::process_ingest_line(std::string_view text, bool truncated) {
  if (truncated) {
    ++stats_.records_malformed;
    if (metrics_) metrics_->records_malformed->inc();
    quarantine_->record_raw(text, stream::QuarantineReason::kMalformedLine);
    return;
  }
  if (text.empty()) return;  // blank keepalive line
  const WireResult result = parse_wire_record(text);
  if (const auto* error = std::get_if<WireError>(&result)) {
    ++stats_.records_malformed;
    if (metrics_) metrics_->records_malformed->inc();
    quarantine_->record_raw(text, stream::QuarantineReason::kMalformedLine);
    (void)error;
    return;
  }
  const stream::Event& e = std::get<stream::Event>(result);
  ++stats_.records_parsed;
  const std::uint64_t arrived = ++arrived_[e.user];
  if (arrived <= resumed_count(e.user)) {
    // Checkpoint-covered prefix re-sent after a resume: the engine state
    // already includes it. Skipping here is what turns the clients'
    // at-least-once redelivery into exactly-once application.
    ++stats_.records_replayed;
    if (metrics_) metrics_->records_replayed->inc();
  } else {
    // push() may block on engine backpressure — that is the design: TCP
    // receive buffers fill and the feed slows to what the shards sustain.
    if (engine_->push(e)) ++routed_;
    ++cursor_;
    ++records_since_checkpoint_;
    ++stats_.records_applied;
    if (metrics_) metrics_->records_applied->inc();
  }
  if (config_.crash_after_records != 0 &&
      stats_.records_parsed >= config_.crash_after_records) {
    crash_pending_ = true;
  }
}

void Server::handle_ingest_eof(Conn& c) {
  if (const auto fragment = c.decoder.finish()) {
    // Abrupt mid-record disconnect: the unterminated tail is dead-lettered,
    // never half-parsed into the engine.
    process_ingest_line(fragment->text, true);
  }
  c.dead = true;
}

void Server::handle_read(Conn& c) {
  char buf[65536];
  std::size_t budget = kReadBudgetBytes;
  while (budget > 0 && !c.dead && !crash_pending_) {
    const ssize_t n =
        ::recv(c.fd.get(), buf, std::min(sizeof(buf), budget), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      c.dead = true;
      return;
    }
    if (n == 0) {  // orderly EOF
      if (c.is_http) {
        c.dead = true;
      } else {
        handle_ingest_eof(c);
      }
      return;
    }
    budget -= static_cast<std::size_t>(n);
    c.last_activity = Clock::now();
    const std::string_view chunk(buf, static_cast<std::size_t>(n));
    if (metrics_) {
      (c.is_http ? metrics_->bytes_read_http : metrics_->bytes_read_ingest)
          ->inc(static_cast<std::uint64_t>(n));
    }
    if (c.is_http) {
      const auto state = c.parser.consume(chunk);
      if (state == HttpRequestParser::State::kDone) {
        route_request(c);
        return;
      }
      if (state == HttpRequestParser::State::kError) {
        ++stats_.http_requests;
        if (metrics_) {
          metrics_->http_requests("other", c.parser.error_status()).inc();
        }
        c.wbuf += http_response(c.parser.error_status(), "text/plain",
                                c.parser.error() + "\n");
        c.close_after_write = true;
        flush_write(c);
        return;
      }
    } else {
      c.decoder.feed(chunk);
      while (auto line = c.decoder.next()) {
        process_ingest_line(line->text, line->truncated);
        if (crash_pending_) return;
      }
    }
  }
}

void Server::route_request(Conn& c) {
  const HttpRequest& req = c.parser.request();
  ++stats_.http_requests;

  std::string route = "other";
  int status = 404;
  std::string body = "{\"error\":\"not found\"}";
  std::string content_type = "application/json";

  const auto respond_method_not_allowed = [&](const char* route_name) {
    route = route_name;
    status = 405;
    body = "{\"error\":\"method not allowed\"}";
  };

  if (req.target == "/healthz") {
    route = "/healthz";
    if (req.method == "GET") {
      status = 200;
      content_type = "text/plain";
      body = "ok\n";
    } else {
      respond_method_not_allowed("/healthz");
    }
  } else if (req.target == "/readyz") {
    // Readiness, as distinct from /healthz liveness: a draining daemon is
    // alive but must not receive new traffic, which is what a router or
    // orchestrator keys on. The other not-ready phase — checkpoint
    // restore — runs synchronously in start() before the listeners bind,
    // so it is correctly reported by connection refusal.
    route = "/readyz";
    if (req.method == "GET") {
      if (drain_requested_) {
        status = 503;
        body = "{\"error\":\"draining\"}";
      } else {
        status = 200;
        content_type = "text/plain";
        body = "ready\n";
      }
    } else {
      respond_method_not_allowed("/readyz");
    }
  } else if (req.target == "/metrics") {
    route = "/metrics";
    if (req.method == "GET") {
      update_lag_gauge();
      status = 200;
      content_type = std::string(obs::kPrometheusContentType);
      body = obs::to_prometheus(obs::registry());
    } else {
      respond_method_not_allowed("/metrics");
    }
  } else if (req.target == "/v1/summary") {
    route = "/v1/summary";
    if (req.method == "GET") {
      status = 200;
      body = summary_json();
    } else {
      respond_method_not_allowed("/v1/summary");
    }
  } else if (req.target.rfind("/v1/users/", 0) == 0 &&
             req.target.size() > 10 &&
             req.target.compare(req.target.size() - 9, 9, "/verdicts") ==
                 0) {
    route = "/v1/users/{id}/verdicts";
    const std::string_view id_text =
        std::string_view(req.target).substr(10, req.target.size() - 19);
    trace::UserId id = 0;
    const auto [ptr, ec] =
        std::from_chars(id_text.data(), id_text.data() + id_text.size(), id);
    if (req.method != "GET") {
      respond_method_not_allowed("/v1/users/{id}/verdicts");
    } else if (id_text.empty() || ec != std::errc{} ||
               ptr != id_text.data() + id_text.size()) {
      status = 400;
      body = "{\"error\":\"bad user id\"}";
    } else if (const auto verdicts = engine_->user_verdicts(id)) {
      status = 200;
      body = user_verdicts_json(*verdicts);
    } else {
      status = 404;
      body = "{\"error\":\"unknown user\"}";
    }
  } else if (req.target == "/admin/checkpoint") {
    route = "/admin/checkpoint";
    if (req.method != "POST") {
      respond_method_not_allowed("/admin/checkpoint");
    } else if (config_.checkpoint_dir.empty()) {
      status = 409;
      body = "{\"error\":\"serving without a checkpoint directory\"}";
    } else {
      const std::filesystem::path path = write_checkpoint_now();
      records_since_checkpoint_ = 0;
      status = 200;
      body = "{\"cursor\":" + std::to_string(cursor_) + ",\"path\":\"" +
             path.string() + "\"}";
    }
  } else if (req.target == "/admin/drain") {
    route = "/admin/drain";
    if (req.method != "POST") {
      respond_method_not_allowed("/admin/drain");
    } else if (drain_done_) {
      // A drain already completed; answer straight away (the loop is
      // about to exit).
      status = 200;
      body = "{\"status\":\"drained\",\"cursor\":" + std::to_string(cursor_) +
             "}";
    } else {
      // Deferred response: the daemon stops accepting, finishes reading
      // every connected ingest stream to EOF, drains the engine, writes a
      // final checkpoint, and only then answers — so a 200 here means "all
      // records you sent are in the verdicts". The loop exits once the
      // answer is flushed.
      drain_requested_ = true;
      c.awaiting_drain = true;
      if (metrics_) metrics_->http_requests(route, 200).inc();
      return;
    }
  }

  if (metrics_) metrics_->http_requests(route, status).inc();
  c.wbuf += http_response(status, content_type, body);
  c.close_after_write = true;
  flush_write(c);
}

void Server::flush_write(Conn& c) {
  while (c.woff < c.wbuf.size()) {
    const ssize_t n = ::send(c.fd.get(), c.wbuf.data() + c.woff,
                             c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      c.dead = true;  // EPIPE / reset: the client is gone
      return;
    }
    c.woff += static_cast<std::size_t>(n);
    if (metrics_) {
      (c.is_http ? metrics_->bytes_written_http
                 : metrics_->bytes_written_ingest)
          ->inc(static_cast<std::uint64_t>(n));
    }
  }
  c.wbuf.clear();
  c.woff = 0;
  if (c.close_after_write) c.dead = true;
}

void Server::sweep_idle(Clock::time_point now) {
  if (config_.idle_timeout_s <= 0) return;
  const auto timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.idle_timeout_s));
  for (auto& conn : conns_) {
    if (conn->dead) continue;
    if (now - conn->last_activity > timeout) {
      if (!conn->is_http) {
        // Whatever half-line the idle client left behind is dead-lettered,
        // exactly as if it had disconnected mid-record.
        if (const auto fragment = conn->decoder.finish()) {
          process_ingest_line(fragment->text, true);
        }
      }
      conn->dead = true;
      if (metrics_) metrics_->idle_timeouts->inc();
    }
  }
}

void Server::update_lag_gauge() {
  if (!metrics_) return;
  const std::uint64_t processed = engine_->events_processed();
  metrics_->ingest_lag->set(static_cast<std::int64_t>(
      routed_ > processed ? routed_ - processed : 0));
}

std::string Server::summary_json() {
  // drain() inside all_user_verdicts() makes every number exact for the
  // records applied so far — the serve analogue of finish()-then-report.
  const std::vector<stream::UserVerdicts> users =
      engine_->all_user_verdicts();
  const match::Partition totals = engine_->partition();

  std::uint64_t users_with_checkins = 0;
  double ratio_sum = 0.0;
  std::uint64_t users_with_gaps = 0;
  double burstiness_sum = 0.0;
  for (const stream::UserVerdicts& v : users) {
    if (v.partition.checkins > 0) {
      ++users_with_checkins;
      ratio_sum += v.extraneous_ratio();
    }
    if (v.gap_count > 0) {
      ++users_with_gaps;
      burstiness_sum += v.burstiness();
    }
  }

  std::string out = "{\"users\":";
  append_json_number(out, static_cast<std::uint64_t>(users.size()));
  out += ",\"events_processed\":";
  append_json_number(out,
                     static_cast<std::uint64_t>(engine_->events_processed()));
  out += ",\"records_parsed\":";
  append_json_number(out, stats_.records_parsed);
  out += ",\"cursor\":";
  append_json_number(out, cursor_);
  out += ",\"partition\":";
  append_partition_json(out, totals);
  out += ",\"prevalence\":{\"users_with_checkins\":";
  append_json_number(out, users_with_checkins);
  out += ",\"mean_extraneous_ratio\":";
  append_json_number(out, users_with_checkins == 0
                              ? 0.0
                              : ratio_sum / static_cast<double>(
                                                users_with_checkins));
  out += "},\"burstiness\":{\"users_with_gaps\":";
  append_json_number(out, users_with_gaps);
  out += ",\"mean\":";
  append_json_number(
      out, users_with_gaps == 0
               ? 0.0
               : burstiness_sum / static_cast<double>(users_with_gaps));
  out += "},\"quarantined\":";
  append_json_number(out, quarantine_->total());
  out += "}";
  return out;
}

ServeStats Server::run(const std::atomic<bool>* stop) {
  if (!started_) throw std::logic_error("Server::run before start()");

  std::vector<pollfd> pollfds;
  std::vector<std::size_t> conn_of_pollfd;  // parallel; SIZE_MAX = listener
  bool stopped = false;

  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      stopped = true;
      break;
    }
    if (crash_pending_) break;
    if (drain_done_) {
      // Leave once every drain caller has its answer (or is gone).
      bool waiting = false;
      for (const auto& c : conns_) {
        if (!c->dead && (c->awaiting_drain || !c->wbuf.empty())) {
          waiting = true;
          break;
        }
      }
      if (!waiting) break;
    }

    pollfds.clear();
    conn_of_pollfd.clear();
    const bool at_cap = conns_.size() >= config_.max_connections;
    if (at_cap && !was_at_cap_ && metrics_) {
      metrics_->accept_backpressure->inc();
    }
    was_at_cap_ = at_cap;
    if (!at_cap && !drain_requested_) {
      pollfds.push_back({ingest_listener_.get(), POLLIN, 0});
      conn_of_pollfd.push_back(SIZE_MAX);
    }
    if (!at_cap) {
      // Only the ingest listener leaves the poll set on drain: the
      // control plane stays reachable so probes see /readyz flip to 503
      // and a fronting router can keep fanning out admin calls.
      pollfds.push_back({http_listener_.get(), POLLIN, 0});
      conn_of_pollfd.push_back(SIZE_MAX - 1);
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      short events = POLLIN;
      if (conns_[i]->woff < conns_[i]->wbuf.size()) events |= POLLOUT;
      pollfds.push_back({conns_[i]->fd.get(), events, 0});
      conn_of_pollfd.push_back(i);
    }

    const int ready = ::poll(pollfds.data(),
                             static_cast<nfds_t>(pollfds.size()),
                             kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) {
      throw NetError(std::string("poll: ") + std::strerror(errno));
    }

    for (std::size_t i = 0; i < pollfds.size(); ++i) {
      if (pollfds[i].revents == 0) continue;
      if (conn_of_pollfd[i] == SIZE_MAX) {
        accept_ready(ingest_listener_, /*is_http=*/false);
        continue;
      }
      if (conn_of_pollfd[i] == SIZE_MAX - 1) {
        accept_ready(http_listener_, /*is_http=*/true);
        continue;
      }
      Conn& c = *conns_[conn_of_pollfd[i]];
      if (c.dead) continue;
      if ((pollfds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        c.dead = true;
        continue;
      }
      if ((pollfds[i].revents & POLLOUT) != 0) flush_write(c);
      if (!c.dead && (pollfds[i].revents & (POLLIN | POLLHUP)) != 0) {
        handle_read(c);
      }
    }

    sweep_idle(Clock::now());

    // Reap dead connections (after the revents pass: indices stay stable
    // while handlers run). Gauges are adjusted before remove_if compacts —
    // the removed tail holds moved-from (null) pointers.
    for (const auto& c : conns_) {
      if (c->dead) (c->is_http ? active_http_ : active_ingest_) -= 1;
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->dead;
                                }),
                 conns_.end());
    if (metrics_) {
      metrics_->active_http->set(static_cast<std::int64_t>(active_http_));
      metrics_->active_ingest->set(
          static_cast<std::int64_t>(active_ingest_));
    }

    // Drain completion: every ingest stream has been read to EOF (clients
    // either closed or were idle-swept), so the record set is final —
    // quiesce the engine, persist, and answer the waiting caller(s).
    if (drain_requested_ && !drain_done_ && active_ingest_ == 0) {
      // Checkpoint first (resumable, pre-finalization state), then
      // finish(): finalization resolves the matcher's pending tail exactly
      // like end-of-stream in the batch pipeline, so the partition and the
      // per-user verdicts served after a drain equal a batch run bit for
      // bit.
      if (!config_.checkpoint_dir.empty()) {
        write_checkpoint_now();
        records_since_checkpoint_ = 0;
      }
      engine_->finish();
      drain_done_ = true;
      const std::string body = "{\"status\":\"drained\",\"cursor\":" +
                               std::to_string(cursor_) + "}";
      for (const auto& conn : conns_) {
        if (conn->dead || !conn->awaiting_drain) continue;
        conn->awaiting_drain = false;
        conn->wbuf += http_response(200, "application/json", body);
        conn->close_after_write = true;
        flush_write(*conn);
      }
    }

    if (!config_.checkpoint_dir.empty() &&
        config_.checkpoint_interval_records != 0 &&
        records_since_checkpoint_ >= config_.checkpoint_interval_records) {
      write_checkpoint_now();
      records_since_checkpoint_ = 0;
    }

    update_lag_gauge();
  }

  // Teardown. Crash simulation abandons everything in flight (recovery
  // must come from the last periodic checkpoint, as after a real SIGKILL);
  // the graceful paths quiesce and persist.
  ingest_listener_.reset();
  http_listener_.reset();
  conns_.clear();
  active_ingest_ = active_http_ = 0;
  if (crash_pending_) {
    engine_->shutdown();
    stats_.exit = ServeExit::kCrashed;
  } else if (drain_done_) {
    // Already checkpointed and finalized in the drain-completion step.
    stats_.exit = ServeExit::kDrained;
  } else {
    engine_->drain();
    if (!config_.checkpoint_dir.empty()) write_checkpoint_now();
    stats_.exit = stopped ? ServeExit::kStopped : ServeExit::kDrained;
  }
  stats_.cursor = cursor_;
  stats_.restored_cursor = restored_cursor_;
  return stats_;
}

}  // namespace geovalid::serve
