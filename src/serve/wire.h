// Line-delimited ingest wire protocol: the bytes clients stream at the
// serve layer's TCP ingest port.
//
// One record per line, LF or CRLF terminated, same field grammar as the
// CSV datasets (trace/csv.cpp) with a leading kind verb:
//
//   gps,<user>,<t>,<lat>,<lon>,<has_fix>,<wifi>,<accel_var>
//   checkin,<user>,<t>,<poi>,<category>,<lat>,<lon>
//
// Parsing is syntax-only — field count, numeric shape, known category.
// Semantic validation (coordinate ranges, timestamp bounds, per-user
// ordering) stays in the engine's quarantine path, so a record that would
// be quarantined when read from CSV is quarantined identically when it
// arrives over a socket. Lines that never parse go to the dead-letter file
// via Quarantine::record_raw() with reason `malformed_line`.
//
// LineDecoder turns an arbitrary recv() chunking into complete lines: a
// record may straddle any number of reads, and a line longer than the cap
// is surfaced once as truncated, with the remainder discarded up to the
// next newline (the stream resynchronizes instead of poisoning every
// subsequent record).
//
// Alongside the text grammar lives the binary frame format (normative
// byte layout in docs/SERVICE.md): length-prefixed frames carrying a
// columnar batch of records — varint user ids, zigzag-delta timestamps,
// bit-cast little-endian f64 coordinates per snapshot_io's conventions,
// and a CRC32 trailer. The first byte of a frame is 0xB1, which is not
// valid in any text record, so the first byte a connection sends selects
// binary vs. text for that connection's lifetime; existing text clients
// are untouched. BinaryFrameDecoder mirrors LineDecoder's contract:
// arbitrary recv() chunking, typed rejection of malformed frames with a
// hex-prefix detail, and resynchronization so one bad frame never poisons
// the frames behind it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "stream/event.h"

namespace geovalid::serve {

/// Longest accepted ingest line (bytes, terminator excluded). Generously
/// above any well-formed record; a line this long is garbage or abuse.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Why a line failed to parse (the dead-letter detail prefix).
struct WireError {
  std::string message;
};

/// parse_wire_record: an Event, or the reason the line is not one.
using WireResult = std::variant<stream::Event, WireError>;

[[nodiscard]] WireResult parse_wire_record(std::string_view line);

/// Renders an event in the wire grammar, newline included. Doubles use
/// shortest-roundtrip formatting, so parse(format(e)) is bit-exact — the
/// loadgen replays a dataset through a socket without perturbing verdicts.
void append_wire_record(std::string& out, const stream::Event& e);
[[nodiscard]] std::string format_wire_record(const stream::Event& e);

/// Incremental line splitter over a byte stream.
class LineDecoder {
 public:
  explicit LineDecoder(std::size_t max_line_bytes = kMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// One complete line, stripped of its LF/CRLF terminator. `truncated`
  /// marks a line that blew the cap: `text` is the kept prefix, the rest of
  /// the physical line was dropped.
  struct Line {
    std::string_view text;  ///< valid until the next LineDecoder call
    bool truncated = false;
  };

  /// Appends raw bytes from the socket.
  void feed(std::string_view data);

  /// Pops the next complete line, nullopt when more bytes are needed.
  [[nodiscard]] std::optional<Line> next();

  /// The trailing unterminated partial line at connection EOF (an abrupt
  /// mid-record disconnect), if any. Resets the decoder.
  [[nodiscard]] std::optional<Line> finish();

  /// Bytes buffered awaiting a newline.
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_line_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;      ///< consumed prefix of buf_
  bool discarding_ = false;  ///< inside an oversized line, seeking newline
};

// ---------------------------------------------------------------------------
// Binary frame format (docs/SERVICE.md has the normative byte table).
// ---------------------------------------------------------------------------

/// First byte of every binary frame. 0xB1 is outside 7-bit ASCII, so no
/// text-grammar record can start with it — the per-connection format
/// negotiation is a one-byte sniff.
inline constexpr unsigned char kFrameMagic0 = 0xB1;

/// Full 4-byte frame magic: 0xB1 'G' 'V' 'F'.
inline constexpr std::array<unsigned char, 4> kFrameMagic = {0xB1, 'G', 'V',
                                                             'F'};

/// The one frame version this build speaks.
inline constexpr std::uint8_t kFrameVersion = 1;

/// Most records one frame may carry. Encoders split larger batches; a
/// header claiming more is rejected as `bad_header` without trusting its
/// length field.
inline constexpr std::size_t kMaxFrameRecords = 65536;

/// Largest accepted frame payload (bytes, header/trailer excluded). Far
/// above any well-formed kMaxFrameRecords payload; a header claiming more
/// is garbage or abuse, rejected without buffering it.
inline constexpr std::size_t kMaxFramePayloadBytes = 4 * 1024 * 1024;

/// Why a frame was rejected. The names double as the fixed label
/// vocabulary of `serve_wire_malformed_frames_total{reason=...}`.
enum class FrameErrorKind : std::uint8_t {
  kBadMagic,     ///< bytes between frames that are not a frame start
  kBadVersion,   ///< magic ok, version unknown
  kBadHeader,    ///< flags/count/payload_len outside the caps
  kCrcMismatch,  ///< frame complete but the CRC32 trailer disagrees
  kBadPayload,   ///< CRC ok but the columnar payload does not decode
  kTruncated,    ///< connection ended mid-frame
};

inline constexpr std::size_t kFrameErrorKindCount = 6;

[[nodiscard]] std::string_view to_string(FrameErrorKind kind);

/// A rejected frame: the typed reason plus a dead-letter `detail` that
/// carries a hex prefix of the offending bytes (never the raw bytes — the
/// dead-letter file stays one printable record per line).
struct FrameError {
  FrameErrorKind kind = FrameErrorKind::kBadMagic;
  std::string detail;  ///< e.g. "bad_magic bytes=7 hex=b1475600..."
};

/// Encodes one frame carrying `events` (at most kMaxFrameRecords; larger
/// spans must be split by the caller) and appends it to `out`. The
/// encoding is bit-exact: decode(encode(events)) reproduces every field,
/// doubles included, so binary replay cannot perturb verdicts.
void append_binary_frame(std::string& out,
                         std::span<const stream::Event> events);

/// Incremental frame splitter + columnar decoder over a byte stream.
///
/// Error handling never poisons the stream: a frame whose header parsed
/// (so its length field was sane) is skipped wholesale on CRC or payload
/// failure; bytes that are not a frame start are discarded up to the next
/// 0xB1 candidate. Either way the next well-formed frame decodes.
class BinaryFrameDecoder {
 public:
  /// One decoded frame: the records in wire order, plus the frame's size
  /// on the wire (header + payload + trailer) for byte accounting.
  struct Frame {
    std::vector<stream::Event> events;
    std::size_t wire_bytes = 0;
  };

  using Result = std::variant<Frame, FrameError>;

  /// Appends raw bytes from the socket.
  void feed(std::string_view data);

  /// Pops the next complete frame or frame-level error; nullopt when more
  /// bytes are needed.
  [[nodiscard]] std::optional<Result> next();

  /// The trailing incomplete frame at connection EOF (an abrupt mid-frame
  /// disconnect), if any. Resets the decoder.
  [[nodiscard]] std::optional<FrameError> finish();

  /// Bytes buffered awaiting a complete frame.
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  [[nodiscard]] FrameError resync_error(FrameErrorKind kind);

  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

}  // namespace geovalid::serve
