// Line-delimited ingest wire protocol: the bytes clients stream at the
// serve layer's TCP ingest port.
//
// One record per line, LF or CRLF terminated, same field grammar as the
// CSV datasets (trace/csv.cpp) with a leading kind verb:
//
//   gps,<user>,<t>,<lat>,<lon>,<has_fix>,<wifi>,<accel_var>
//   checkin,<user>,<t>,<poi>,<category>,<lat>,<lon>
//
// Parsing is syntax-only — field count, numeric shape, known category.
// Semantic validation (coordinate ranges, timestamp bounds, per-user
// ordering) stays in the engine's quarantine path, so a record that would
// be quarantined when read from CSV is quarantined identically when it
// arrives over a socket. Lines that never parse go to the dead-letter file
// via Quarantine::record_raw() with reason `malformed_line`.
//
// LineDecoder turns an arbitrary recv() chunking into complete lines: a
// record may straddle any number of reads, and a line longer than the cap
// is surfaced once as truncated, with the remainder discarded up to the
// next newline (the stream resynchronizes instead of poisoning every
// subsequent record).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "stream/event.h"

namespace geovalid::serve {

/// Longest accepted ingest line (bytes, terminator excluded). Generously
/// above any well-formed record; a line this long is garbage or abuse.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Why a line failed to parse (the dead-letter detail prefix).
struct WireError {
  std::string message;
};

/// parse_wire_record: an Event, or the reason the line is not one.
using WireResult = std::variant<stream::Event, WireError>;

[[nodiscard]] WireResult parse_wire_record(std::string_view line);

/// Renders an event in the wire grammar, newline included. Doubles use
/// shortest-roundtrip formatting, so parse(format(e)) is bit-exact — the
/// loadgen replays a dataset through a socket without perturbing verdicts.
void append_wire_record(std::string& out, const stream::Event& e);
[[nodiscard]] std::string format_wire_record(const stream::Event& e);

/// Incremental line splitter over a byte stream.
class LineDecoder {
 public:
  explicit LineDecoder(std::size_t max_line_bytes = kMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// One complete line, stripped of its LF/CRLF terminator. `truncated`
  /// marks a line that blew the cap: `text` is the kept prefix, the rest of
  /// the physical line was dropped.
  struct Line {
    std::string_view text;  ///< valid until the next LineDecoder call
    bool truncated = false;
  };

  /// Appends raw bytes from the socket.
  void feed(std::string_view data);

  /// Pops the next complete line, nullopt when more bytes are needed.
  [[nodiscard]] std::optional<Line> next();

  /// The trailing unterminated partial line at connection EOF (an abrupt
  /// mid-record disconnect), if any. Resets the decoder.
  [[nodiscard]] std::optional<Line> finish();

  /// Bytes buffered awaiting a newline.
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_line_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;      ///< consumed prefix of buf_
  bool discarding_ = false;  ///< inside an oversized line, seeking newline
};

}  // namespace geovalid::serve
