#include "serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace geovalid::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("invalid IPv4 address: " + host);
  }
  return addr;
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto la = static_cast<unsigned char>(a[i]);
    const auto lb = static_cast<unsigned char>(b[i]);
    if (std::tolower(la) != std::tolower(lb)) return false;
  }
  return true;
}

std::string build_request(const std::string& host, const std::string& method,
                          const std::string& target, const std::string& body,
                          const std::string& content_type) {
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: " +
                        host + "\r\nConnection: close\r\n";
  if (!body.empty()) {
    request += "Content-Type: " +
               (content_type.empty() ? "application/json" : content_type) +
               "\r\nContent-Length: " + std::to_string(body.size()) +
               "\r\n";
  }
  request += "\r\n";
  request += body;
  return request;
}

HttpResponse parse_response(const std::string& raw, const std::string& method,
                            const std::string& target) {
  HttpResponse resp;
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    throw NetError("http " + method + " " + target + ": short response");
  }
  const std::string status_line = raw.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) {
    throw NetError("http: malformed status line: " + status_line);
  }
  resp.status = std::atoi(status_line.c_str() + sp + 1);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    throw NetError("http: response head never ended");
  }
  resp.headers = raw.substr(line_end + 2, head_end - line_end - 2);
  resp.body = raw.substr(head_end + 4);
  return resp;
}

HttpResponse http_request(const std::string& host, std::uint16_t port,
                          const std::string& method,
                          const std::string& target,
                          const std::string& body = {},
                          const std::string& content_type = {}) {
  Fd fd = tcp_connect(host, port);
  if (!send_all(fd.get(),
                build_request(host, method, target, body, content_type))) {
    throw NetError("http " + method + " " + target + ": peer closed");
  }
  return parse_response(recv_all(fd.get()), method, target);
}

using Clock = std::chrono::steady_clock;

/// Whole milliseconds left before `deadline`; never negative, and a
/// not-yet-expired deadline always reports at least 1 so poll() cannot
/// round a live budget down to a busy-spin or an instant timeout.
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(left.count());
}

[[noreturn]] void throw_deadline(const std::string& what) {
  throw NetError(what + ": deadline exceeded");
}

/// poll() for `events` on `fd` until the deadline; false on expiry.
bool poll_until(int fd, short events, Clock::time_point deadline) {
  while (true) {
    const int budget = remaining_ms(deadline);
    if (budget == 0) return false;
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, budget);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (rc > 0) return true;
  }
}

HttpResponse http_request_deadline(const std::string& host,
                                   std::uint16_t port,
                                   const std::string& method,
                                   const std::string& target, int timeout_ms,
                                   const std::string& body = {},
                                   const std::string& content_type = {}) {
  const std::string what =
      "http " + method + " " + target + " to " + host + ":" +
      std::to_string(port);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  Fd fd = tcp_connect_deadline(host, port, timeout_ms);

  const std::string request =
      build_request(host, method, target, body, content_type);
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd.get(), request.data() + off,
                             request.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!poll_until(fd.get(), POLLOUT, deadline)) throw_deadline(what);
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        throw NetError(what + ": peer closed");
      }
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!poll_until(fd.get(), POLLIN, deadline)) throw_deadline(what);
        continue;
      }
      if (errno == ECONNRESET) break;  // peer reset after its final write
      throw_errno("recv");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  return parse_response(raw, method, target);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd tcp_listen(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), 128) != 0) throw_errno("listen");
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Fd tcp_connect(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const sockaddr_in addr = make_addr(host, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

Fd tcp_connect_deadline(const std::string& host, std::uint16_t port,
                        int timeout_ms) {
  const std::string what = "connect " + host + ":" + std::to_string(port);
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const sockaddr_in addr = make_addr(host, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) throw_errno(what);
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    if (!poll_until(fd.get(), POLLOUT, deadline)) throw_deadline(what);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw NetError(what + ": " + std::strerror(err));
    }
  }
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string recv_all(int fd) {
  std::string out;
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) break;  // peer reset after its final write
      throw_errno("recv");
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string HttpResponse::header(std::string_view name) const {
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t end = headers.find("\r\n", pos);
    if (end == std::string::npos) end = headers.size();
    const std::string_view line =
        std::string_view(headers).substr(pos, end - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos &&
        equals_ignore_case(line.substr(0, colon), name)) {
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      return std::string(value);
    }
    pos = end + 2;
  }
  return {};
}

HttpResponse http_get(const std::string& host, std::uint16_t port,
                      const std::string& target) {
  return http_request(host, port, "GET", target);
}

HttpResponse http_post(const std::string& host, std::uint16_t port,
                       const std::string& target) {
  return http_request(host, port, "POST", target);
}

HttpResponse http_post(const std::string& host, std::uint16_t port,
                       const std::string& target, const std::string& body,
                       const std::string& content_type) {
  return http_request(host, port, "POST", target, body, content_type);
}

HttpResponse http_get_deadline(const std::string& host, std::uint16_t port,
                               const std::string& target, int timeout_ms) {
  return http_request_deadline(host, port, "GET", target, timeout_ms);
}

HttpResponse http_post_deadline(const std::string& host, std::uint16_t port,
                                const std::string& target, int timeout_ms,
                                const std::string& body,
                                const std::string& content_type) {
  return http_request_deadline(host, port, "POST", target, timeout_ms, body,
                               content_type);
}

}  // namespace geovalid::serve
