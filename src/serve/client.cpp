#include "serve/client.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "serve/net.h"
#include "serve/wire.h"

namespace geovalid::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Serialize-and-send granularity; large enough to amortize syscalls,
/// small enough that pacing (when enabled) stays smooth.
constexpr std::size_t kChunkBytes = 64 * 1024;

/// Records per binary frame (and per unpaced text encode batch). Well
/// under wire.h's kMaxFrameRecords; also the encode-timing granularity —
/// clocking per batch keeps the timer out of the per-event hot path so
/// encode_events_per_sec measures serialization, not clock calls.
constexpr std::size_t kFrameRecords = 512;

/// Retry backoff bounds (--retries): base doubles per attempt up to the
/// cap, jittered by stream::backoff_with_jitter so a fleet of feeders
/// does not re-dial a recovering backend in lockstep.
constexpr std::uint32_t kRetryBaseMs = 100;
constexpr std::uint32_t kRetryCapMs = 2000;

struct ConnResult {
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;
  double encode_seconds = 0.0;  ///< time inside encode calls only
  bool failed = false;          ///< peer vanished mid-replay
  bool connect_failed = false;  ///< connection refused / unreachable
  std::uint64_t reconnects = 0;  ///< re-dials made by the retry loop
  bool retry_exhausted = false;  ///< retries used up, replay incomplete
};

enum class AttemptOutcome : std::uint8_t {
  kDone,           ///< shard fully sent, orderly shutdown
  kConnectFailed,  ///< never connected
  kSendFailed,     ///< peer vanished (or an injected fault severed us)
};

AttemptOutcome replay_attempt(const LoadgenConfig& config,
                              const std::vector<stream::Event>& events,
                              const std::string& fault_target,
                              stream::NetFaultInjector* injector,
                              ConnResult& result) {
  // This runs on a bare std::thread: an escaping exception would
  // std::terminate the whole loadgen. A refused connection is a
  // *measurement* during cluster kill/recover runs, not a crash.
  Fd fd;
  try {
    fd = tcp_connect(config.host, config.port);
  } catch (const NetError&) {
    return AttemptOutcome::kConnectFailed;
  }
  std::string chunk;
  chunk.reserve(kChunkBytes + 256);
  const bool paced = config.rate_events_per_sec > 0.0;
  const Clock::time_point start = Clock::now();
  std::uint64_t attempt_events = 0;

  const auto flush = [&]() -> bool {
    if (chunk.empty()) return true;
    try {
      if (!send_all(fd.get(), chunk)) return false;
    } catch (const NetError&) {
      return false;
    }
    result.bytes += chunk.size();
    chunk.clear();
    return true;
  };

  // Paced text keeps its original per-event granularity so --rate
  // behaves identically with and without the A/B changes; binary frames
  // and unpaced text encode (and pace) in kFrameRecords batches unless
  // the config asks for smaller frames.
  const std::size_t frame_records =
      config.frame_records == 0
          ? kFrameRecords
          : std::min(config.frame_records, kFrameRecords);
  const std::size_t batch_records =
      (!config.binary && paced) ? 1 : frame_records;
  for (std::size_t base = 0; base < events.size(); base += batch_records) {
    const std::size_t count =
        std::min(batch_records, events.size() - base);
    const std::span<const stream::Event> batch(events.data() + base, count);
    const Clock::time_point t0 = Clock::now();
    if (config.binary) {
      append_binary_frame(chunk, batch);
    } else {
      for (const stream::Event& e : batch) append_wire_record(chunk, e);
    }
    result.encode_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.events += count;
    attempt_events += count;
    if (chunk.size() >= kChunkBytes) {
      if (!flush()) return AttemptOutcome::kSendFailed;
    }
    if (injector != nullptr) {
      const auto t = injector->on_records(fault_target, count);
      if (t.stall_millis > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(t.stall_millis));
      }
      if (t.reset || t.drop) {
        // Simulated client-side failure: abandon the socket mid-replay
        // (unsent tail included) so the retry path re-dials and re-sends.
        chunk.clear();
        fd.reset();
        return AttemptOutcome::kSendFailed;
      }
    }
    if (paced) {
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(attempt_events) /
                          config.rate_events_per_sec));
      if (!flush()) return AttemptOutcome::kSendFailed;
      std::this_thread::sleep_until(due);
    }
  }
  if (!flush()) return AttemptOutcome::kSendFailed;
  // Orderly shutdown: the server sees EOF with no trailing fragment.
  return AttemptOutcome::kDone;
}

ConnResult replay_connection(const LoadgenConfig& config,
                             const std::vector<stream::Event>& events,
                             std::size_t index) {
  ConnResult result;
  // One injector per connection thread: the plan is shared config, the
  // trigger counters are this connection's own.
  std::optional<stream::NetFaultInjector> injector;
  if (!config.net_faults.empty()) injector.emplace(config.net_faults);
  const std::string fault_target = std::to_string(index);

  for (std::size_t attempt = 0;; ++attempt) {
    const AttemptOutcome outcome = replay_attempt(
        config, events, fault_target,
        injector ? &*injector : nullptr, result);
    if (outcome == AttemptOutcome::kDone) return result;
    if (attempt >= config.retries) {
      if (outcome == AttemptOutcome::kConnectFailed) {
        result.connect_failed = true;
      } else {
        result.failed = true;
      }
      result.retry_exhausted = config.retries > 0;
      return result;
    }
    // Jittered backoff, then re-dial and re-send the shard from the
    // beginning — the full re-send the cluster's epoch protocol expects;
    // the duplicated prefix is skipped router- and serve-side.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        stream::backoff_with_jitter(kRetryBaseMs, kRetryCapMs,
                                    static_cast<std::uint32_t>(attempt),
                                    config.net_faults.seed, index)));
    ++result.reconnects;
  }
}

void append_json_number(std::string& out, double v) {
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

}  // namespace

LoadgenStats run_loadgen(std::span<const stream::Event> events,
                         const LoadgenConfig& config) {
  LoadgenStats stats;
  const std::size_t n = std::max<std::size_t>(1, config.connections);
  stats.connections = n;
  stats.format = config.binary ? "binary" : "text";

  // Stable per-user partition: a user's records always ride the same
  // connection, in trace order.
  std::vector<std::vector<stream::Event>> shards(n);
  for (const stream::Event& e : events) {
    shards[e.user % n].push_back(e);
  }

  std::vector<ConnResult> results(n);
  // Scoring probe: one thread hitting /v1/suspects and a score lookup
  // while the replay runs, then one final probe after it completes (so
  // even an instant replay reports at least one post-ingest answer). The
  // probed user cycles through the trace deterministically — no RNG, so
  // two runs probe the same ids.
  std::atomic<bool> probe_stop{false};
  std::thread prober;
  double suspect_latency_sum = 0.0;
  if (config.probe_suspects && config.http_port != 0) {
    prober = std::thread([&] {
      std::uint64_t iter = 0;
      while (true) {
        const bool last = probe_stop.load(std::memory_order_relaxed);
        const Clock::time_point t0 = Clock::now();
        ++stats.suspect_probes;
        try {
          const HttpResponse resp =
              http_get(config.host, config.http_port, "/v1/suspects?k=5");
          suspect_latency_sum +=
              std::chrono::duration<double>(Clock::now() - t0).count();
          if (resp.status == 200) {
            ++stats.suspect_probes_ok;
            stats.suspects_json = resp.body;
          }
        } catch (const NetError&) {
          // Fail soft, like the summary probe: the count stays, ok does
          // not advance.
        }
        if (!events.empty()) {
          const trace::UserId id =
              events[(iter * 7919) % events.size()].user;
          ++stats.score_probes;
          try {
            const HttpResponse resp =
                http_get(config.host, config.http_port,
                         "/v1/users/" + std::to_string(id) + "/score");
            if (resp.status == 200) ++stats.score_probes_ok;
          } catch (const NetError&) {
          }
        }
        ++iter;
        if (last) return;
        for (int i = 0;
             i < 10 && !probe_stop.load(std::memory_order_relaxed); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }
  const Clock::time_point start = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        results[i] = replay_connection(config, shards[i], i);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  if (prober.joinable()) {
    probe_stop.store(true, std::memory_order_relaxed);
    prober.join();
    if (stats.suspect_probes > 0) {
      stats.suspect_latency_s =
          suspect_latency_sum / static_cast<double>(stats.suspect_probes);
    }
  }
  stats.send_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  double encode_seconds = 0.0;
  for (const ConnResult& r : results) {
    stats.events_sent += r.events;
    stats.bytes_sent += r.bytes;
    encode_seconds += r.encode_seconds;
    if (r.failed) ++stats.failed_connections;
    if (r.connect_failed) ++stats.connect_failures;
    stats.reconnects += r.reconnects;
    if (r.retry_exhausted) stats.retry_exhausted = true;
  }
  if (stats.send_seconds > 0.0) {
    stats.events_per_sec =
        static_cast<double>(stats.events_sent) / stats.send_seconds;
  }
  if (encode_seconds > 0.0) {
    stats.encode_events_per_sec =
        static_cast<double>(stats.events_sent) / encode_seconds;
  }

  if (config.http_port != 0) {
    try {
      const HttpResponse health =
          http_get(config.host, config.http_port, "/healthz");
      stats.healthz_ok = health.status == 200;
      const HttpResponse metrics =
          http_get(config.host, config.http_port, "/metrics");
      stats.metrics_ok =
          metrics.status == 200 &&
          metrics.header("content-type").rfind("text/plain; version=0.0.4",
                                               0) == 0;
      const Clock::time_point t0 = Clock::now();
      const HttpResponse summary =
          http_get(config.host, config.http_port, "/v1/summary");
      stats.summary_latency_s =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (summary.status == 200) stats.summary_json = summary.body;
    } catch (const NetError&) {
      // Control plane unreachable: report the probe flags as failed
      // rather than aborting a replay that already measured the feed.
    }
  }
  return stats;
}

std::string to_json(const LoadgenStats& stats) {
  std::string out = "{\"connections\":";
  out += std::to_string(stats.connections);
  out += ",\"format\":\"";
  out += stats.format;
  out += "\",\"events_sent\":";
  out += std::to_string(stats.events_sent);
  out += ",\"bytes_sent\":";
  out += std::to_string(stats.bytes_sent);
  out += ",\"send_seconds\":";
  append_json_number(out, stats.send_seconds);
  out += ",\"events_per_sec\":";
  append_json_number(out, stats.events_per_sec);
  out += ",\"encode_events_per_sec\":";
  append_json_number(out, stats.encode_events_per_sec);
  out += ",\"failed_connections\":";
  out += std::to_string(stats.failed_connections);
  out += ",\"connect_failures\":";
  out += std::to_string(stats.connect_failures);
  out += ",\"reconnects\":";
  out += std::to_string(stats.reconnects);
  out += ",\"retry_exhausted\":";
  out += stats.retry_exhausted ? "true" : "false";
  out += ",\"healthz_ok\":";
  out += stats.healthz_ok ? "true" : "false";
  out += ",\"metrics_ok\":";
  out += stats.metrics_ok ? "true" : "false";
  out += ",\"summary_latency_s\":";
  append_json_number(out, stats.summary_latency_s);
  out += ",\"suspect_probes\":";
  out += std::to_string(stats.suspect_probes);
  out += ",\"suspect_probes_ok\":";
  out += std::to_string(stats.suspect_probes_ok);
  out += ",\"score_probes\":";
  out += std::to_string(stats.score_probes);
  out += ",\"score_probes_ok\":";
  out += std::to_string(stats.score_probes_ok);
  out += ",\"suspect_latency_s\":";
  append_json_number(out, stats.suspect_latency_s);
  out += ",\"suspects\":";
  out += stats.suspects_json.empty() ? "null" : stats.suspects_json;
  out += ",\"summary\":";
  out += stats.summary_json.empty() ? "null" : stats.summary_json;
  out += "}";
  return out;
}

}  // namespace geovalid::serve
