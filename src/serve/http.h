// Minimal HTTP/1.1 server-side message handling for the serve control
// plane.
//
// Scope is deliberately tiny — the control plane serves five fixed routes
// to curl / Prometheus / the loadgen probe, all with `Connection: close`:
// an incremental request parser (head + optional Content-Length body, hard
// caps on both, tolerant of any recv() chunking) and a response builder.
// No keep-alive, no chunked transfer, no TLS.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace geovalid::serve {

/// Request-head cap: method + target + headers. 8 KiB is curl-friendly
/// and starves slow-loris header drips quickly.
inline constexpr std::size_t kMaxHttpHeadBytes = 8 * 1024;

/// Body cap; the control plane has no body-carrying route that needs more.
inline constexpr std::size_t kMaxHttpBodyBytes = 64 * 1024;

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  /// Header (name, value) pairs in arrival order; names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this (lowercase) name; empty when absent.
  [[nodiscard]] std::string_view header(std::string_view name) const;
};

/// Incremental request parser: feed it recv() chunks until it reports
/// kDone (request() is valid) or kError (error_status()/error() say what
/// to send back before closing).
class HttpRequestParser {
 public:
  enum class State {
    kHead,   ///< still accumulating the request head
    kBody,   ///< head parsed, reading Content-Length bytes
    kDone,   ///< full request available
    kError,  ///< malformed or over a cap; reply error_status() and close
  };

  /// Consumes a chunk; returns the state afterwards. Bytes past the end of
  /// a kDone request are ignored (the server closes after one response).
  State consume(std::string_view data);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const HttpRequest& request() const { return request_; }
  [[nodiscard]] int error_status() const { return error_status_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  State fail(int status, std::string message);
  State parse_head();

  State state_ = State::kHead;
  std::string buf_;
  std::size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_;
};

/// Serializes one response with Content-Length and `Connection: close`.
/// `extra_headers` are appended verbatim (e.g. a Content-Type override is
/// not needed — pass the type directly).
[[nodiscard]] std::string http_response(
    int status, std::string_view content_type, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

/// Canonical reason phrase ("OK", "Not Found", ...); "Unknown" otherwise.
[[nodiscard]] std::string_view http_status_text(int status);

}  // namespace geovalid::serve
