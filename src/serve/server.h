// The geovalid serve daemon: a single-threaded poll() event loop in front
// of the sharded StreamEngine.
//
// Two listeners:
//   - ingest (line-delimited wire protocol, serve/wire.h): every parsed
//     record feeds the live engine; unparseable lines dead-letter through
//     the quarantine path with reason `malformed_line`.
//   - HTTP control plane (serve/http.h): /healthz, /readyz (503 while
//     draining — the router's backend health hook), /metrics (Prometheus
//     text format), /v1/summary, /v1/users/{id}/verdicts (JSON over
//     drain() quiescence), POST /admin/checkpoint and POST /admin/drain.
//
// The loop thread is the engine's single producer, so the query endpoints
// may call drain() and read per-user state directly — the same contract
// save_state() relies on. Slow or hostile clients are bounded by
// per-connection buffers, an idle timeout, and a connection cap that
// removes the listeners from the poll set while full (accept
// backpressure: the kernel backlog, then the clients, absorb the wait).
//
// Resume contract: a checkpoint stores, besides the engine payload, the
// per-user count of records the server had accepted. After a restart with
// `resume`, clients re-send their traces from the beginning and the server
// silently skips each user's already-covered prefix — at-least-once
// delivery in, exactly-once application out, so a kill + restart serves
// verdicts byte-identical to an uninterrupted run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/net.h"
#include "serve/wire.h"
#include "stream/engine.h"
#include "stream/quarantine.h"

namespace geovalid::obs {
class Counter;
class Gauge;
}  // namespace geovalid::obs

namespace geovalid::serve {

struct ServeConfig {
  std::string host = "127.0.0.1";
  std::uint16_t ingest_port = 0;  ///< 0 = ephemeral (read back after start)
  std::uint16_t http_port = 0;    ///< 0 = ephemeral
  std::size_t max_connections = 1024;  ///< combined cap across both ports
  double idle_timeout_s = 60.0;        ///< <= 0 disables the idle sweep
  std::size_t max_line_bytes = kMaxLineBytes;

  /// Checkpoint directory; empty disables checkpointing entirely.
  std::filesystem::path checkpoint_dir;
  /// Periodic checkpoint every this many applied records (0 = only on
  /// graceful stop / drain / POST /admin/checkpoint).
  std::uint64_t checkpoint_interval_records = 100000;
  /// Restore the newest valid checkpoint in checkpoint_dir on start().
  bool resume = false;

  /// Engine settings; the quarantine hook is overwritten (serve always
  /// attaches its own Quarantine — a network feed is never trusted).
  stream::StreamEngineConfig engine;
  stream::QuarantineConfig quarantine;

  /// Register serve_* metric families in the process registry.
  bool metrics = true;

  /// Test hook: simulate a SIGKILL after this many parsed records — the
  /// run loop exits abruptly, no drain, no final checkpoint. 0 = never.
  std::uint64_t crash_after_records = 0;
};

enum class ServeExit : std::uint8_t {
  kStopped,  ///< stop flag (SIGTERM path): final checkpoint written
  kDrained,  ///< POST /admin/drain: final checkpoint written
  kCrashed,  ///< crash_after_records hook: nothing written
};

struct ServeStats {
  ServeExit exit = ServeExit::kStopped;
  std::uint64_t records_parsed = 0;     ///< well-formed wire records seen
  std::uint64_t records_applied = 0;    ///< fed to the engine
  std::uint64_t records_replayed = 0;   ///< skipped as checkpoint-covered
  std::uint64_t records_malformed = 0;  ///< dead-lettered wire lines
  std::uint64_t http_requests = 0;
  std::uint64_t connections = 0;  ///< accepted over the lifetime, both ports
  std::uint64_t cursor = 0;       ///< records covered by the engine state
  std::uint64_t restored_cursor = 0;  ///< checkpoint cursor restored, or 0
};

class Server {
 public:
  explicit Server(ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds both listeners (resolving ephemeral ports) and, with
  /// ServeConfig::resume, restores the newest checkpoint. Call once,
  /// before run() — and before handing the Server to a run thread, so the
  /// bound ports are safe to read from the spawning thread.
  void start();

  [[nodiscard]] std::uint16_t ingest_port() const { return ingest_port_; }
  [[nodiscard]] std::uint16_t http_port() const { return http_port_; }
  [[nodiscard]] std::uint64_t restored_cursor() const {
    return restored_cursor_;
  }

  /// The event loop: serves until `stop` becomes true (graceful — drains
  /// the engine and writes a final checkpoint when a directory is
  /// configured), an /admin/drain completes, or the crash hook fires.
  ServeStats run(const std::atomic<bool>* stop = nullptr);

  /// The live engine (the run-loop thread is its producer; other threads
  /// may only call thread-safe accessors like partition()).
  [[nodiscard]] stream::StreamEngine& engine() { return *engine_; }
  [[nodiscard]] const stream::Quarantine& quarantine() const {
    return *quarantine_;
  }

 private:
  struct Conn;
  struct Metrics;

  void register_metrics();
  void restore_from_checkpoint();
  std::filesystem::path write_checkpoint_now();
  void accept_ready(Fd& listener, bool is_http);
  void handle_read(Conn& c);
  void handle_ingest_eof(Conn& c);
  void process_ingest_line(std::string_view text, bool truncated);
  void route_request(Conn& c);
  void flush_write(Conn& c);
  void sweep_idle(std::chrono::steady_clock::time_point now);
  void update_lag_gauge();
  [[nodiscard]] std::string summary_json();
  [[nodiscard]] std::uint64_t resumed_count(trace::UserId user) const;

  ServeConfig config_;
  std::optional<stream::Quarantine> quarantine_;
  std::optional<stream::StreamEngine> engine_;

  Fd ingest_listener_;
  Fd http_listener_;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t http_port_ = 0;
  bool started_ = false;

  std::vector<std::unique_ptr<Conn>> conns_;
  std::size_t active_ingest_ = 0;
  std::size_t active_http_ = 0;
  bool was_at_cap_ = false;

  /// Per-user records accepted (lifetime, incl. restored coverage) and the
  /// coverage restored from the checkpoint being resumed.
  std::unordered_map<trace::UserId, std::uint64_t> arrived_;
  std::unordered_map<trace::UserId, std::uint64_t> resumed_;
  std::uint64_t cursor_ = 0;
  std::uint64_t restored_cursor_ = 0;
  std::uint64_t records_since_checkpoint_ = 0;
  std::uint64_t routed_ = 0;  ///< events the engine accepted (in-flight base)

  bool drain_requested_ = false;  ///< stop accepting, quiesce ingest
  bool drain_done_ = false;       ///< engine drained, responses queued
  bool crash_pending_ = false;

  ServeStats stats_;
  std::unique_ptr<Metrics> metrics_;
};

}  // namespace geovalid::serve
