// The geovalid serve daemon: N acceptor/reactor event-loop threads in
// front of the sharded StreamEngine.
//
// Reactor model (ServeConfig::reactors, default 1):
//   - Every reactor polls the one shared non-blocking ingest listener
//     (shared accept: the kernel wakes whoever it likes, losers see
//     EAGAIN) and owns the connections it wins outright — poll set, line
//     decoding, write buffers, idle sweep. A global atomic connection
//     count enforces --max-connections without overshoot.
//   - Each reactor feeds the engine through its own
//     stream::StreamEngine::Producer handle: private per-shard staging,
//     handoff under the owning shard's mailbox mutex only. There is no
//     engine-global lock anywhere on the ingest path.
//   - The HTTP control plane is pinned to reactor 0: /healthz, /readyz
//     (503 while draining — the router's backend health hook), /metrics
//     (Prometheus text format), /v1/summary, /v1/users/{id}/verdicts,
//     POST /admin/checkpoint and POST /admin/drain.
//
// Engine-wide quiescence (checkpoints, the query endpoints' drain(), the
// final finish()) runs only on reactor 0, inside a pause-gate rendezvous:
// reactor 0 raises the gate, every other reactor flushes its producer and
// parks at its loop top, reactor 0 runs the operation against the now
// single-producer engine, then releases the gate. With one reactor the
// gate degenerates to a no-op and the daemon behaves exactly like the
// original single-threaded loop.
//
// The per-user ordering contract is preserved by construction: the wire
// protocol already requires each user's records on one connection, one
// connection belongs to one reactor, and one reactor maps to one producer
// handle — so per-user mailbox order equals arrival order.
//
// Slow or hostile clients are bounded per reactor by per-connection
// buffers, an idle timeout, and the global connection cap that removes
// the listeners from every poll set while full (accept backpressure: the
// kernel backlog, then the clients, absorb the wait).
//
// Resume contract: a checkpoint stores, besides the engine payload, the
// per-user count of records the server had accepted. After a restart with
// `resume`, clients re-send their traces from the beginning and the server
// silently skips each user's already-covered prefix — at-least-once
// delivery in, exactly-once application out, so a kill + restart serves
// verdicts byte-identical to an uninterrupted run. Drain quiesces every
// reactor before the engine checkpoint, and the exit contract (stop flag →
// checkpoint → ServeExit::kStopped) is reactor-count independent.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "score/model.h"
#include "serve/net.h"
#include "serve/wire.h"
#include "stream/engine.h"
#include "stream/quarantine.h"

namespace geovalid::obs {
class Counter;
class Gauge;
}  // namespace geovalid::obs

namespace geovalid::serve {

struct ServeConfig {
  std::string host = "127.0.0.1";
  std::uint16_t ingest_port = 0;  ///< 0 = ephemeral (read back after start)
  std::uint16_t http_port = 0;    ///< 0 = ephemeral
  std::size_t max_connections = 1024;  ///< combined cap across both ports
  double idle_timeout_s = 60.0;        ///< <= 0 disables the idle sweep
  std::size_t max_line_bytes = kMaxLineBytes;

  /// Event-loop threads (see the reactor model above). 0 = all hardware
  /// threads; clamped at core::kMaxThreads (and rejected with a usage
  /// error at the CLI, mirroring --threads).
  std::size_t reactors = 1;

  /// Detection model artifact (`geovalid train` output); empty serves
  /// without scoring — the /v1/suspects and /v1/users/{id}/score
  /// endpoints answer 409. A bad artifact fails construction with
  /// stream::CheckpointError (exit code 4 at the CLI).
  std::filesystem::path model_path;

  /// Checkpoint directory; empty disables checkpointing entirely.
  std::filesystem::path checkpoint_dir;
  /// Periodic checkpoint every this many applied records (0 = only on
  /// graceful stop / drain / POST /admin/checkpoint).
  std::uint64_t checkpoint_interval_records = 100000;
  /// Restore the newest valid checkpoint in checkpoint_dir on start().
  bool resume = false;

  /// Engine settings; the quarantine hook is overwritten (serve always
  /// attaches its own Quarantine — a network feed is never trusted).
  stream::StreamEngineConfig engine;
  stream::QuarantineConfig quarantine;

  /// Register serve_* metric families in the process registry.
  bool metrics = true;

  /// Test hook: simulate a SIGKILL after this many parsed records — the
  /// run loop exits abruptly, no drain, no final checkpoint. 0 = never.
  /// With several reactors the count may overshoot by a few records (each
  /// reactor checks the flag between lines, as a real kill would land).
  std::uint64_t crash_after_records = 0;
};

enum class ServeExit : std::uint8_t {
  kStopped,  ///< stop flag (SIGTERM path): final checkpoint written
  kDrained,  ///< POST /admin/drain: final checkpoint written
  kCrashed,  ///< crash_after_records hook: nothing written
};

struct ServeStats {
  ServeExit exit = ServeExit::kStopped;
  std::uint64_t records_parsed = 0;     ///< well-formed wire records seen
  std::uint64_t records_applied = 0;    ///< fed to the engine
  std::uint64_t records_replayed = 0;   ///< skipped as checkpoint-covered
  std::uint64_t records_malformed = 0;  ///< dead-lettered wire lines
  std::uint64_t http_requests = 0;
  std::uint64_t connections = 0;  ///< accepted over the lifetime, both ports
  std::uint64_t cursor = 0;       ///< records covered by the engine state
  std::uint64_t restored_cursor = 0;  ///< checkpoint cursor restored, or 0
};

class Server {
 public:
  explicit Server(ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds both listeners (resolving ephemeral ports) and, with
  /// ServeConfig::resume, restores the newest checkpoint. Call once,
  /// before run() — and before handing the Server to a run thread, so the
  /// bound ports are safe to read from the spawning thread.
  void start();

  [[nodiscard]] std::uint16_t ingest_port() const { return ingest_port_; }
  [[nodiscard]] std::uint16_t http_port() const { return http_port_; }
  [[nodiscard]] std::uint64_t restored_cursor() const {
    return restored_cursor_;
  }
  /// Unique per Server construction (pid + process-wide counter), echoed
  /// on /readyz as the `Geovalid-Instance` header. A fronting router uses
  /// it to tell a connection blip (same instance — its state survived,
  /// spooled records can simply be replayed) from a process restart (new
  /// instance — only a checkpoint survived, clients must re-send).
  [[nodiscard]] const std::string& instance_id() const {
    return instance_id_;
  }
  /// Effective reactor count (after 0 = hardware resolution).
  [[nodiscard]] std::size_t reactor_count() const { return reactors_.size(); }

  /// The event loop: run() drives reactor 0 on the calling thread and
  /// spawns reactors 1..N-1; it serves until `stop` becomes true (graceful
  /// — drains the engine and writes a final checkpoint when a directory is
  /// configured), an /admin/drain completes, or the crash hook fires. All
  /// reactor threads are joined before it returns.
  ServeStats run(const std::atomic<bool>* stop = nullptr);

  /// The live engine (the reactors are its producers; other threads may
  /// only call thread-safe accessors like partition()).
  [[nodiscard]] stream::StreamEngine& engine() { return *engine_; }
  [[nodiscard]] const stream::Quarantine& quarantine() const {
    return *quarantine_;
  }

 private:
  struct Conn;
  struct Reactor;
  struct Metrics;

  /// Striped per-user accepted-record counts: reactors touch one stripe
  /// mutex per record, checkpoints snapshot all stripes.
  struct CoverageStripe {
    std::mutex mu;
    std::unordered_map<trace::UserId, std::uint64_t> counts;
  };
  static constexpr std::size_t kCoverageStripes = 64;

  void register_metrics();
  void restore_from_checkpoint();
  /// Requires every other reactor parked (run_quiesced) — the engine
  /// save_state() inside assumes a single producer.
  std::filesystem::path write_checkpoint_now();
  void reactor_loop(Reactor& r, const std::atomic<bool>* stop,
                    bool* stopped_out);
  void accept_ready(Reactor& r, Fd& listener, bool is_http);
  void handle_read(Reactor& r, Conn& c);
  void handle_ingest_eof(Reactor& r, Conn& c);
  void process_ingest_line(Reactor& r, std::string_view text, bool truncated);
  /// One decoded binary frame: per-record coverage/replay accounting, then
  /// the surviving events reach the engine via one Producer::stage_batch.
  void process_ingest_frame(Reactor& r, BinaryFrameDecoder::Frame& frame);
  /// One rejected binary frame: counted under the typed reason and
  /// dead-lettered (hex-prefix detail) as `malformed_frame`.
  void process_frame_error(const FrameError& error);
  void route_request(Reactor& r, Conn& c);
  void flush_write(Conn& c);
  void sweep_idle(Reactor& r, std::chrono::steady_clock::time_point now);
  /// Non-zero reactors call this at their loop top: when the pause gate is
  /// raised, flush the producer, report parked and wait for release.
  void park_if_paused(Reactor& r);
  /// Reactor 0 only: raise the pause gate, wait until every live non-zero
  /// reactor is parked, flush reactor 0's own producer, run `op` against
  /// the quiesced (single-producer) engine, release the gate. A no-op
  /// rendezvous with one reactor. Returns false without running `op` when
  /// the crash hook fired during the rendezvous — a crashing reactor
  /// drops its staged events, so the engine view is no longer consistent
  /// with the coverage table and must not be persisted or served.
  bool run_quiesced(Reactor& r0, const std::function<void()>& op);
  void release_gate();
  [[nodiscard]] std::uint64_t arrive(trace::UserId user);
  void update_lag_gauge();
  [[nodiscard]] std::string summary_json();
  [[nodiscard]] std::uint64_t resumed_count(trace::UserId user) const;

  ServeConfig config_;
  /// Loaded before the engine is built (the engine config points at it);
  /// immutable afterwards, so worker threads score against it lock-free.
  std::optional<score::ScoreModel> model_;
  std::optional<stream::Quarantine> quarantine_;
  std::optional<stream::StreamEngine> engine_;

  Fd ingest_listener_;
  Fd http_listener_;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t http_port_ = 0;
  bool started_ = false;

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::string instance_id_;

  /// Open connections across all reactors; the slot under
  /// max_connections is reserved (CAS) before accept4 so racing reactors
  /// never overshoot the cap.
  std::atomic<std::size_t> total_conns_{0};
  std::atomic<std::size_t> active_ingest_{0};
  std::size_t active_http_ = 0;  ///< reactor 0 only (HTTP is pinned there)
  bool was_at_cap_ = false;      ///< reactor 0 only (backpressure episodes)

  /// Per-user records accepted (lifetime, incl. restored coverage) and the
  /// coverage restored from the checkpoint being resumed. `resumed_` is
  /// written in start() and read-only while the reactors run.
  std::array<CoverageStripe, kCoverageStripes> arrived_;
  std::unordered_map<trace::UserId, std::uint64_t> resumed_;
  std::atomic<std::uint64_t> cursor_{0};
  std::uint64_t restored_cursor_ = 0;
  std::atomic<std::uint64_t> records_since_checkpoint_{0};
  /// Events the engine accepted (in-flight base for the lag gauge).
  std::atomic<std::uint64_t> routed_{0};

  std::atomic<bool> drain_requested_{false};  ///< stop accepting ingest
  std::atomic<bool> drain_done_{false};  ///< engine drained, answers queued
  std::atomic<bool> crash_pending_{false};
  std::atomic<bool> stop_all_{false};  ///< reactor 0 exited: everyone out

  // Pause gate (see run_quiesced). pause_flag_ is the cheap loop-top
  // check; the counters below are guarded by gate_mu_.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  std::atomic<bool> pause_flag_{false};
  bool pause_requested_ = false;
  std::size_t parked_ = 0;
  std::size_t running_others_ = 0;  ///< live non-zero reactor loops

  std::mutex error_mu_;
  std::exception_ptr reactor_error_;  ///< first reactor-thread exception

  // Lifetime totals (materialized into ServeStats when run() returns).
  std::atomic<std::uint64_t> records_parsed_{0};
  std::atomic<std::uint64_t> records_applied_{0};
  std::atomic<std::uint64_t> records_replayed_{0};
  std::atomic<std::uint64_t> records_malformed_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> connections_{0};

  ServeStats stats_;
  std::unique_ptr<Metrics> metrics_;
};

}  // namespace geovalid::serve
