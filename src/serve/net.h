// Thin POSIX socket layer shared by the serve event loop, the loadgen
// client and the tests.
//
// Everything here is dependency-free (plain <sys/socket.h>): RAII fd
// ownership, IPv4 listeners with ephemeral-port support (`port 0` binds,
// local_port() reports what the kernel picked — no port races in tests),
// and SIGPIPE-immune sends (MSG_NOSIGNAL everywhere; a peer that
// disconnects mid-write surfaces as EPIPE, never as a process-killing
// signal).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace geovalid::serve {

/// Socket-layer failure (bind/listen/connect/getsockname); carries the
/// errno text.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Move-only owner of a file descriptor; -1 means empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (IPv4 dotted quad; port 0 = kernel picks
/// an ephemeral port — read it back with local_port()). The returned
/// socket is non-blocking with SO_REUSEADDR set. Throws NetError.
[[nodiscard]] Fd tcp_listen(const std::string& host, std::uint16_t port);

/// The port a bound socket actually listens on (resolves `--port 0`).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Blocking connect to host:port. Throws NetError.
[[nodiscard]] Fd tcp_connect(const std::string& host, std::uint16_t port);

/// Connect with a deadline: non-blocking connect + poll, so a blackholed
/// or unroutable peer fails in `timeout_ms` instead of the kernel's
/// minutes-long default. The returned fd is left non-blocking. Throws
/// NetError; the timeout message contains "deadline".
[[nodiscard]] Fd tcp_connect_deadline(const std::string& host,
                                      std::uint16_t port, int timeout_ms);

/// Marks `fd` non-blocking. Throws NetError.
void set_nonblocking(int fd);

/// Blocking full-buffer send with MSG_NOSIGNAL; returns false when the
/// peer is gone (EPIPE / ECONNRESET), throws NetError on anything else.
bool send_all(int fd, std::string_view data);

/// Reads until EOF (blocking). Throws NetError on socket errors.
[[nodiscard]] std::string recv_all(int fd);

/// Minimal blocking HTTP/1.1 client for tests, loadgen probes and the CI
/// smoke script: one request, `Connection: close`, whole response back.
struct HttpResponse {
  int status = 0;
  std::string headers;  ///< raw header block (CRLF-separated lines)
  std::string body;

  /// Case-insensitive single-header lookup; empty when absent.
  [[nodiscard]] std::string header(std::string_view name) const;
};

[[nodiscard]] HttpResponse http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& target);
[[nodiscard]] HttpResponse http_post(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& target);

/// POST with a request body (Content-Length framed); used by the cluster
/// rebalance endpoint and its tests.
[[nodiscard]] HttpResponse http_post(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& target,
                                     const std::string& body,
                                     const std::string& content_type =
                                         "application/json");

/// Deadline-bounded variants: the whole request (connect + send + full
/// response) must finish within `timeout_ms`, so a backend that accepts
/// the TCP connection but never answers surfaces as a NetError whose
/// message contains "deadline" instead of hanging the caller. The cluster
/// router's control-plane fan-out and health probes use these.
[[nodiscard]] HttpResponse http_get_deadline(const std::string& host,
                                             std::uint16_t port,
                                             const std::string& target,
                                             int timeout_ms);
[[nodiscard]] HttpResponse http_post_deadline(const std::string& host,
                                              std::uint16_t port,
                                              const std::string& target,
                                              int timeout_ms,
                                              const std::string& body = {},
                                              const std::string& content_type =
                                                  "application/json");

}  // namespace geovalid::serve
