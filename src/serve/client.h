// Load-generator client for the serve daemon: replays a trace over N
// concurrent ingest connections and (optionally) probes the control plane.
//
// Events are partitioned by `user % connections` — the same stable rule a
// real fleet of per-device feeders would induce — so each user's records
// travel one connection in order, which is exactly the ordering contract
// the engine's verdicts depend on. Throughput is measured from the first
// byte sent to the last connection's orderly shutdown.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "stream/engine.h"
#include "stream/faults.h"

namespace geovalid::serve {

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;       ///< ingest port (required)
  std::uint16_t http_port = 0;  ///< 0 = skip the control-plane probe
  std::size_t connections = 1;
  /// Per-connection pacing in events/s; 0 = full speed.
  double rate_events_per_sec = 0.0;
  /// Replay in the columnar binary frame format (serve/wire.h) instead
  /// of text lines. The server negotiates per connection from the first
  /// byte, so no flag or handshake travels on the wire.
  bool binary = false;
  /// Records per binary frame (0 = the 512-record default; capped there
  /// too). Smaller frames trade throughput for delivery granularity —
  /// a feeder that must bound how many records sit in one undecoded
  /// frame, or a test that needs server-side progress in fine steps,
  /// lowers this.
  std::size_t frame_records = 0;
  /// Reconnect attempts per connection after a refused connect or a peer
  /// that vanished mid-replay (EPIPE). Each retry waits a jittered
  /// exponential backoff, reconnects, and re-sends the shard *from the
  /// beginning* — the full re-send the cluster's epoch protocol expects;
  /// the router and serve's resume skip deduplicate the replayed prefix.
  /// 0 = the old measure-don't-retry behaviour.
  std::size_t retries = 0;
  /// Client-side deterministic fault injection (stream/faults.h net
  /// grammar); the target name is the zero-based connection index
  /// ("0", "1", ...). netreset/netdrop abort the connection mid-replay
  /// (exercising the retry path), netstall sleeps the sender.
  stream::NetFaultPlan net_faults;
  /// Probe the scoring control plane while the replay runs (requires
  /// http_port): periodic GET /v1/suspects?k=5 plus a score lookup for a
  /// deterministically-chosen user from the trace, with one final probe
  /// after the replay completes. Counts and latency land in the stats.
  bool probe_suspects = false;
};

struct LoadgenStats {
  std::size_t connections = 0;
  std::string format = "text";  ///< wire format replayed: text | binary
  std::uint64_t events_sent = 0;
  std::uint64_t bytes_sent = 0;
  double send_seconds = 0.0;  ///< first send to last connection closed
  double events_per_sec = 0.0;
  /// Client-side serialization throughput (events per second spent in
  /// encode calls, summed across connections, socket time excluded) —
  /// the format A/B's sender-cost axis.
  double encode_events_per_sec = 0.0;
  std::size_t failed_connections = 0;  ///< peer vanished mid-replay (EPIPE)
  std::size_t connect_failures = 0;    ///< never connected (ECONNREFUSED)
  /// Re-dials made by the retry loop (--retries), across connections.
  std::uint64_t reconnects = 0;
  /// True when at least one connection used up every retry and still
  /// failed — the replay is known incomplete.
  bool retry_exhausted = false;

  // Control-plane probe (only when http_port was set):
  bool healthz_ok = false;
  bool metrics_ok = false;  ///< 200 + Prometheus content type on /metrics
  double summary_latency_s = 0.0;  ///< /v1/summary round trip (incl. drain)
  std::string summary_json;        ///< /v1/summary body, verbatim

  // Scoring probe (only when probe_suspects was set):
  std::uint64_t suspect_probes = 0;     ///< /v1/suspects requests issued
  std::uint64_t suspect_probes_ok = 0;  ///< ... answered 200
  std::uint64_t score_probes = 0;       ///< /v1/users/{id}/score requests
  std::uint64_t score_probes_ok = 0;    ///< ... answered 200
  double suspect_latency_s = 0.0;  ///< mean /v1/suspects round trip
  std::string suspects_json;       ///< last /v1/suspects 200 body, verbatim
};

/// Replays `events` against a running server. Never throws on per-
/// connection failures: a refused connection counts in connect_failures
/// and a peer that disconnects mid-replay in failed_connections, so a
/// replay against a dying or recovering cluster measures its loss window
/// instead of aborting. Control-plane probes fail soft the same way
/// (flags stay false, summary stays empty).
[[nodiscard]] LoadgenStats run_loadgen(std::span<const stream::Event> events,
                                       const LoadgenConfig& config);

/// One-line JSON rendering of the stats (the loadgen tool's output).
[[nodiscard]] std::string to_json(const LoadgenStats& stats);

}  // namespace geovalid::serve
