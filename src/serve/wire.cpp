#include "serve/wire.h"

#include <array>
#include <charconv>
#include <cstdlib>
#include <cstring>

#include "trace/poi.h"

namespace geovalid::serve {
namespace {

/// Splits on commas into at most `max_fields` views. Returns the field
/// count, or max_fields + 1 when the line has too many separators.
std::size_t split(std::string_view line,
                  std::array<std::string_view, 9>& fields,
                  std::size_t max_fields) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (count == max_fields) return max_fields + 1;
    fields[count++] = line.substr(
        start, comma == std::string_view::npos ? comma : comma - start);
    if (comma == std::string_view::npos) return count;
    start = comma + 1;
  }
}

/// Same numeric grammar as the CSV reader (trace/csv.cpp): strict integers
/// via from_chars, doubles via strtod over a bounded copy (accepts the
/// nan/inf spellings the fault injector can produce — the quarantine path
/// rejects them semantically, with the same reason as CSV ingest).
template <typename T>
bool parse_int(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  char buf[64];
  if (s.empty() || s.size() >= sizeof(buf)) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + s.size();
}

WireError err(const char* what) { return WireError{what}; }

void append_num(std::string& out, double v) {
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

template <typename T>
void append_num(std::string& out, T v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

}  // namespace

WireResult parse_wire_record(std::string_view line) {
  std::array<std::string_view, 9> f;
  const std::size_t n = split(line, f, 9);
  if (n == 0 || f[0].empty()) return err("empty record");
  if (f[0] == "gps") {
    if (n != 8) return err("gps record expects 8 fields");
    trace::UserId user = 0;
    trace::GpsPoint p;
    int has_fix = 0;
    if (!parse_int(f[1], user)) return err("bad user field");
    if (!parse_int(f[2], p.t)) return err("bad t field");
    if (!parse_double(f[3], p.position.lat_deg)) return err("bad lat field");
    if (!parse_double(f[4], p.position.lon_deg)) return err("bad lon field");
    if (!parse_int(f[5], has_fix)) return err("bad has_fix field");
    p.has_fix = has_fix != 0;
    if (!parse_int(f[6], p.wifi_fingerprint)) return err("bad wifi field");
    if (!parse_double(f[7], p.accel_variance)) {
      return err("bad accel_var field");
    }
    return stream::Event::gps_sample(user, p);
  }
  if (f[0] == "checkin") {
    if (n != 7) return err("checkin record expects 7 fields");
    trace::UserId user = 0;
    trace::Checkin c;
    if (!parse_int(f[1], user)) return err("bad user field");
    if (!parse_int(f[2], c.t)) return err("bad t field");
    if (!parse_int(f[3], c.poi)) return err("bad poi field");
    const auto category = trace::parse_poi_category(f[4]);
    if (!category) return err("unknown category");
    c.category = *category;
    if (!parse_double(f[5], c.location.lat_deg)) return err("bad lat field");
    if (!parse_double(f[6], c.location.lon_deg)) return err("bad lon field");
    return stream::Event::checkin_event(user, c);
  }
  return err("unknown record kind");
}

void append_wire_record(std::string& out, const stream::Event& e) {
  if (e.kind == stream::Event::Kind::kGps) {
    out += "gps,";
    append_num(out, e.user);
    out += ',';
    append_num(out, e.gps.t);
    out += ',';
    append_num(out, e.gps.position.lat_deg);
    out += ',';
    append_num(out, e.gps.position.lon_deg);
    out += ',';
    out += e.gps.has_fix ? '1' : '0';
    out += ',';
    append_num(out, e.gps.wifi_fingerprint);
    out += ',';
    append_num(out, e.gps.accel_variance);
  } else {
    out += "checkin,";
    append_num(out, e.user);
    out += ',';
    append_num(out, e.checkin.t);
    out += ',';
    append_num(out, e.checkin.poi);
    out += ',';
    out += trace::to_string(e.checkin.category);
    out += ',';
    append_num(out, e.checkin.location.lat_deg);
    out += ',';
    append_num(out, e.checkin.location.lon_deg);
  }
  out += '\n';
}

std::string format_wire_record(const stream::Event& e) {
  std::string out;
  append_wire_record(out, e);
  return out;
}

void LineDecoder::feed(std::string_view data) {
  // Compact the consumed prefix before growing: the buffer then stays
  // bounded by one partial line plus one recv chunk.
  if (pos_ > 0 && pos_ >= 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data);
}

std::optional<LineDecoder::Line> LineDecoder::next() {
  while (true) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (discarding_) {
      if (nl == std::string::npos) {
        // Still inside the oversized line: drop what we have.
        buf_.clear();
        pos_ = 0;
        return std::nullopt;
      }
      pos_ = nl + 1;
      discarding_ = false;
      continue;
    }
    if (nl == std::string::npos) {
      if (buffered() > max_line_bytes_) {
        // Cap blown with no terminator in sight: surface the prefix once,
        // then discard until the line finally ends.
        const Line line{
            std::string_view(buf_).substr(pos_, max_line_bytes_), true};
        pos_ = buf_.size();
        discarding_ = true;
        return line;
      }
      return std::nullopt;
    }
    std::string_view text = std::string_view(buf_).substr(pos_, nl - pos_);
    if (!text.empty() && text.back() == '\r') text.remove_suffix(1);
    pos_ = nl + 1;
    if (text.size() > max_line_bytes_) {
      return Line{text.substr(0, max_line_bytes_), true};
    }
    return Line{text, false};
  }
}

std::optional<LineDecoder::Line> LineDecoder::finish() {
  std::optional<Line> out;
  if (!discarding_ && buffered() > 0) {
    // An unterminated trailing fragment: the peer disconnected mid-record.
    // Reported as truncated — it is not a complete line.
    std::string_view text = std::string_view(buf_).substr(pos_);
    out = Line{text.substr(0, max_line_bytes_), true};
  }
  pos_ = 0;
  discarding_ = false;
  // Note: buf_ must stay alive for the returned view; only the cursor
  // resets here. The next feed() starts clean.
  if (!out) buf_.clear();
  return out;
}

}  // namespace geovalid::serve
