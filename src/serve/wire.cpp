#include "serve/wire.h"

#include <algorithm>
#include <array>
#include <bit>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "stream/snapshot_io.h"
#include "trace/poi.h"

namespace geovalid::serve {
namespace {

/// Splits on commas into at most `max_fields` views. Returns the field
/// count, or max_fields + 1 when the line has too many separators.
std::size_t split(std::string_view line,
                  std::array<std::string_view, 9>& fields,
                  std::size_t max_fields) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (count == max_fields) return max_fields + 1;
    fields[count++] = line.substr(
        start, comma == std::string_view::npos ? comma : comma - start);
    if (comma == std::string_view::npos) return count;
    start = comma + 1;
  }
}

/// Same numeric grammar as the CSV reader (trace/csv.cpp): strict integers
/// via from_chars, doubles via strtod over a bounded copy (accepts the
/// nan/inf spellings the fault injector can produce — the quarantine path
/// rejects them semantically, with the same reason as CSV ingest).
template <typename T>
bool parse_int(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  char buf[64];
  if (s.empty() || s.size() >= sizeof(buf)) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + s.size();
}

WireError err(const char* what) { return WireError{what}; }

void append_num(std::string& out, double v) {
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

template <typename T>
void append_num(std::string& out, T v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

}  // namespace

WireResult parse_wire_record(std::string_view line) {
  std::array<std::string_view, 9> f;
  const std::size_t n = split(line, f, 9);
  if (n == 0 || f[0].empty()) return err("empty record");
  if (f[0] == "gps") {
    if (n != 8) return err("gps record expects 8 fields");
    trace::UserId user = 0;
    trace::GpsPoint p;
    int has_fix = 0;
    if (!parse_int(f[1], user)) return err("bad user field");
    if (!parse_int(f[2], p.t)) return err("bad t field");
    if (!parse_double(f[3], p.position.lat_deg)) return err("bad lat field");
    if (!parse_double(f[4], p.position.lon_deg)) return err("bad lon field");
    if (!parse_int(f[5], has_fix)) return err("bad has_fix field");
    p.has_fix = has_fix != 0;
    if (!parse_int(f[6], p.wifi_fingerprint)) return err("bad wifi field");
    if (!parse_double(f[7], p.accel_variance)) {
      return err("bad accel_var field");
    }
    return stream::Event::gps_sample(user, p);
  }
  if (f[0] == "checkin") {
    if (n != 7) return err("checkin record expects 7 fields");
    trace::UserId user = 0;
    trace::Checkin c;
    if (!parse_int(f[1], user)) return err("bad user field");
    if (!parse_int(f[2], c.t)) return err("bad t field");
    if (!parse_int(f[3], c.poi)) return err("bad poi field");
    const auto category = trace::parse_poi_category(f[4]);
    if (!category) return err("unknown category");
    c.category = *category;
    if (!parse_double(f[5], c.location.lat_deg)) return err("bad lat field");
    if (!parse_double(f[6], c.location.lon_deg)) return err("bad lon field");
    return stream::Event::checkin_event(user, c);
  }
  return err("unknown record kind");
}

void append_wire_record(std::string& out, const stream::Event& e) {
  if (e.kind == stream::Event::Kind::kGps) {
    out += "gps,";
    append_num(out, e.user);
    out += ',';
    append_num(out, e.gps.t);
    out += ',';
    append_num(out, e.gps.position.lat_deg);
    out += ',';
    append_num(out, e.gps.position.lon_deg);
    out += ',';
    out += e.gps.has_fix ? '1' : '0';
    out += ',';
    append_num(out, e.gps.wifi_fingerprint);
    out += ',';
    append_num(out, e.gps.accel_variance);
  } else {
    out += "checkin,";
    append_num(out, e.user);
    out += ',';
    append_num(out, e.checkin.t);
    out += ',';
    append_num(out, e.checkin.poi);
    out += ',';
    out += trace::to_string(e.checkin.category);
    out += ',';
    append_num(out, e.checkin.location.lat_deg);
    out += ',';
    append_num(out, e.checkin.location.lon_deg);
  }
  out += '\n';
}

std::string format_wire_record(const stream::Event& e) {
  std::string out;
  append_wire_record(out, e);
  return out;
}

void LineDecoder::feed(std::string_view data) {
  // Compact the consumed prefix before growing: the buffer then stays
  // bounded by one partial line plus one recv chunk.
  if (pos_ > 0 && pos_ >= 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data);
}

std::optional<LineDecoder::Line> LineDecoder::next() {
  while (true) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (discarding_) {
      if (nl == std::string::npos) {
        // Still inside the oversized line: drop what we have.
        buf_.clear();
        pos_ = 0;
        return std::nullopt;
      }
      pos_ = nl + 1;
      discarding_ = false;
      continue;
    }
    if (nl == std::string::npos) {
      if (buffered() > max_line_bytes_) {
        // Cap blown with no terminator in sight: surface the prefix once,
        // then discard until the line finally ends.
        const Line line{
            std::string_view(buf_).substr(pos_, max_line_bytes_), true};
        pos_ = buf_.size();
        discarding_ = true;
        return line;
      }
      return std::nullopt;
    }
    std::string_view text = std::string_view(buf_).substr(pos_, nl - pos_);
    if (!text.empty() && text.back() == '\r') text.remove_suffix(1);
    pos_ = nl + 1;
    if (text.size() > max_line_bytes_) {
      return Line{text.substr(0, max_line_bytes_), true};
    }
    return Line{text, false};
  }
}

std::optional<LineDecoder::Line> LineDecoder::finish() {
  std::optional<Line> out;
  if (!discarding_ && buffered() > 0) {
    // An unterminated trailing fragment: the peer disconnected mid-record.
    // Reported as truncated — it is not a complete line.
    std::string_view text = std::string_view(buf_).substr(pos_);
    out = Line{text.substr(0, max_line_bytes_), true};
  }
  pos_ = 0;
  discarding_ = false;
  // Note: buf_ must stay alive for the returned view; only the cursor
  // resets here. The next feed() starts clean.
  if (!out) buf_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Binary frames. Byte layout (docs/SERVICE.md is the normative copy):
//
//   offset  size          field
//   0       4             magic 0xB1 'G' 'V' 'F'
//   4       1             version (= 1)
//   5       1             flags (= 0, reserved)
//   6       4             record count, u32 LE, 1..kMaxFrameRecords
//   10      4             payload length, u32 LE, <= kMaxFramePayloadBytes
//   14      payload_len   columnar payload (below)
//   ...     4             CRC32 (IEEE 802.3, snapshot_io's crc32) over
//                         bytes [4, 14 + payload_len) — everything after
//                         the magic, trailer excluded
//
// Payload columns, in order (N = record count, G = gps records, C =
// checkin records, both in wire order):
//
//   kinds      ceil(N/8) bytes, LSB-first; bit set = checkin
//   user       N x varint
//   t          N x zigzag varint, delta vs. the previous record's t
//   gps.lat    G x f64 (bit-cast u64 LE — bit-exact, like snapshot_io)
//   gps.lon    G x f64
//   gps.has_fix   ceil(G/8) bytes, LSB-first
//   gps.wifi   G x varint
//   gps.accel  G x f64
//   ck.poi     C x varint
//   ck.category   C x u8 (< kPoiCategoryCount)
//   ck.lat     C x f64
//   ck.lon     C x f64
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kFrameHeaderBytes = 14;
constexpr std::size_t kFrameTrailerBytes = 4;

/// Hex prefix length of a rejected frame's dead-letter detail.
constexpr std::size_t kHexDetailBytes = 32;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_zigzag(std::string& out, std::int64_t v) {
  put_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

std::uint32_t read_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Bounds-checked cursor over a frame payload. Every read either succeeds
/// or flips `ok` — the decode loop checks once at the end, so a short or
/// overlong payload surfaces as one `bad_payload` rejection, never a read
/// past the buffer.
struct PayloadReader {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;
  bool ok = true;

  bool need(std::size_t k) {
    if (n - off < k) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[off++];
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!need(1)) return 0;
      const std::uint8_t byte = p[off++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        // Reject non-canonical 10th bytes that would shift bits past 63.
        if (shift == 63 && byte > 1) ok = false;
        return v;
      }
    }
    ok = false;  // unterminated varint
    return 0;
  }

  std::int64_t zigzag() {
    const std::uint64_t v = varint();
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }

  double f64() {
    if (!need(8)) return 0.0;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
    }
    off += 8;
    return std::bit_cast<double>(bits);
  }
};

std::string hex_prefix(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::size_t n = std::min(bytes.size(), kHexDetailBytes);
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<unsigned char>(bytes[i]);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::string frame_detail(FrameErrorKind kind, std::string_view bytes) {
  std::string detail(to_string(kind));
  detail += " bytes=";
  char buf[24];
  const auto [p, ec] =
      std::to_chars(buf, buf + sizeof(buf), bytes.size());
  detail.append(buf, static_cast<std::size_t>(p - buf));
  detail += " hex=";
  detail += hex_prefix(bytes);
  return detail;
}

}  // namespace

std::string_view to_string(FrameErrorKind kind) {
  switch (kind) {
    case FrameErrorKind::kBadMagic:
      return "bad_magic";
    case FrameErrorKind::kBadVersion:
      return "bad_version";
    case FrameErrorKind::kBadHeader:
      return "bad_header";
    case FrameErrorKind::kCrcMismatch:
      return "crc_mismatch";
    case FrameErrorKind::kBadPayload:
      return "bad_payload";
    case FrameErrorKind::kTruncated:
      return "truncated";
  }
  return "unknown";
}

void append_binary_frame(std::string& out,
                         std::span<const stream::Event> events) {
  if (events.empty() || events.size() > kMaxFrameRecords) return;

  const std::size_t header_at = out.size();
  out.append(reinterpret_cast<const char*>(kFrameMagic.data()),
             kFrameMagic.size());
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back('\0');  // flags
  put_u32(out, static_cast<std::uint32_t>(events.size()));
  put_u32(out, 0);  // payload_len, patched below
  const std::size_t payload_at = out.size();

  // kinds bitmap
  for (std::size_t i = 0; i < events.size(); i += 8) {
    unsigned byte = 0;
    for (std::size_t j = 0; j < 8 && i + j < events.size(); ++j) {
      if (events[i + j].kind == stream::Event::Kind::kCheckin) {
        byte |= 1u << j;
      }
    }
    out.push_back(static_cast<char>(byte));
  }
  for (const stream::Event& e : events) put_varint(out, e.user);
  std::int64_t prev_t = 0;
  for (const stream::Event& e : events) {
    const std::int64_t t = e.time();
    // Unsigned subtraction: the delta wraps instead of overflowing, and
    // the decoder's matching unsigned addition wraps it back bit-exactly.
    put_zigzag(out, static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(t) -
                        static_cast<std::uint64_t>(prev_t)));
    prev_t = t;
  }

  // gps columns
  for (const stream::Event& e : events) {
    if (e.kind == stream::Event::Kind::kGps) {
      put_f64(out, e.gps.position.lat_deg);
    }
  }
  for (const stream::Event& e : events) {
    if (e.kind == stream::Event::Kind::kGps) {
      put_f64(out, e.gps.position.lon_deg);
    }
  }
  {
    unsigned byte = 0;
    std::size_t bit = 0;
    for (const stream::Event& e : events) {
      if (e.kind != stream::Event::Kind::kGps) continue;
      if (e.gps.has_fix) byte |= 1u << (bit % 8);
      if (++bit % 8 == 0) {
        out.push_back(static_cast<char>(byte));
        byte = 0;
      }
    }
    if (bit % 8 != 0) out.push_back(static_cast<char>(byte));
  }
  for (const stream::Event& e : events) {
    if (e.kind == stream::Event::Kind::kGps) {
      put_varint(out, e.gps.wifi_fingerprint);
    }
  }
  for (const stream::Event& e : events) {
    if (e.kind == stream::Event::Kind::kGps) {
      put_f64(out, e.gps.accel_variance);
    }
  }

  // checkin columns
  for (const stream::Event& e : events) {
    if (e.kind == stream::Event::Kind::kCheckin) {
      put_varint(out, e.checkin.poi);
    }
  }
  for (const stream::Event& e : events) {
    if (e.kind == stream::Event::Kind::kCheckin) {
      out.push_back(static_cast<char>(e.checkin.category));
    }
  }
  for (const stream::Event& e : events) {
    if (e.kind == stream::Event::Kind::kCheckin) {
      put_f64(out, e.checkin.location.lat_deg);
    }
  }
  for (const stream::Event& e : events) {
    if (e.kind == stream::Event::Kind::kCheckin) {
      put_f64(out, e.checkin.location.lon_deg);
    }
  }

  // Patch payload_len, then seal with the CRC over version..payload.
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - payload_at);
  for (int i = 0; i < 4; ++i) {
    out[header_at + 10 + static_cast<std::size_t>(i)] =
        static_cast<char>((payload_len >> (8 * i)) & 0xFF);
  }
  const std::uint32_t crc = stream::crc32(
      std::string_view(out).substr(header_at + 4, 10 + payload_len));
  put_u32(out, crc);
}

void BinaryFrameDecoder::feed(std::string_view data) {
  // Same compaction policy as LineDecoder: the buffer stays bounded by
  // one partial frame plus one recv chunk.
  if (pos_ > 0 && pos_ >= 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data);
}

FrameError BinaryFrameDecoder::resync_error(FrameErrorKind kind) {
  // The header cannot be trusted (wrong magic/version/caps), so its length
  // field cannot either: discard up to the next 0xB1 candidate — exactly
  // how LineDecoder abandons an oversized line at the next newline.
  const std::string_view rest = std::string_view(buf_).substr(pos_);
  const std::size_t next = rest.find(static_cast<char>(kFrameMagic0), 1);
  const std::size_t skip = next == std::string_view::npos ? rest.size() : next;
  FrameError error{kind, frame_detail(kind, rest.substr(0, skip))};
  pos_ += skip;
  return error;
}

std::optional<BinaryFrameDecoder::Result> BinaryFrameDecoder::next() {
  const std::size_t avail = buffered();
  if (avail == 0) return std::nullopt;
  const auto* data =
      reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;

  // Magic: check however much of it has arrived; a mismatch anywhere in
  // the first four bytes means these bytes are not a frame.
  for (std::size_t i = 0; i < std::min(avail, kFrameMagic.size()); ++i) {
    if (data[i] != kFrameMagic[i]) {
      return resync_error(FrameErrorKind::kBadMagic);
    }
  }
  if (avail < kFrameHeaderBytes) return std::nullopt;

  if (data[4] != kFrameVersion) {
    return resync_error(FrameErrorKind::kBadVersion);
  }
  const std::uint32_t count = read_u32(data + 6);
  const std::uint32_t payload_len = read_u32(data + 10);
  if (data[5] != 0 || count == 0 || count > kMaxFrameRecords ||
      payload_len > kMaxFramePayloadBytes) {
    return resync_error(FrameErrorKind::kBadHeader);
  }
  const std::size_t total =
      kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (avail < total) return std::nullopt;

  // From here the length field is covered by the CRC check below, so a
  // rejected frame is skipped wholesale: pos_ advances past `total` on
  // every path, and the next frame decodes untouched.
  const std::string_view frame = std::string_view(buf_).substr(pos_, total);
  pos_ += total;

  const std::uint32_t crc =
      stream::crc32(frame.substr(4, 10 + payload_len));
  if (crc != read_u32(data + kFrameHeaderBytes + payload_len)) {
    return FrameError{FrameErrorKind::kCrcMismatch,
                      frame_detail(FrameErrorKind::kCrcMismatch, frame)};
  }

  PayloadReader r{data + kFrameHeaderBytes, payload_len};
  Frame out;
  out.wire_bytes = total;
  out.events.resize(count);

  const std::size_t kind_bytes = (count + 7) / 8;
  std::size_t checkins = 0;
  if (r.need(kind_bytes)) {
    for (std::size_t i = 0; i < count; ++i) {
      const bool is_checkin =
          (r.p[r.off + i / 8] >> (i % 8)) & 1;
      if (is_checkin) {
        out.events[i] = stream::Event::checkin_event(0, {});
        ++checkins;
      }
    }
    r.off += kind_bytes;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t user = r.varint();
    if (user > std::numeric_limits<trace::UserId>::max()) r.ok = false;
    out.events[i].user = static_cast<trace::UserId>(user);
  }
  std::int64_t prev_t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    prev_t = static_cast<std::int64_t>(static_cast<std::uint64_t>(prev_t) +
                                       static_cast<std::uint64_t>(r.zigzag()));
    stream::Event& e = out.events[i];
    if (e.kind == stream::Event::Kind::kGps) {
      e.gps.t = prev_t;
    } else {
      e.checkin.t = prev_t;
    }
  }

  // gps columns
  for (stream::Event& e : out.events) {
    if (e.kind == stream::Event::Kind::kGps) e.gps.position.lat_deg = r.f64();
  }
  for (stream::Event& e : out.events) {
    if (e.kind == stream::Event::Kind::kGps) e.gps.position.lon_deg = r.f64();
  }
  {
    const std::size_t gps = count - checkins;
    const std::size_t fix_bytes = (gps + 7) / 8;
    if (r.need(fix_bytes)) {
      std::size_t bit = 0;
      for (stream::Event& e : out.events) {
        if (e.kind != stream::Event::Kind::kGps) continue;
        e.gps.has_fix = (r.p[r.off + bit / 8] >> (bit % 8)) & 1;
        ++bit;
      }
      r.off += fix_bytes;
    }
  }
  for (stream::Event& e : out.events) {
    if (e.kind != stream::Event::Kind::kGps) continue;
    const std::uint64_t wifi = r.varint();
    if (wifi > std::numeric_limits<std::uint32_t>::max()) r.ok = false;
    e.gps.wifi_fingerprint = static_cast<std::uint32_t>(wifi);
  }
  for (stream::Event& e : out.events) {
    if (e.kind == stream::Event::Kind::kGps) e.gps.accel_variance = r.f64();
  }

  // checkin columns
  for (stream::Event& e : out.events) {
    if (e.kind != stream::Event::Kind::kCheckin) continue;
    const std::uint64_t poi = r.varint();
    if (poi > std::numeric_limits<trace::PoiId>::max()) r.ok = false;
    e.checkin.poi = static_cast<trace::PoiId>(poi);
  }
  for (stream::Event& e : out.events) {
    if (e.kind != stream::Event::Kind::kCheckin) continue;
    const std::uint8_t category = r.u8();
    if (category >= trace::kPoiCategoryCount) r.ok = false;
    e.checkin.category = static_cast<trace::PoiCategory>(category);
  }
  for (stream::Event& e : out.events) {
    if (e.kind == stream::Event::Kind::kCheckin) {
      e.checkin.location.lat_deg = r.f64();
    }
  }
  for (stream::Event& e : out.events) {
    if (e.kind == stream::Event::Kind::kCheckin) {
      e.checkin.location.lon_deg = r.f64();
    }
  }

  if (!r.ok || r.off != payload_len) {
    return FrameError{FrameErrorKind::kBadPayload,
                      frame_detail(FrameErrorKind::kBadPayload, frame)};
  }
  return Result{std::move(out)};
}

std::optional<FrameError> BinaryFrameDecoder::finish() {
  std::optional<FrameError> out;
  if (buffered() > 0) {
    // An incomplete trailing frame: the peer disconnected mid-frame.
    out = FrameError{
        FrameErrorKind::kTruncated,
        frame_detail(FrameErrorKind::kTruncated,
                     std::string_view(buf_).substr(pos_))};
  }
  buf_.clear();
  pos_ = 0;
  return out;
}

}  // namespace geovalid::serve
