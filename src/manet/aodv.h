// AODV routing over an arbitrary dynamic topology.
//
// This is the NS-2 substitute for the paper's §6.2 experiment. It implements
// the protocol mechanics that drive the three reported metrics: on-demand
// route discovery by RREQ flooding (destination-only RREP, TTL-bounded),
// hop-by-hop data forwarding with link checks, RERR propagation on breaks,
// and active-route timeouts. MAC contention and queuing are abstracted to a
// fixed per-hop latency (documented simplification).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "manet/event_queue.h"

namespace geovalid::manet {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Protocol parameters (defaults follow common AODV deployments).
struct AodvConfig {
  double active_route_timeout_s = 120.0;
  double hop_delay_s = 0.002;      ///< tx + processing per hop
  std::uint32_t rreq_ttl = 32;     ///< flood bound (max ring)
  double discovery_timeout_s = 1.0;  ///< wait for RREP before giving up

  /// Expanding-ring search (RFC 3561 §6.4): probe with a small TTL first
  /// and escalate only when no RREP returns, so discoveries of nearby
  /// destinations do not flood the whole network.
  bool expanding_ring = true;
  std::uint32_t ring_start_ttl = 2;
  std::uint32_t ring_increment = 2;
  /// Past this TTL the search jumps straight to rreq_ttl.
  std::uint32_t ring_threshold = 7;

  /// HELLO beaconing (RFC 3561 §6.9): when > 0, every node broadcasts a
  /// HELLO each interval, and routes through neighbours silent for
  /// `allowed_hello_loss` intervals are invalidated proactively. Off by
  /// default — the simulator then detects breaks lazily at forwarding time,
  /// which is far cheaper at 200-node scale.
  double hello_interval_s = 0.0;
  std::uint32_t allowed_hello_loss = 2;
};

/// Control-plane transmission counters; `pair_tx` attributes each
/// transmission to the CBR pair whose traffic caused it.
struct ControlCounters {
  std::uint64_t rreq_tx = 0;
  std::uint64_t rrep_tx = 0;
  std::uint64_t rerr_tx = 0;
  std::uint64_t hello_tx = 0;
  std::vector<std::uint64_t> pair_tx;  ///< sized by caller

  [[nodiscard]] std::uint64_t total() const {
    return rreq_tx + rrep_tx + rerr_tx + hello_tx;
  }

  void credit(std::size_t pair, std::uint64_t n = 1) {
    if (pair < pair_tx.size()) pair_tx[pair] += n;
  }
};

/// The whole network's AODV state.
class AodvNetwork {
 public:
  /// `neighbors(u)` must return the ids currently within radio range of u
  /// (evaluated at the event queue's current time).
  using NeighborFn = std::function<std::vector<NodeId>(NodeId)>;

  AodvNetwork(std::size_t node_count, AodvConfig config, EventQueue& queue,
              NeighborFn neighbors, ControlCounters& counters);

  /// Outcome of a data-plane send attempt.
  struct SendResult {
    bool had_route = false;  ///< source had a valid route when sending
    bool delivered = false;
    std::vector<NodeId> path;  ///< hops actually traversed (src..dst if
                               ///< delivered; src..break point otherwise)
  };

  /// Forwards one data packet src -> dst along installed routes, checking
  /// each link against the current topology. On a broken link the packet is
  /// dropped, the stale routes are invalidated and an RERR travels back to
  /// the source (transmissions credited to `pair`).
  SendResult send_data(NodeId src, NodeId dst, std::size_t pair);

  /// True when src currently holds a fresh route for dst.
  [[nodiscard]] bool has_route(NodeId src, NodeId dst) const;

  /// Starts an asynchronous route discovery; `done(success)` fires when the
  /// RREP arrives or the discovery times out. At most one discovery per
  /// (src, dst) is in flight — further requests while one is pending are
  /// ignored (done is not called for them).
  void start_discovery(NodeId src, NodeId dst, std::size_t pair,
                       std::function<void(bool)> done);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Route {
    NodeId next_hop = kNoNode;
    std::uint32_t hops = 0;
    std::uint32_t dest_seqno = 0;
    double expiry = 0.0;
    bool valid = false;
  };
  struct Node {
    std::uint32_t seqno = 0;
    std::uint32_t rreq_id = 0;
    std::unordered_map<NodeId, Route> routes;
    std::unordered_set<std::uint64_t> pending_discoveries;  ///< dst ids
    /// Last time each neighbour's HELLO was heard (beaconing mode only).
    std::unordered_map<NodeId, double> last_hello;
  };

  /// Shared state of one RREQ flood.
  struct Flood {
    NodeId origin = kNoNode;
    NodeId dest = kNoNode;
    std::uint32_t id = 0;
    std::size_t pair = 0;
    std::function<void(bool)> done;
    bool finished = false;
    std::unordered_set<NodeId> seen;
  };

  [[nodiscard]] Route* find_valid_route(NodeId at, NodeId dst);
  void install_route(NodeId at, NodeId dst, NodeId next_hop,
                     std::uint32_t hops, std::uint32_t dest_seqno);
  void process_rreq(const std::shared_ptr<Flood>& flood, NodeId at,
                    NodeId from, std::uint32_t hop_count, std::uint32_t ttl);
  void send_rrep(const std::shared_ptr<Flood>& flood);
  void finish_flood(const std::shared_ptr<Flood>& flood, bool success);

  /// One ring of the expanding-ring search; `done` receives the ring's
  /// outcome (the escalation chain lives in start_discovery).
  void launch_flood(NodeId src, NodeId dst, std::size_t pair,
                    std::uint32_t ttl, std::function<void(bool)> done);

  /// One HELLO round for one node: beacon, refresh hearers, expire routes
  /// through silent neighbours, reschedule.
  void hello_tick(NodeId node);

  std::vector<Node> nodes_;
  AodvConfig config_;
  EventQueue& queue_;
  NeighborFn neighbors_;
  ControlCounters& counters_;
};

}  // namespace geovalid::manet
