// The §6.2 experiment: CBR traffic over AODV over Levy-Walk mobility.
#pragma once

#include <vector>

#include "manet/aodv.h"
#include "mobility/levy_walk.h"
#include "stats/rng.h"

namespace geovalid::manet {

/// Experiment parameters (defaults are the paper's setup: 200 nodes in a
/// 100 km x 100 km arena, 1 km radio range, 100 CBR pairs).
struct SimConfig {
  std::size_t node_count = 200;
  double radio_range_m = 1000.0;
  std::size_t cbr_pairs = 100;
  double cbr_interval_s = 4.0;
  double duration_s = 7200.0;
  /// Period of the topology snapshots behind the route-availability metric.
  double connectivity_sample_s = 30.0;
  /// Initial discovery retry backoff; doubles per failure up to 16x.
  double discovery_backoff_s = 4.0;
  std::uint64_t seed = 20131122;
  AodvConfig aodv;
};

/// Per-pair outcome — one sample of each Figure 8 CDF.
struct PairMetrics {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t route_changes = 0;   ///< delivered-path transitions
  std::uint64_t control_tx = 0;      ///< control packets attributed to pair
  double availability_ratio = 0.0;   ///< fraction of snapshots with a path
  double duration_min = 0.0;

  [[nodiscard]] double route_changes_per_min() const;
  [[nodiscard]] double delivery_ratio() const;
  /// Figure 8(c): route packets per delivered data packet.
  [[nodiscard]] double overhead_per_data() const;
};

/// Whole-run results.
struct SimResult {
  std::vector<PairMetrics> pairs;
  ControlCounters control;
  std::uint64_t data_sent = 0;
  std::uint64_t data_delivered = 0;
};

/// Runs the simulation over pre-generated node tracks. `tracks.size()` must
/// be >= config.node_count.
[[nodiscard]] SimResult simulate(const std::vector<mobility::NodeTrack>& tracks,
                                 const SimConfig& config);

}  // namespace geovalid::manet
