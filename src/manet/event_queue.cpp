#include "manet/event_queue.h"

#include <algorithm>
#include <utility>

namespace geovalid::manet {

void EventQueue::schedule_at(double t, Handler fn) {
  heap_.push(Event{std::max(t, now_), next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(double delay, Handler fn) {
  schedule_at(now_ + std::max(0.0, delay), std::move(fn));
}

std::size_t EventQueue::run_until(double end_time) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().t <= end_time) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the handler is wasteful, so pop into a local through extraction.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.t;
    ev.fn();
    ++executed;
  }
  if (heap_.empty() || heap_.top().t > end_time) now_ = end_time;
  return executed;
}

}  // namespace geovalid::manet
