// Discrete-event engine for the MANET simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace geovalid::manet {

/// A minimal discrete-event scheduler. Events fire in (time, insertion
/// order); handlers may schedule further events.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time (seconds). 0 before the first event runs.
  [[nodiscard]] double now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now, else clamped to now).
  void schedule_at(double t, Handler fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  void schedule_in(double delay, Handler fn);

  /// Runs events until the queue empties or the next event would fire after
  /// `end_time`. Returns the number of events executed.
  std::size_t run_until(double end_time);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    double t;
    std::uint64_t seq;  ///< tie-break: FIFO among equal timestamps
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace geovalid::manet
