#include "manet/simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace geovalid::manet {
namespace {

/// Snapshot connectivity: BFS over the disk graph at time t.
bool path_exists(const std::vector<mobility::NodeTrack>& tracks,
                 std::size_t node_count, double range_m, double t, NodeId src,
                 NodeId dst) {
  std::vector<geo::PlanePoint> pos(node_count);
  for (std::size_t i = 0; i < node_count; ++i) pos[i] = tracks[i].position(t);

  const double r2 = range_m * range_m;
  auto connected = [&](NodeId a, NodeId b) {
    const double dx = pos[a].x_m - pos[b].x_m;
    const double dy = pos[a].y_m - pos[b].y_m;
    return dx * dx + dy * dy <= r2;
  };

  std::vector<bool> visited(node_count, false);
  std::vector<NodeId> frontier{src};
  visited[src] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    if (u == dst) return true;
    for (NodeId v = 0; v < node_count; ++v) {
      if (!visited[v] && connected(u, v)) {
        visited[v] = true;
        frontier.push_back(v);
      }
    }
  }
  return false;
}

/// Per-pair traffic state used by the CBR driver.
struct PairState {
  double backoff_s = 0.0;
  double next_discovery_allowed = 0.0;
  std::vector<NodeId> last_path;
  std::uint64_t snapshots = 0;
  std::uint64_t snapshots_connected = 0;
};

}  // namespace

double PairMetrics::route_changes_per_min() const {
  if (duration_min <= 0.0) return 0.0;
  return static_cast<double>(route_changes) / duration_min;
}

double PairMetrics::delivery_ratio() const {
  if (data_sent == 0) return 0.0;
  return static_cast<double>(data_delivered) /
         static_cast<double>(data_sent);
}

double PairMetrics::overhead_per_data() const {
  // Pairs that never delivered anything produced pure overhead; dividing by
  // one keeps them on the CDF's heavy end instead of producing infinities.
  const auto delivered = std::max<std::uint64_t>(1, data_delivered);
  return static_cast<double>(control_tx) / static_cast<double>(delivered);
}

SimResult simulate(const std::vector<mobility::NodeTrack>& tracks,
                   const SimConfig& config) {
  if (tracks.size() < config.node_count) {
    throw std::invalid_argument("simulate: not enough node tracks");
  }
  if (config.node_count < 2) {
    throw std::invalid_argument("simulate: need at least two nodes");
  }

  EventQueue queue;
  SimResult result;
  result.control.pair_tx.assign(config.cbr_pairs, 0);

  // Topology oracle evaluated at the queue's current time.
  const double r2 = config.radio_range_m * config.radio_range_m;
  auto neighbors = [&](NodeId u) {
    std::vector<NodeId> out;
    const geo::PlanePoint pu = tracks[u].position(queue.now());
    for (NodeId v = 0; v < config.node_count; ++v) {
      if (v == u) continue;
      const geo::PlanePoint pv = tracks[v].position(queue.now());
      const double dx = pu.x_m - pv.x_m;
      const double dy = pu.y_m - pv.y_m;
      if (dx * dx + dy * dy <= r2) out.push_back(v);
    }
    return out;
  };

  AodvNetwork network(config.node_count, config.aodv, queue, neighbors,
                      result.control);

  // Random CBR pairs (src != dst), deterministic in the seed.
  stats::Rng rng(config.seed);
  result.pairs.resize(config.cbr_pairs);
  std::vector<PairState> state(config.cbr_pairs);
  for (std::size_t p = 0; p < config.cbr_pairs; ++p) {
    PairMetrics& m = result.pairs[p];
    m.src = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.node_count) - 1));
    do {
      m.dst = static_cast<NodeId>(rng.uniform_int(
          0, static_cast<std::int64_t>(config.node_count) - 1));
    } while (m.dst == m.src);
    m.duration_min = config.duration_s / 60.0;
    state[p].backoff_s = config.discovery_backoff_s;
  }

  // CBR driver: one self-rescheduling event per pair.
  std::function<void(std::size_t)> tick = [&](std::size_t p) {
    PairMetrics& m = result.pairs[p];
    PairState& st = state[p];

    ++m.data_sent;
    ++result.data_sent;
    const auto send = network.send_data(m.src, m.dst, p);
    if (send.delivered) {
      ++m.data_delivered;
      ++result.data_delivered;
      st.backoff_s = config.discovery_backoff_s;  // success resets backoff
      if (!st.last_path.empty() && st.last_path != send.path) {
        ++m.route_changes;
      }
      st.last_path = send.path;
    } else if (!send.had_route &&
               queue.now() >= st.next_discovery_allowed) {
      st.next_discovery_allowed = queue.now() + st.backoff_s;
      st.backoff_s = std::min(st.backoff_s * 2.0,
                              16.0 * config.discovery_backoff_s);
      network.start_discovery(m.src, m.dst, p, [](bool) {});
    }

    const double next = queue.now() + config.cbr_interval_s;
    if (next < config.duration_s) {
      queue.schedule_at(next, [&tick, p] { tick(p); });
    }
  };

  for (std::size_t p = 0; p < config.cbr_pairs; ++p) {
    // Stagger pair start times across one interval to avoid a thundering
    // herd of simultaneous floods.
    const double start = rng.uniform(0.0, config.cbr_interval_s);
    queue.schedule_at(start, [&tick, p] { tick(p); });
  }

  // Connectivity sampler for the availability metric.
  std::function<void()> sample_connectivity = [&] {
    for (std::size_t p = 0; p < config.cbr_pairs; ++p) {
      ++state[p].snapshots;
      if (path_exists(tracks, config.node_count, config.radio_range_m,
                      queue.now(), result.pairs[p].src,
                      result.pairs[p].dst)) {
        ++state[p].snapshots_connected;
      }
    }
    const double next = queue.now() + config.connectivity_sample_s;
    if (next < config.duration_s) {
      queue.schedule_at(next, sample_connectivity);
    }
  };
  queue.schedule_at(0.0, sample_connectivity);

  queue.run_until(config.duration_s);

  for (std::size_t p = 0; p < config.cbr_pairs; ++p) {
    PairMetrics& m = result.pairs[p];
    m.control_tx = result.control.pair_tx[p];
    m.availability_ratio =
        state[p].snapshots == 0
            ? 0.0
            : static_cast<double>(state[p].snapshots_connected) /
                  static_cast<double>(state[p].snapshots);
  }
  return result;
}

}  // namespace geovalid::manet
