#include "manet/aodv.h"

#include <algorithm>
#include <stdexcept>

namespace geovalid::manet {
namespace {

/// Packs (src, dst) into the pending-discovery key.
std::uint64_t pending_key(NodeId dst) { return dst; }

}  // namespace

AodvNetwork::AodvNetwork(std::size_t node_count, AodvConfig config,
                         EventQueue& queue, NeighborFn neighbors,
                         ControlCounters& counters)
    : nodes_(node_count),
      config_(config),
      queue_(queue),
      neighbors_(std::move(neighbors)),
      counters_(counters) {
  if (node_count == 0) {
    throw std::invalid_argument("AodvNetwork: zero nodes");
  }
  if (!neighbors_) {
    throw std::invalid_argument("AodvNetwork: missing neighbor function");
  }
  if (config_.hello_interval_s > 0.0) {
    // Stagger the beacons so 200 nodes do not fire in the same instant.
    for (NodeId n = 0; n < node_count; ++n) {
      const double offset = config_.hello_interval_s *
                            static_cast<double>(n) /
                            static_cast<double>(node_count);
      queue_.schedule_in(offset, [this, n] { hello_tick(n); });
    }
  }
}

void AodvNetwork::hello_tick(NodeId node) {
  // Beacon: one broadcast, heard by every current neighbour.
  ++counters_.hello_tx;
  const double now = queue_.now();
  for (NodeId nbr : neighbors_(node)) {
    nodes_[nbr].last_hello[node] = now;
  }

  // Expire routes through neighbours that have gone silent.
  const double deadline =
      now - config_.hello_interval_s *
                static_cast<double>(config_.allowed_hello_loss);
  Node& self = nodes_[node];
  for (auto& [dst, route] : self.routes) {
    if (!route.valid) continue;
    const auto heard = self.last_hello.find(route.next_hop);
    const bool silent = heard == self.last_hello.end()
                            ? now > config_.hello_interval_s *
                                        static_cast<double>(
                                            config_.allowed_hello_loss)
                            : heard->second < deadline;
    if (silent) route.valid = false;
  }

  queue_.schedule_in(config_.hello_interval_s,
                     [this, node] { hello_tick(node); });
}

AodvNetwork::Route* AodvNetwork::find_valid_route(NodeId at, NodeId dst) {
  auto& table = nodes_[at].routes;
  const auto it = table.find(dst);
  if (it == table.end()) return nullptr;
  Route& r = it->second;
  if (!r.valid || r.expiry < queue_.now()) {
    r.valid = false;
    return nullptr;
  }
  return &r;
}

void AodvNetwork::install_route(NodeId at, NodeId dst, NodeId next_hop,
                                std::uint32_t hops,
                                std::uint32_t dest_seqno) {
  Route& r = nodes_[at].routes[dst];
  // Accept fresher sequence numbers, or shorter paths at equal freshness.
  if (r.valid && r.expiry >= queue_.now() &&
      (r.dest_seqno > dest_seqno ||
       (r.dest_seqno == dest_seqno && r.hops <= hops))) {
    // Existing route is at least as good; just refresh its lifetime.
    r.expiry = queue_.now() + config_.active_route_timeout_s;
    return;
  }
  r.next_hop = next_hop;
  r.hops = hops;
  r.dest_seqno = dest_seqno;
  r.expiry = queue_.now() + config_.active_route_timeout_s;
  r.valid = true;
}

bool AodvNetwork::has_route(NodeId src, NodeId dst) const {
  const auto& table = nodes_[src].routes;
  const auto it = table.find(dst);
  return it != table.end() && it->second.valid &&
         it->second.expiry >= queue_.now();
}

AodvNetwork::SendResult AodvNetwork::send_data(NodeId src, NodeId dst,
                                               std::size_t pair) {
  SendResult result;
  Route* route = find_valid_route(src, dst);
  if (route == nullptr) return result;
  result.had_route = true;
  result.path.push_back(src);

  NodeId at = src;
  // Forward hop by hop, bounded by node count (routing loops cannot recur
  // longer than that).
  for (std::size_t hop = 0; hop < nodes_.size(); ++hop) {
    Route* r = find_valid_route(at, dst);
    if (r == nullptr) break;
    const NodeId next = r->next_hop;

    // Link check against the live topology.
    const auto nbrs = neighbors_(at);
    if (std::find(nbrs.begin(), nbrs.end(), next) == nbrs.end()) {
      // Link broke: invalidate every route through `next` at this node and
      // report the break to the source.
      for (auto& [d, rt] : nodes_[at].routes) {
        if (rt.next_hop == next) rt.valid = false;
      }
      // RERR travels the reverse of the traversed path.
      for (std::size_t i = result.path.size(); i-- > 1;) {
        ++counters_.rerr_tx;
        counters_.credit(pair);
        nodes_[result.path[i - 1]].routes[dst].valid = false;
      }
      if (result.path.size() == 1) {
        // Break at the first hop: source invalidates directly (no RERR
        // transmission needed).
        nodes_[src].routes[dst].valid = false;
      }
      return result;
    }

    r->expiry = queue_.now() + config_.active_route_timeout_s;
    result.path.push_back(next);
    at = next;
    if (at == dst) {
      result.delivered = true;
      return result;
    }
  }
  return result;
}

void AodvNetwork::launch_flood(NodeId src, NodeId dst, std::size_t pair,
                               std::uint32_t ttl,
                               std::function<void(bool)> done) {
  Node& node = nodes_[src];
  auto flood = std::make_shared<Flood>();
  flood->origin = src;
  flood->dest = dst;
  flood->id = ++node.rreq_id;
  flood->pair = pair;
  flood->done = std::move(done);
  ++node.seqno;

  // Per-ring timeout: a bounded ring answers quickly, so scale the wait
  // with the ring's radius (round trip plus slack), capped by the
  // configured ceiling.
  const double ring_wait =
      std::min(config_.discovery_timeout_s,
               0.05 + 4.0 * static_cast<double>(ttl) * config_.hop_delay_s);
  queue_.schedule_in(ring_wait, [this, flood] { finish_flood(flood, false); });

  process_rreq(flood, src, kNoNode, 0, ttl);
}

void AodvNetwork::start_discovery(NodeId src, NodeId dst, std::size_t pair,
                                  std::function<void(bool)> done) {
  Node& node = nodes_[src];
  if (!node.pending_discoveries.insert(pending_key(dst)).second) {
    return;  // one discovery per destination at a time
  }

  auto finish = [this, src, dst,
                 done = std::move(done)](bool success) {
    nodes_[src].pending_discoveries.erase(pending_key(dst));
    if (done) done(success);
  };

  if (!config_.expanding_ring) {
    launch_flood(src, dst, pair, config_.rreq_ttl, std::move(finish));
    return;
  }

  // Expanding ring: escalate the TTL until the RREP arrives or the full
  // flood fails. The stored callback holds only a weak self-reference —
  // a strong one would form a shared_ptr cycle and leak the chain; each
  // in-flight flood's continuation pins the callback alive instead.
  auto escalate = std::make_shared<std::function<void(std::uint32_t)>>();
  const std::weak_ptr<std::function<void(std::uint32_t)>> weak = escalate;
  *escalate = [this, src, dst, pair, finish = std::move(finish),
               weak](std::uint32_t ttl) {
    const auto self = weak.lock();
    launch_flood(src, dst, pair, ttl,
                 [this, ttl, finish, self](bool success) {
                   if (success || ttl >= config_.rreq_ttl) {
                     finish(success);
                     return;
                   }
                   std::uint32_t next = ttl + config_.ring_increment;
                   if (next > config_.ring_threshold) next = config_.rreq_ttl;
                   (*self)(next);
                 });
  };
  (*escalate)(std::min(config_.ring_start_ttl, config_.rreq_ttl));
}

void AodvNetwork::process_rreq(const std::shared_ptr<Flood>& flood, NodeId at,
                               NodeId from, std::uint32_t hop_count,
                               std::uint32_t ttl) {
  if (flood->finished) return;
  if (!flood->seen.insert(at).second) return;

  // Reverse route toward the origin.
  if (from != kNoNode) {
    install_route(at, flood->origin, from, hop_count,
                  nodes_[flood->origin].seqno);
  }

  if (at == flood->dest) {
    send_rrep(flood);
    return;
  }
  if (ttl == 0) return;

  // Rebroadcast: one transmission, heard by every current neighbour.
  ++counters_.rreq_tx;
  counters_.credit(flood->pair);
  for (NodeId nbr : neighbors_(at)) {
    queue_.schedule_in(config_.hop_delay_s,
                       [this, flood, nbr, at, hop_count, ttl] {
                         process_rreq(flood, nbr, at, hop_count + 1, ttl - 1);
                       });
  }
}

void AodvNetwork::send_rrep(const std::shared_ptr<Flood>& flood) {
  if (flood->finished) return;
  Node& dest_node = nodes_[flood->dest];
  ++dest_node.seqno;

  // Unicast back along the reverse routes installed by the RREQ wave,
  // installing forward routes as it goes.
  NodeId at = flood->dest;
  std::uint32_t hops = 0;
  while (at != flood->origin) {
    Route* back = find_valid_route(at, flood->origin);
    if (back == nullptr) {
      finish_flood(flood, false);
      return;
    }
    const NodeId prev = back->next_hop;
    ++counters_.rrep_tx;
    counters_.credit(flood->pair);
    ++hops;
    install_route(prev, flood->dest, at, hops, dest_node.seqno);
    at = prev;
    if (hops > nodes_.size()) {  // corrupt reverse path; abort safely
      finish_flood(flood, false);
      return;
    }
  }
  finish_flood(flood, true);
}

void AodvNetwork::finish_flood(const std::shared_ptr<Flood>& flood,
                               bool success) {
  if (flood->finished) return;
  flood->finished = true;
  // The pending-discovery entry is owned by start_discovery's completion
  // wrapper (one entry spans a whole expanding-ring escalation chain).
  if (flood->done) flood->done(success);
}

}  // namespace geovalid::manet
