// Synthetic city: the POI universe users live in.
#pragma once

#include <vector>

#include "stats/rng.h"
#include "synth/config.h"
#include "trace/poi.h"

namespace geovalid::synth {

/// Generates the venue universe for one study.
///
/// POIs are scattered in a disc around the city center with a dense downtown
/// core; categories follow the configured mix. Venue names encode id and
/// category so CSV dumps stay human-readable.
[[nodiscard]] std::vector<trace::Poi> generate_city(const CityConfig& config,
                                                    stats::Rng& rng);

}  // namespace geovalid::synth
