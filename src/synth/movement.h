// Movement synthesis: expands an itinerary into a per-minute GPS trace.
#pragma once

#include <vector>

#include "stats/rng.h"
#include "synth/config.h"
#include "synth/persona.h"
#include "synth/schedule.h"
#include "trace/gps.h"

namespace geovalid::synth {

/// One trip between consecutive stays; the checkin model uses these to place
/// driveby checkins on real moving segments.
struct Trip {
  std::uint32_t from_poi = 0;  ///< into CityView::pois
  std::uint32_t to_poi = 0;
  trace::TimeSec depart = 0;
  trace::TimeSec arrive = 0;
  double speed_mps = 0.0;  ///< cruise speed along the (straight) path
};

/// Travel time between two points given trip logistics (walk vs drive plus
/// a fixed parking/boarding overhead). Shared by schedule and movement so
/// timetables and traces agree.
[[nodiscard]] trace::TimeSec travel_time(double distance_m);

/// Cruise speed (m/s) chosen for a trip of the given length: walking pace
/// under ~900 m, urban driving above.
[[nodiscard]] double trip_speed_mps(double distance_m, stats::Rng& rng);

/// Result of movement synthesis.
struct MovementResult {
  trace::GpsTrace gps;
  std::vector<Trip> trips;
};

/// Samples the user's position once per minute inside each recording window:
/// jittered fixes while at a stay (with indoor dropout bridged by WiFi
/// fingerprint + quiet accelerometer), interpolated fixes while on a trip.
[[nodiscard]] MovementResult synthesize_movement(const StudyConfig& config,
                                                 const CityView& city,
                                                 const Itinerary& itinerary,
                                                 stats::Rng& rng);

}  // namespace geovalid::synth
