#include "synth/schedule.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesic.h"
#include "synth/movement.h"

namespace geovalid::synth {
namespace {

using trace::PoiCategory;
using trace::TimeSec;
using trace::hours;
using trace::minutes;

constexpr double kSecPerHour = 3600.0;

TimeSec at_hour(TimeSec midnight, double hour) {
  return midnight + static_cast<TimeSec>(std::lround(hour * kSecPerHour));
}

/// Picks the persona's recurring lunch/coffee spots near the workplace.
struct WorkNeighborhood {
  std::vector<std::uint32_t> lunch;   // Food venues near work
  std::vector<std::uint32_t> coffee;  // Food/Shop venues very near work
};

WorkNeighborhood find_work_neighborhood(const CityView& city,
                                        const Persona& persona) {
  WorkNeighborhood wn;
  const geo::LatLon work = city.pois[persona.work_index].location;
  // Index ids returned by the grid equal poi.id == index + 1 (generator
  // invariant), but translate defensively through a scan-free formula is
  // unsafe across datasets, so map id -> index via the span.
  for (trace::PoiId id : city.grid->within(work, 900.0)) {
    // Generator assigns id = index + 1; bounds-check before trusting it.
    const std::size_t idx = id - 1;
    if (idx >= city.pois.size() || city.pois[idx].id != id) continue;
    const PoiCategory cat = city.pois[idx].category;
    if (cat == PoiCategory::kFood) {
      wn.lunch.push_back(static_cast<std::uint32_t>(idx));
      if (wn.coffee.size() < 4) wn.coffee.push_back(static_cast<std::uint32_t>(idx));
    } else if (cat == PoiCategory::kShop && wn.coffee.size() < 4) {
      wn.coffee.push_back(static_cast<std::uint32_t>(idx));
    }
  }
  return wn;
}

/// Appends a stay and returns its departure time.
TimeSec push_stay(std::vector<Stay>& stays, std::uint32_t poi,
                  TimeSec arrive, TimeSec depart) {
  if (depart > arrive) stays.push_back(Stay{poi, arrive, depart});
  return depart;
}

struct DayContext {
  const StudyConfig* config;
  const CityView* city;
  const Persona* persona;
  stats::Rng* rng;
  const WorkNeighborhood* work_nbhd;
  const stats::ZipfSampler* routine_zipf;
};

std::uint32_t pick_routine(const DayContext& ctx) {
  const auto& pool = ctx.persona->routine_pois;
  return pool[std::min(ctx.routine_zipf->sample(*ctx.rng), pool.size() - 1)];
}

geo::LatLon loc_of(const DayContext& ctx, std::uint32_t idx) {
  return ctx.city->pois[idx].location;
}

/// Advances `now` by the travel time from `from` to `to`.
TimeSec advance_travel(const DayContext& ctx, TimeSec now, std::uint32_t from,
                       std::uint32_t to) {
  const double d = geo::fast_distance_m(loc_of(ctx, from), loc_of(ctx, to));
  return now + travel_time(d);
}

/// Students (College workplaces) live a fragmented campus day: several
/// class/library blocks at the *same* venue with short breaks in between.
/// Their one campus POI ends up dominating their visit history — these are
/// the Figure 3 users whose single top place carries >40% of missing
/// checkins.
void campus_day(const DayContext& ctx, std::vector<Stay>& stays,
                std::uint32_t& here, TimeSec& now) {
  auto& rng = *ctx.rng;
  const Persona& p = *ctx.persona;

  const auto blocks = static_cast<int>(rng.uniform_int(4, 6));
  for (int b = 0; b < blocks; ++b) {
    now = advance_travel(ctx, now, here, p.work_index);
    here = p.work_index;
    now = push_stay(stays, here, now,
                    now + minutes(rng.uniform_int(55, 115)));
    if (b + 1 == blocks) break;
    // Break: sometimes a nearby food/coffee stop, otherwise wandering
    // between buildings (no stay).
    if (!ctx.work_nbhd->coffee.empty() && rng.bernoulli(0.35)) {
      const std::uint32_t spot = ctx.work_nbhd->coffee[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ctx.work_nbhd->coffee.size()) - 1))];
      if (spot != here) {
        now = advance_travel(ctx, now, here, spot);
        here = spot;
        now = push_stay(stays, here, now,
                        now + minutes(rng.uniform_int(12, 35)));
      }
    } else {
      now += minutes(rng.uniform_int(15, 40));
    }
  }
}

void weekday_plan(const DayContext& ctx, TimeSec midnight,
                  std::vector<Stay>& stays) {
  auto& rng = *ctx.rng;
  const Persona& p = *ctx.persona;

  std::uint32_t here = p.home_index;
  // Morning at home until the commute.
  const TimeSec leave_home = at_hour(midnight, rng.uniform(7.55, 8.3));
  TimeSec now = push_stay(stays, here, at_hour(midnight, 6.2), leave_home);

  if (ctx.city->pois[p.work_index].category == PoiCategory::kCollege) {
    campus_day(ctx, stays, here, now);
    // Few evening errands (students run them on campus), straight home.
    const auto student_errands =
        rng.poisson(0.5 * ctx.config->schedule.weekday_errands *
                    p.traits.errand_factor);
    for (std::uint64_t e = 0; e < student_errands; ++e) {
      const std::uint32_t spot = pick_routine(ctx);
      if (spot == here) continue;
      now = advance_travel(ctx, now, here, spot);
      here = spot;
      now = push_stay(stays, here, now, now + minutes(rng.uniform_int(14, 42)));
      if (now > at_hour(midnight, 21.6)) break;
    }
    now = advance_travel(ctx, now, here, p.home_index);
    push_stay(stays, p.home_index, now,
              at_hour(midnight, rng.uniform(22.8, 23.8)));
    return;
  }

  // Optional coffee stop on the way in.
  if (!ctx.work_nbhd->coffee.empty() && rng.bernoulli(0.5)) {
    const std::uint32_t cafe = ctx.work_nbhd->coffee[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ctx.work_nbhd->coffee.size()) - 1))];
    now = advance_travel(ctx, now, here, cafe);
    now = push_stay(stays, cafe, now, now + minutes(rng.uniform_int(7, 16)));
    here = cafe;
  }

  // Morning work block.
  now = advance_travel(ctx, now, here, p.work_index);
  here = p.work_index;
  now = push_stay(stays, here, now,
                  at_hour(midnight, rng.uniform(11.9, 12.35)));

  // Lunch.
  std::uint32_t lunch = here;
  if (!ctx.work_nbhd->lunch.empty()) {
    lunch = ctx.work_nbhd->lunch[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ctx.work_nbhd->lunch.size()) - 1))];
  } else {
    lunch = pick_routine(ctx);
  }
  now = advance_travel(ctx, now, here, lunch);
  now = push_stay(stays, lunch, now, now + minutes(rng.uniform_int(30, 52)));
  here = lunch;

  // Afternoon work block, sometimes split by a short break outside the
  // building (coffee run, quick errand) that fragments it into two visits.
  now = advance_travel(ctx, now, here, p.work_index);
  here = p.work_index;
  const bool split_afternoon =
      !ctx.work_nbhd->coffee.empty() && rng.bernoulli(0.45);
  if (split_afternoon) {
    now = push_stay(stays, here, now,
                    at_hour(midnight, rng.uniform(14.6, 15.3)));
    const std::uint32_t spot = ctx.work_nbhd->coffee[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ctx.work_nbhd->coffee.size()) - 1))];
    if (spot != here) {
      now = advance_travel(ctx, now, here, spot);
      now = push_stay(stays, spot, now, now + minutes(rng.uniform_int(8, 18)));
      now = advance_travel(ctx, now, spot, p.work_index);
    }
  }
  now = push_stay(stays, here, now,
                  at_hour(midnight, rng.uniform(16.7, 17.8)));

  // Evening errands (homebodies run few; social butterflies many).
  const auto errands = rng.poisson(ctx.config->schedule.weekday_errands *
                                   p.traits.errand_factor);
  for (std::uint64_t e = 0; e < errands; ++e) {
    const std::uint32_t spot = pick_routine(ctx);
    if (spot == here) continue;
    now = advance_travel(ctx, now, here, spot);
    here = spot;
    now = push_stay(stays, here, now, now + minutes(rng.uniform_int(14, 42)));
    if (now > at_hour(midnight, 21.6)) break;
  }

  // Evening leisure (dinner, a bar) — delays the trip home, often past the
  // end of the recording window.
  if (rng.bernoulli(ctx.config->schedule.evening_leisure_prob)) {
    const std::uint32_t spot = pick_routine(ctx);
    if (spot != here) {
      now = advance_travel(ctx, now, here, spot);
      here = spot;
      now = push_stay(stays, here, now, now + minutes(rng.uniform_int(45, 95)));
    }
  }

  // Home for the evening.
  now = advance_travel(ctx, now, here, p.home_index);
  push_stay(stays, p.home_index, now,
            at_hour(midnight, rng.uniform(22.8, 23.8)));
}

void weekend_plan(const DayContext& ctx, TimeSec midnight,
                  std::vector<Stay>& stays) {
  auto& rng = *ctx.rng;
  const Persona& p = *ctx.persona;

  std::uint32_t here = p.home_index;
  TimeSec now = push_stay(stays, here, at_hour(midnight, 7.0),
                          at_hour(midnight, rng.uniform(9.1, 10.6)));

  // Weekend workers spend a shift at the workplace before any leisure.
  double outing_scale = p.traits.errand_factor;
  if (p.traits.weekend_worker && rng.bernoulli(0.75)) {
    now = advance_travel(ctx, now, here, p.work_index);
    here = p.work_index;
    now = push_stay(stays, here, now,
                    at_hour(midnight, rng.uniform(13.2, 13.8)));
    if (!ctx.work_nbhd->lunch.empty()) {
      const std::uint32_t spot = ctx.work_nbhd->lunch[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ctx.work_nbhd->lunch.size()) - 1))];
      if (spot != here) {
        now = advance_travel(ctx, now, here, spot);
        now = push_stay(stays, spot, now, now + minutes(rng.uniform_int(25, 45)));
        now = advance_travel(ctx, now, spot, p.work_index);
      }
    }
    now = push_stay(stays, here, now,
                    at_hour(midnight, rng.uniform(17.0, 17.8)));
    outing_scale *= 0.4;  // a worked weekend leaves little leisure time
  }

  const auto outings = std::max<std::uint64_t>(
      1, rng.poisson(ctx.config->schedule.weekend_outings * outing_scale));
  for (std::uint64_t o = 0; o < outings; ++o) {
    const std::uint32_t spot = pick_routine(ctx);
    if (spot == here) continue;
    now = advance_travel(ctx, now, here, spot);
    here = spot;
    now = push_stay(stays, here, now, now + minutes(rng.uniform_int(24, 85)));
    // Occasionally swing home between outings.
    if (rng.bernoulli(0.15) && o + 1 < outings) {
      now = advance_travel(ctx, now, here, p.home_index);
      here = p.home_index;
      now = push_stay(stays, here, now, now + minutes(rng.uniform_int(35, 95)));
    }
    if (now > at_hour(midnight, 21.5)) break;
  }

  now = advance_travel(ctx, now, here, p.home_index);
  push_stay(stays, p.home_index, now,
            at_hour(midnight, rng.uniform(22.6, 23.9)));
}

}  // namespace

Itinerary generate_itinerary(const StudyConfig& config, const CityView& city,
                             const Persona& persona, stats::Rng& rng) {
  Itinerary it;
  const WorkNeighborhood wn = find_work_neighborhood(city, persona);
  const stats::ZipfSampler routine_zipf(persona.routine_pois.size(), 0.55);
  const DayContext ctx{&config, &city, &persona, &rng, &wn, &routine_zipf};

  for (std::size_t day = 0; day < persona.study_days; ++day) {
    const TimeSec midnight =
        config.study_start + trace::days(static_cast<TimeSec>(day));
    // Study start is a Tuesday; day indices 4 and 5 of each week land on
    // Saturday/Sunday.
    const std::size_t dow = day % 7;
    const bool weekend = dow == 4 || dow == 5;

    if (weekend) {
      weekend_plan(ctx, midnight, it.stays);
    } else {
      weekday_plan(ctx, midnight, it.stays);
    }

    // Recording window: start jitters enough that on some days the phone
    // starts logging only after the user left home (this is one source of
    // days without a morning home visit). Weekends start later still.
    const double base_start =
        config.schedule.recording_start_hour +
        (weekend ? config.schedule.weekend_start_offset_hours : 0.0);
    const double start_h = rng.uniform(base_start - 0.9, base_start + 1.3);
    const double len_h = config.schedule.recording_hours * rng.uniform(0.9, 1.08);
    it.windows.push_back(RecordingWindow{
        at_hour(midnight, start_h), at_hour(midnight, start_h + len_h)});
  }

  // Guard the invariant the movement synthesizer relies on.
  for (std::size_t i = 1; i < it.stays.size(); ++i) {
    if (it.stays[i].arrive < it.stays[i - 1].depart) {
      it.stays[i].arrive = it.stays[i - 1].depart;
      if (it.stays[i].depart < it.stays[i].arrive) {
        it.stays[i].depart = it.stays[i].arrive;
      }
    }
  }
  std::erase_if(it.stays, [](const Stay& s) { return s.depart <= s.arrive; });
  return it;
}

void apply_appointments(Itinerary& itinerary,
                        std::span<const Appointment> appointments) {
  constexpr TimeSec kTravelAllowance = minutes(12);

  for (const Appointment& appt : appointments) {
    const TimeSec blocked_from = appt.start - kTravelAllowance;
    const TimeSec blocked_to = appt.end + kTravelAllowance;

    for (Stay& s : itinerary.stays) {
      if (s.depart <= blocked_from || s.arrive >= blocked_to) continue;
      if (s.arrive < blocked_from) {
        // Stay runs into the appointment window: leave early.
        s.depart = blocked_from;
      } else if (s.depart > blocked_to) {
        // Stay starts inside the window: arrive late.
        s.arrive = blocked_to;
      } else {
        // Fully swallowed by the window: drop (zero-length stays are
        // erased below).
        s.depart = s.arrive;
      }
    }
    itinerary.stays.push_back(Stay{appt.poi_index, appt.start, appt.end});
  }

  std::sort(itinerary.stays.begin(), itinerary.stays.end(),
            [](const Stay& a, const Stay& b) { return a.arrive < b.arrive; });
  for (std::size_t i = 1; i < itinerary.stays.size(); ++i) {
    if (itinerary.stays[i].arrive < itinerary.stays[i - 1].depart) {
      itinerary.stays[i].arrive = itinerary.stays[i - 1].depart;
      if (itinerary.stays[i].depart < itinerary.stays[i].arrive) {
        itinerary.stays[i].depart = itinerary.stays[i].arrive;
      }
    }
  }
  std::erase_if(itinerary.stays,
                [](const Stay& s) { return s.depart <= s.arrive; });
}

}  // namespace geovalid::synth
