#include "synth/city.h"

#include <cmath>
#include <string>

#include "geo/geodesic.h"
#include "stats/samplers.h"

namespace geovalid::synth {
namespace {

constexpr double kTau = 6.28318530717958647692;

/// Uniform point in a disc of radius r around center (area-uniform).
geo::LatLon point_in_disc(stats::Rng& rng, const geo::LatLon& center,
                          double radius_m) {
  const double r = radius_m * std::sqrt(rng.uniform());
  const double theta = rng.uniform() * kTau;
  return geo::destination(center, theta * 360.0 / kTau, r);
}

}  // namespace

std::vector<trace::Poi> generate_city(const CityConfig& config,
                                      stats::Rng& rng) {
  std::vector<double> weights(config.category_mix.begin(),
                              config.category_mix.end());
  const stats::DiscreteSampler category_sampler(std::move(weights));
  const auto categories = trace::all_poi_categories();

  std::vector<trace::Poi> pois;
  pois.reserve(config.poi_count);
  for (std::size_t i = 0; i < config.poi_count; ++i) {
    trace::Poi p;
    p.id = static_cast<trace::PoiId>(i + 1);  // 0 is reserved-ish; start at 1
    p.category = categories[category_sampler.sample(rng)];

    const bool downtown = rng.bernoulli(config.downtown_fraction);
    const double radius =
        downtown ? config.radius_m * 0.2 : config.radius_m;
    p.location = point_in_disc(rng, config.center, radius);

    p.name = std::string(trace::to_string(p.category)) + "-" +
             std::to_string(p.id);
    pois.push_back(std::move(p));
  }
  return pois;
}

}  // namespace geovalid::synth
