// Per-user persona: where the user lives and how they behave.
#pragma once

#include <vector>

#include "stats/rng.h"
#include "stats/samplers.h"
#include "synth/config.h"
#include "trace/gps.h"
#include "trace/poi.h"
#include "trace/poi_grid.h"

namespace geovalid::synth {

/// Read-only view of the generated city shared by all persona sampling.
struct CityView {
  std::span<const trace::Poi> pois;
  const trace::PoiGrid* grid = nullptr;  ///< indexed over `pois`

  /// Indices into `pois` per category (underlying enum value).
  std::array<std::vector<std::uint32_t>, trace::kPoiCategoryCount> by_category;
};

/// Builds the categorized view over a generated city.
[[nodiscard]] CityView make_city_view(std::span<const trace::Poi> pois,
                                      const trace::PoiGrid& grid);

/// Latent behavioural traits, all in [0, 1] except activity (~lognormal,
/// median 1).
struct Traits {
  double activity = 1.0;   ///< scales every event rate
  double gamer = 0.0;      ///< reward-seeking disposition
  double badge_hunter = 0.0;   ///< drives remote checkins
  double mayor_farmer = 0.0;   ///< drives superfluous checkins
  double commuter = 0.0;       ///< drives driveby checkins

  /// Scales the number of errands/outings (mean ~1). Low values describe
  /// homebodies whose mobility is dominated by home and work — the users
  /// whose single top POI carries most of their missing checkins (Fig. 3).
  double errand_factor = 1.0;

  /// Works weekend shifts too (service/retail schedules). Their workplace
  /// dominates their visit history even more strongly.
  bool weekend_worker = false;
};

/// One synthetic participant.
struct Persona {
  trace::UserId id = 0;
  Traits traits;

  std::uint32_t home_index = 0;  ///< index into CityView::pois
  std::uint32_t work_index = 0;

  /// Personal venue pool (indices into CityView::pois) with Zipf-like
  /// popularity: routine_pois[0] is the user's most-frequented errand spot.
  std::vector<std::uint32_t> routine_pois;

  /// Number of study days this user contributed.
  std::size_t study_days = 14;
};

/// Samples a persona. `user_seed_stream` decorrelates users.
[[nodiscard]] Persona sample_persona(const StudyConfig& config,
                                     const CityView& city, trace::UserId id,
                                     stats::Rng& rng);

/// Draws Beta(alpha, beta) via the gamma-ratio construction.
[[nodiscard]] double sample_beta(stats::Rng& rng, double alpha, double beta);

}  // namespace geovalid::synth
