#include "synth/config.h"

namespace geovalid::synth {

StudyConfig primary_preset() {
  StudyConfig cfg;  // defaults are the primary calibration
  return cfg;
}

StudyConfig baseline_preset() {
  StudyConfig cfg;
  cfg.name = "baseline";
  cfg.seed = 20130915;
  cfg.user_count = 47;
  cfg.mean_days_per_user = 20.8;
  // Students on a compact campus: smaller universe, denser core.
  cfg.city.poi_count = 1200;
  cfg.city.radius_m = 8000.0;
  cfg.city.downtown_fraction = 0.6;
  // Volunteers checked in without reward pressure: extraneous behaviour off,
  // and a lower overall checkin appetite (665 checkins / 47 users / 20.8
  // days in Table 1, versus ~1 honest checkin per user-day in primary).
  cfg.extraneous_scale = 0.03;
  cfg.behavior.honest_scale = 0.48;
  // Volunteers check in almost exclusively from the (recording) study
  // phone, so their checkin trace is nearly all honest — the property §4.1
  // uses them for.
  cfg.behavior.honest_recorded_bias = 0.97;
  // Fewer errands (campus life) and a shorter recording day: Table 1 shows
  // ~6.4 visits and ~570 GPS points per user-day for the baseline.
  cfg.schedule.weekday_errands = 4.6;
  cfg.schedule.weekend_outings = 5.2;
  cfg.schedule.recording_hours = 9.6;
  return cfg;
}

StudyConfig tiny_preset() {
  StudyConfig cfg;
  cfg.name = "tiny";
  cfg.seed = 42;
  cfg.user_count = 16;
  cfg.mean_days_per_user = 6.0;
  cfg.city.poi_count = 400;
  cfg.city.radius_m = 6000.0;
  // A dense social graph so friendship-inference tests have signal even
  // with sixteen users and a week of data.
  cfg.social.friend_prob_base = 0.6;
  cfg.social.covisits_per_week = 4.0;
  return cfg;
}

}  // namespace geovalid::synth
