// Configuration of the synthetic user study.
//
// The paper's datasets are private; this generator is the documented
// substitution (see DESIGN.md §2). Every knob below has a default chosen so
// the *primary preset* reproduces the paper's aggregate statistics (Table 1,
// Figure 1 partition, Table 2 correlation structure) and the *baseline
// preset* reproduces the volunteer control group.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "geo/latlon.h"
#include "trace/poi.h"
#include "trace/time.h"

namespace geovalid::synth {

/// Spatial layout of the synthetic city.
struct CityConfig {
  geo::LatLon center{34.4208, -119.6982};  ///< the authors' home town
  double radius_m = 15000.0;               ///< POIs live inside this disc
  std::size_t poi_count = 3000;

  /// Relative frequency of each PoiCategory in the venue universe, indexed
  /// by the enum's underlying value (Professional, Outdoors, Nightlife,
  /// Arts, Shop, Travel, Residence, Food, College).
  std::array<double, trace::kPoiCategoryCount> category_mix{
      0.16, 0.06, 0.07, 0.05, 0.20, 0.07, 0.17, 0.18, 0.04};

  /// Fraction of POIs concentrated in the dense downtown core (inner 20% of
  /// the radius); the rest spread over the whole disc.
  double downtown_fraction = 0.45;
};

/// Behavioural traits of the user population. Rates are per *fully active*
/// trait (trait value 1.0); each user's draw scales them down.
struct BehaviorConfig {
  /// Probability of an honest checkin at a visit, by POI category (same
  /// index order as CityConfig::category_mix). Routine places (Residence,
  /// Professional) are near zero — that is what creates missing checkins.
  std::array<double, trace::kPoiCategoryCount> honest_checkin_prob{
      0.05, 0.35, 0.50, 0.35, 0.18, 0.20, 0.025, 0.38, 0.10};

  /// Global multiplier on honest checkin probability (per-user activity
  /// scales it further).
  double honest_scale = 0.57;

  /// Probability that an honest checkin landing *outside* the day's
  /// recording window is suppressed. Checking in and carrying an active
  /// phone are correlated activities; study volunteers (baseline preset)
  /// almost never check in with the study phone off.
  double honest_recorded_bias = 0.75;

  /// Mean "reward gamer" trait (Beta-distributed). Drives badge hunting
  /// (remote checkins) and mayorship farming (superfluous checkins).
  double gamer_alpha = 1.6;
  double gamer_beta = 3.4;

  /// Remote checkin sessions per day for a gamer trait of 1.0.
  double remote_sessions_per_day = 2.3;
  /// Events per remote session (geometric, >= 1).
  double remote_session_mean_events = 2.1;
  /// Fraction of remote sessions that happen outside the recording window
  /// (they become "unclassifiable" extraneous checkins, ~10% of extraneous
  /// in the paper).
  double remote_offline_fraction = 0.10;

  /// Probability that an honest checkin is accompanied by a superfluous
  /// burst, for a mayor trait of 1.0.
  double superfluous_prob_per_honest = 1.3;
  /// Extra checkins per superfluous burst (geometric, >= 1).
  double superfluous_mean_events = 1.6;

  /// Driveby checkins per trip for a commuter trait of 1.0.
  double driveby_prob_per_trip = 0.40;
};

/// Daily routine structure.
struct ScheduleConfig {
  /// Average errand/leisure stops per weekday evening and per weekend day.
  double weekday_errands = 6.0;
  double weekend_outings = 7.2;

  /// Probability of an evening leisure stop (dinner/bar) after errands,
  /// which also delays the return home past the recording window on many
  /// days (one reason home visits are under-sampled).
  double evening_leisure_prob = 0.75;

  /// Weekend recording starts this many hours later (participants sleep in
  /// and power up their phones late).
  double weekend_start_offset_hours = 1.7;

  /// Recording window: the app logs GPS only while the phone is awake and
  /// the agent allows it. Start time and duration jitter per user-day.
  double recording_start_hour = 8.3;
  double recording_hours = 12.3;

  /// Probability a scheduled stay loses its GPS fix on a given indoor
  /// minute (WiFi/accelerometer bridge those samples).
  double indoor_dropout_prob = 0.55;
};

/// Social structure: the friendship graph and the joint outings it causes.
/// Friendship-inference applications (§6.2's last example) need both a
/// ground-truth graph and genuine co-location signal in the traces.
struct SocialConfig {
  /// Base probability that two users are friends; decays with the distance
  /// between their homes (people befriend neighbours and colleagues).
  double friend_prob_base = 0.08;
  double friend_distance_scale_m = 4000.0;

  /// Joint evening outings per friend pair per week (both users visit the
  /// same venue at the same time).
  double covisits_per_week = 0.7;

  /// Maximum venue distance from the pair's home midpoint for an outing.
  double outing_radius_m = 3000.0;
};

/// Complete study recipe.
struct StudyConfig {
  std::string name = "primary";
  std::uint64_t seed = 20131121;  ///< HotNets'13 opening day
  std::size_t user_count = 244;
  double mean_days_per_user = 14.2;
  trace::TimeSec study_start = 1358208000;  ///< 2013-01-15T00:00:00Z

  CityConfig city;
  BehaviorConfig behavior;
  ScheduleConfig schedule;
  SocialConfig social;

  /// Scales every extraneous behaviour at once; the baseline preset sets
  /// this near zero (volunteers had no reward incentive).
  double extraneous_scale = 1.0;

  /// Per-user activity multiplier spread (lognormal sigma) applied to both
  /// honest and extraneous rates.
  double activity_sigma = 0.45;
};

/// The app-store Foursquare-user study (Table 1, row "Primary").
[[nodiscard]] StudyConfig primary_preset();

/// The recruited-volunteer control group (Table 1, row "Baseline").
[[nodiscard]] StudyConfig baseline_preset();

/// A miniature preset (a dozen users, few days) for unit tests — same
/// behaviour mix as primary, two orders of magnitude cheaper.
[[nodiscard]] StudyConfig tiny_preset();

}  // namespace geovalid::synth
