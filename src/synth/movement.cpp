#include "synth/movement.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "geo/geodesic.h"

namespace geovalid::synth {
namespace {

using trace::GpsPoint;
using trace::TimeSec;

constexpr double kWalkThresholdM = 900.0;
constexpr double kWalkSpeedMps = 1.35;
constexpr TimeSec kTripOverheadSec = 100;  // parking, lights, building exit

/// GPS horizontal error: ~12 m circular error typical of phone GPS.
geo::LatLon jitter_fix(stats::Rng& rng, const geo::LatLon& truth,
                       double sigma_m) {
  const double bearing = rng.uniform(0.0, 360.0);
  const double r = std::fabs(rng.normal(0.0, sigma_m));
  return geo::destination(truth, bearing, r);
}

std::uint32_t wifi_fingerprint_of(std::uint32_t poi_index) {
  // Stable per-venue fingerprint; 0 means "no usable WiFi" so shift by 1.
  return std::hash<std::uint32_t>{}(poi_index + 1) | 1u;
}

}  // namespace

trace::TimeSec travel_time(double distance_m) {
  if (distance_m <= 0.0) return kTripOverheadSec;
  const double speed =
      distance_m < kWalkThresholdM ? kWalkSpeedMps : 11.0;  // nominal cruise
  return kTripOverheadSec +
         static_cast<TimeSec>(std::lround(distance_m / speed));
}

double trip_speed_mps(double distance_m, stats::Rng& rng) {
  if (distance_m < kWalkThresholdM) {
    return rng.uniform(1.1, 1.6);  // walking
  }
  return rng.uniform(8.0, 14.5);  // urban driving incl. stops
}

MovementResult synthesize_movement(const StudyConfig& config,
                                   const CityView& city,
                                   const Itinerary& itinerary,
                                   stats::Rng& rng) {
  MovementResult result;
  if (itinerary.stays.empty()) return result;

  // --- Derive trips between consecutive stays ----------------------------
  for (std::size_t i = 1; i < itinerary.stays.size(); ++i) {
    const Stay& a = itinerary.stays[i - 1];
    const Stay& b = itinerary.stays[i];
    if (b.poi_index == a.poi_index) continue;
    Trip trip;
    trip.from_poi = a.poi_index;
    trip.to_poi = b.poi_index;
    trip.depart = a.depart;
    trip.arrive = b.arrive;
    const double d = geo::fast_distance_m(city.pois[a.poi_index].location,
                                          city.pois[b.poi_index].location);
    trip.speed_mps = trip_speed_mps(d, rng);
    result.trips.push_back(trip);
  }

  // --- Per-minute sampling inside recording windows -----------------------
  // Position model at time t: inside a stay -> the venue (+GPS jitter or
  // indoor dropout); between stays -> linear interpolation along the trip.
  std::size_t stay_cursor = 0;
  const auto& stays = itinerary.stays;

  auto position_at = [&](TimeSec t) -> std::pair<geo::LatLon, bool> {
    // Advance cursor to the last stay whose arrive <= t (windows are
    // scanned in time order, so the cursor only moves forward).
    while (stay_cursor + 1 < stays.size() &&
           stays[stay_cursor + 1].arrive <= t) {
      ++stay_cursor;
    }
    const Stay& s = stays[stay_cursor];
    if (t >= s.arrive && t <= s.depart) {
      return {city.pois[s.poi_index].location, true};  // at a venue
    }
    if (t < s.arrive) {
      // Before the first stay of the study: sit at the first venue.
      return {city.pois[s.poi_index].location, true};
    }
    // In transit toward the next stay (or after the final stay).
    if (stay_cursor + 1 >= stays.size()) {
      return {city.pois[s.poi_index].location, true};
    }
    const Stay& next = stays[stay_cursor + 1];
    const double total = static_cast<double>(next.arrive - s.depart);
    const double frac =
        total <= 0.0
            ? 1.0
            : std::clamp(static_cast<double>(t - s.depart) / total, 0.0, 1.0);
    const geo::LatLon from = city.pois[s.poi_index].location;
    const geo::LatLon to = city.pois[next.poi_index].location;
    if (s.poi_index == next.poi_index) {
      // A gap between two stays at the same venue: the user wanders around
      // the site (corridors, courtyard) far enough that the stay-point
      // detector correctly sees movement between the two visits.
      const double bearing =
          std::fmod(static_cast<double>(t) / 60.0 * 73.0, 360.0);
      return {geo::destination(from, bearing, 220.0), false};
    }
    return {geo::LatLon{from.lat_deg + frac * (to.lat_deg - from.lat_deg),
                        from.lon_deg + frac * (to.lon_deg - from.lon_deg)},
            false};
  };

  std::vector<GpsPoint> points;
  for (const RecordingWindow& w : itinerary.windows) {
    for (TimeSec t = w.start; t <= w.end; t += trace::kSecondsPerMinute) {
      const auto [truth, at_venue] = position_at(t);
      GpsPoint p;
      p.t = t;
      if (at_venue) {
        const Stay& s = stays[stay_cursor];
        const bool dropout =
            rng.bernoulli(config.schedule.indoor_dropout_prob);
        if (dropout) {
          p.has_fix = false;
          p.position = jitter_fix(rng, truth, 25.0);  // last known fix drift
          p.wifi_fingerprint = wifi_fingerprint_of(s.poi_index);
          p.accel_variance = std::fabs(rng.normal(0.08, 0.06));
        } else {
          p.has_fix = true;
          p.position = jitter_fix(rng, truth, 12.0);
          p.wifi_fingerprint = wifi_fingerprint_of(s.poi_index);
          p.accel_variance = std::fabs(rng.normal(0.12, 0.1));
        }
      } else {
        p.has_fix = true;
        p.position = jitter_fix(rng, truth, 15.0);
        p.wifi_fingerprint = 0;  // streets: no stable AP set
        p.accel_variance = 1.2 + std::fabs(rng.normal(1.0, 0.8));
      }
      points.push_back(p);
    }
  }

  result.gps = trace::GpsTrace(std::move(points));
  return result;
}

}  // namespace geovalid::synth
