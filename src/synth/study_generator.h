// Top-level synthetic study generator.
//
// This is the documented substitute for the paper's private user study
// (DESIGN.md §2): it produces a Dataset with matched GPS and Foursquare
// traces for every synthetic user, plus the generator's ground-truth
// behaviour labels, which the test suite uses to score the matcher.
#pragma once

#include <map>
#include <vector>

#include "synth/checkin_model.h"
#include "synth/config.h"
#include "trace/dataset.h"

namespace geovalid::synth {

/// A generated study: the dataset as the measurement pipeline sees it, plus
/// ground truth the pipeline is *not* allowed to see.
struct GeneratedStudy {
  trace::Dataset dataset;

  /// Per-user ground-truth label of each checkin, aligned with
  /// UserRecord::checkins event order.
  std::map<trace::UserId, std::vector<TrueBehavior>> truth;

  /// The ground-truth friendship graph (unordered pairs, first < second).
  /// Friends go on joint outings, which is what gives friendship-inference
  /// applications their co-location signal.
  std::vector<std::pair<trace::UserId, trace::UserId>> friendships;
};

/// Generates a complete study from a config. Deterministic in config.seed.
///
/// The returned dataset already contains detected visits: the generator runs
/// the same VisitDetector a real deployment would run over the raw GPS
/// samples (it does NOT leak the itinerary's ground-truth stays).
[[nodiscard]] GeneratedStudy generate_study(const StudyConfig& config);

}  // namespace geovalid::synth
