#include "synth/study_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "geo/geodesic.h"
#include "synth/city.h"
#include "synth/movement.h"
#include "synth/persona.h"
#include "synth/schedule.h"
#include "trace/visit_detector.h"

namespace geovalid::synth {
namespace {

trace::UserProfile make_profile(const Persona& persona,
                                std::size_t total_checkins,
                                std::size_t friend_count,
                                stats::Rng& rng) {
  const Traits& t = persona.traits;
  const double act = std::min(t.activity, 2.2);

  trace::UserProfile prof;
  // Badges accrue mostly from badge hunting (remote checkins unlock venue
  // badges); mayorships from persistently re-checking venues (superfluous
  // bursts); friends blend the true social degree with general platform
  // engagement, only loosely coupled to gaming (Table 2's friends column is
  // the weakest).
  prof.badges = static_cast<std::uint32_t>(
      rng.poisson(1.5 + 55.0 * t.badge_hunter * act));
  prof.mayorships = static_cast<std::uint32_t>(
      rng.poisson(0.3 + 8.5 * t.mayor_farmer * act));
  prof.friends = static_cast<std::uint32_t>(
      rng.poisson(3.0 + static_cast<double>(friend_count) + 11.0 * t.gamer +
                  3.0 * act));
  // The profile reports a *long-run* rate: the study window is a noisy
  // sample of it. The lognormal factor models that mismatch and keeps the
  // checkins-per-day correlations from saturating.
  const double window_rate =
      persona.study_days == 0
          ? 0.0
          : static_cast<double>(total_checkins) /
                static_cast<double>(persona.study_days);
  prof.checkins_per_day = window_rate * std::exp(rng.normal(0.0, 0.5));
  return prof;
}

/// Venue for a joint outing: a Food/Nightlife place near the pair's home
/// midpoint; any venue near the midpoint as fallback.
std::optional<std::uint32_t> outing_venue(const CityView& city,
                                          const geo::LatLon& midpoint,
                                          double radius_m, stats::Rng& rng) {
  const auto ids = city.grid->within(midpoint, radius_m);
  std::vector<std::uint32_t> candidates;
  std::vector<std::uint32_t> fallback;
  for (trace::PoiId id : ids) {
    const std::size_t idx = id - 1;
    if (idx >= city.pois.size() || city.pois[idx].id != id) continue;
    const trace::PoiCategory cat = city.pois[idx].category;
    if (cat == trace::PoiCategory::kFood ||
        cat == trace::PoiCategory::kNightlife) {
      candidates.push_back(static_cast<std::uint32_t>(idx));
    } else {
      fallback.push_back(static_cast<std::uint32_t>(idx));
    }
  }
  const auto& pool = candidates.empty() ? fallback : candidates;
  if (pool.empty()) return std::nullopt;
  return pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
}

}  // namespace

GeneratedStudy generate_study(const StudyConfig& config) {
  stats::Rng root(config.seed);

  // City and its indices.
  std::vector<trace::Poi> pois = generate_city(config.city, root);
  trace::PoiIndex poi_index(std::move(pois));
  const trace::PoiGrid grid(poi_index.all(), 500.0);
  const CityView city = make_city_view(poi_index.all(), grid);

  const trace::VisitDetector detector;

  // --- Pass 1: personas (per-user forked streams) --------------------------
  const std::size_t n = config.user_count;
  std::vector<stats::Rng> user_rngs;
  std::vector<Persona> personas;
  user_rngs.reserve(n);
  personas.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    user_rngs.push_back(root.fork(static_cast<std::uint64_t>(u) + 1));
    personas.push_back(sample_persona(config, city,
                                      static_cast<trace::UserId>(u + 1),
                                      user_rngs.back()));
  }

  // --- Pass 2: friendship graph + joint outings ----------------------------
  GeneratedStudy study;
  std::vector<std::vector<Appointment>> appointments(n);
  std::vector<std::size_t> degree(n, 0);
  {
    stats::Rng social_rng = root.fork(0xF00D);
    for (std::size_t a = 0; a < n; ++a) {
      const geo::LatLon home_a = city.pois[personas[a].home_index].location;
      for (std::size_t b = a + 1; b < n; ++b) {
        const geo::LatLon home_b = city.pois[personas[b].home_index].location;
        const double d = geo::fast_distance_m(home_a, home_b);
        const double p = config.social.friend_prob_base *
                         std::exp(-d / config.social.friend_distance_scale_m);
        if (!social_rng.bernoulli(p)) continue;

        study.friendships.emplace_back(personas[a].id, personas[b].id);
        ++degree[a];
        ++degree[b];

        // Joint evening outings over the days both users participate.
        const auto shared_days = static_cast<double>(
            std::min(personas[a].study_days, personas[b].study_days));
        const auto outings = social_rng.poisson(
            config.social.covisits_per_week * shared_days / 7.0);
        const geo::LatLon midpoint{(home_a.lat_deg + home_b.lat_deg) / 2.0,
                                   (home_a.lon_deg + home_b.lon_deg) / 2.0};
        // Each friendship has a regular spot ("their" bar) — repeated
        // meetings at one venue are both realistic and what co-location
        // inference keys on.
        const auto venue = outing_venue(
            city, midpoint, config.social.outing_radius_m, social_rng);
        if (!venue) continue;
        // An outing only happens when *both* calendars are free — checked
        // here at creation so the pair always attends together (a one-sided
        // appointment would produce no co-location signal at all).
        auto busy = [&](const std::vector<Appointment>& list,
                        trace::TimeSec start, trace::TimeSec end) {
          for (const Appointment& appt : list) {
            if (start < appt.end + 600 && end + 600 > appt.start) return true;
          }
          return false;
        };
        for (std::uint64_t o = 0; o < outings; ++o) {
          const auto day = social_rng.uniform_int(
              0, static_cast<std::int64_t>(shared_days) - 1);
          const trace::TimeSec start =
              config.study_start + trace::days(day) +
              static_cast<trace::TimeSec>(
                  social_rng.uniform(17.4, 18.9) * 3600.0);
          const trace::TimeSec end =
              start + trace::minutes(social_rng.uniform_int(55, 100));
          if (busy(appointments[a], start, end) ||
              busy(appointments[b], start, end)) {
            continue;
          }
          appointments[a].push_back(Appointment{*venue, start, end});
          appointments[b].push_back(Appointment{*venue, start, end});
          if (std::getenv("GEOVALID_DEBUG_SOCIAL") != nullptr) {
            std::fprintf(stderr, "[social] outing %u-%u venue=%u day=%lld %lld-%lld\n",
                         personas[a].id, personas[b].id, city.pois[*venue].id,
                         static_cast<long long>(day),
                         static_cast<long long>(start), static_cast<long long>(end));
          }
        }
      }
    }
    std::size_t total_appts = 0;
    for (auto& list : appointments) total_appts += list.size();
    if (std::getenv("GEOVALID_DEBUG_SOCIAL") != nullptr) {
      std::fprintf(stderr, "[social] friendships=%zu appointments=%zu\n",
                   study.friendships.size(), total_appts);
    }
    for (auto& list : appointments) {
      std::sort(list.begin(), list.end(),
                [](const Appointment& x, const Appointment& y) {
                  return x.start < y.start;
                });
    }
  }

  // --- Pass 3: per-user traces ---------------------------------------------
  std::vector<trace::UserRecord> users;
  users.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    stats::Rng& rng = user_rngs[u];
    const Persona& persona = personas[u];

    Itinerary itinerary = generate_itinerary(config, city, persona, rng);
    apply_appointments(itinerary, appointments[u]);
    const MovementResult movement =
        synthesize_movement(config, city, itinerary, rng);
    std::vector<LabeledCheckin> labeled =
        generate_checkins(config, city, persona, itinerary, movement, rng);

    trace::UserRecord rec;
    rec.id = persona.id;
    rec.gps = std::move(movement.gps);

    std::vector<trace::Checkin> events;
    std::vector<TrueBehavior> labels;
    events.reserve(labeled.size());
    labels.reserve(labeled.size());
    for (const LabeledCheckin& lc : labeled) {
      events.push_back(lc.checkin);
      labels.push_back(lc.truth);
    }
    rec.checkins = trace::CheckinTrace(std::move(events));
    rec.profile = make_profile(persona, rec.checkins.size(), degree[u], rng);

    // The measurement path: detect visits from the raw GPS samples.
    rec.visits = detector.detect(rec.gps);
    detector.snap_to_pois(rec.visits, poi_index);

    study.truth.emplace(persona.id, std::move(labels));
    users.push_back(std::move(rec));
  }

  study.dataset =
      trace::Dataset(config.name, std::move(poi_index), std::move(users));
  return study;
}

}  // namespace geovalid::synth
