// Daily routine synthesis: turns a persona into a timetable of stays.
//
// The timetable is ground truth — the user's *actual* movement. Everything
// downstream (GPS sampling, visit detection, checkin behaviour) derives
// from it, which is what lets the study compare "what users did" against
// "what users checked in".
#pragma once

#include <vector>

#include "stats/rng.h"
#include "synth/config.h"
#include "synth/persona.h"

namespace geovalid::synth {

/// One ground-truth stay at a venue.
struct Stay {
  std::uint32_t poi_index = 0;  ///< into CityView::pois
  trace::TimeSec arrive = 0;
  trace::TimeSec depart = 0;
};

/// One day's GPS recording window (the app logs only while the phone is
/// awake and permitted).
struct RecordingWindow {
  trace::TimeSec start = 0;
  trace::TimeSec end = 0;
};

/// A user's full ground-truth itinerary over the study.
struct Itinerary {
  std::vector<Stay> stays;               ///< time-ordered, non-overlapping
  std::vector<RecordingWindow> windows;  ///< one per study day
};

/// Generates the full itinerary for one persona. Deterministic given rng
/// state. Stays are strictly ordered and separated by the travel time the
/// movement synthesizer will expand into trips.
[[nodiscard]] Itinerary generate_itinerary(const StudyConfig& config,
                                           const CityView& city,
                                           const Persona& persona,
                                           stats::Rng& rng);

/// A pre-arranged stay (a joint outing with a friend) that must appear in
/// the itinerary as scheduled.
struct Appointment {
  std::uint32_t poi_index = 0;
  trace::TimeSec start = 0;
  trace::TimeSec end = 0;
};

/// Weaves appointments into an itinerary: conflicting stays are truncated
/// or dropped (with a travel allowance on both sides) and the appointment
/// stays inserted. Appointments must not overlap each other.
void apply_appointments(Itinerary& itinerary,
                        std::span<const Appointment> appointments);

}  // namespace geovalid::synth
