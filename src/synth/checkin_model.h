// Check-in behaviour synthesis.
//
// Produces each user's Foursquare trace from their ground-truth itinerary
// and behavioural traits. Four behaviours, mirroring §5.1 of the paper:
//   honest      — check in at a venue actually being visited
//   superfluous — extra checkins at *nearby* venues during a real visit
//                 (mayorship farming)
//   remote      — checkins at venues far from the user's true position
//                 (badge hunting), often in rapid-fire sessions
//   driveby     — checkins at venues passed at speed during a trip
#pragma once

#include <vector>

#include "stats/rng.h"
#include "synth/config.h"
#include "synth/movement.h"
#include "synth/persona.h"
#include "synth/schedule.h"
#include "trace/checkin.h"

namespace geovalid::synth {

/// Generator-side ground truth of why a checkin exists. The matcher must
/// *infer* these labels from the traces alone; keeping the truth around lets
/// the test suite score that inference.
enum class TrueBehavior : std::uint8_t {
  kHonest = 0,
  kSuperfluous,
  kRemote,
  kDriveby,
};

[[nodiscard]] std::string_view to_string(TrueBehavior b);

/// A checkin paired with its ground-truth label.
struct LabeledCheckin {
  trace::Checkin checkin;
  TrueBehavior truth = TrueBehavior::kHonest;
};

/// Generates the user's checkin events (time-ordered). Driveby checkins are
/// only produced on trips that fall inside a recording window — commuters
/// check in from an active phone (this also keeps the unclassifiable
/// residual near the paper's ~10%).
[[nodiscard]] std::vector<LabeledCheckin> generate_checkins(
    const StudyConfig& config, const CityView& city, const Persona& persona,
    const Itinerary& itinerary, const MovementResult& movement,
    stats::Rng& rng);

}  // namespace geovalid::synth
