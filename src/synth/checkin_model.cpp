#include "synth/checkin_model.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesic.h"

namespace geovalid::synth {
namespace {

using trace::Checkin;
using trace::TimeSec;
using trace::minutes;

/// Geometric draw >= 1 with the given mean (mean must be >= 1).
std::uint32_t geometric_at_least_one(stats::Rng& rng, double mean) {
  const double extra = std::max(0.0, mean - 1.0);
  const double p = 1.0 / (1.0 + extra);  // success prob of the tail draw
  std::uint32_t n = 1;
  while (n < 8 && !rng.bernoulli(p)) ++n;
  return n;
}

Checkin make_checkin(const CityView& city, std::uint32_t poi_index,
                     TimeSec t) {
  const trace::Poi& poi = city.pois[poi_index];
  Checkin c;
  c.t = t;
  c.poi = poi.id;
  c.category = poi.category;
  c.location = poi.location;
  return c;
}

/// Maps a grid-returned PoiId back to its index (generator invariant:
/// id == index + 1, verified).
std::optional<std::uint32_t> index_of(const CityView& city, trace::PoiId id) {
  const std::size_t idx = id - 1;
  if (idx < city.pois.size() && city.pois[idx].id == id) {
    return static_cast<std::uint32_t>(idx);
  }
  return std::nullopt;
}

/// Ground-truth position of the user at time t (venue of the active stay or
/// interpolation along the active trip).
geo::LatLon true_position(const CityView& city, const Itinerary& it,
                          TimeSec t) {
  const auto& stays = it.stays;
  // Binary search for the last stay with arrive <= t.
  auto cmp = [](const Stay& s, TimeSec v) { return s.arrive <= v; };
  const auto upper = std::partition_point(stays.begin(), stays.end(),
                                          [&](const Stay& s) { return cmp(s, t); });
  if (upper == stays.begin()) return city.pois[stays.front().poi_index].location;
  const Stay& s = *std::prev(upper);
  if (t <= s.depart || upper == stays.end()) {
    return city.pois[s.poi_index].location;
  }
  const Stay& next = *upper;
  const double total = static_cast<double>(next.arrive - s.depart);
  const double frac =
      total <= 0.0
          ? 1.0
          : std::clamp(static_cast<double>(t - s.depart) / total, 0.0, 1.0);
  const geo::LatLon a = city.pois[s.poi_index].location;
  const geo::LatLon b = city.pois[next.poi_index].location;
  return geo::LatLon{a.lat_deg + frac * (b.lat_deg - a.lat_deg),
                     a.lon_deg + frac * (b.lon_deg - a.lon_deg)};
}

}  // namespace

std::string_view to_string(TrueBehavior b) {
  switch (b) {
    case TrueBehavior::kHonest: return "honest";
    case TrueBehavior::kSuperfluous: return "superfluous";
    case TrueBehavior::kRemote: return "remote";
    case TrueBehavior::kDriveby: return "driveby";
  }
  return "?";
}

std::vector<LabeledCheckin> generate_checkins(
    const StudyConfig& config, const CityView& city, const Persona& persona,
    const Itinerary& itinerary, const MovementResult& movement,
    stats::Rng& rng) {
  std::vector<LabeledCheckin> out;
  const BehaviorConfig& bc = config.behavior;
  const Traits& traits = persona.traits;
  const double act = std::min(traits.activity, 2.2);

  // --- Honest + superfluous (visit-anchored) ------------------------------
  for (const Stay& stay : itinerary.stays) {
    if (stay.depart - stay.arrive < minutes(6)) continue;
    const trace::Poi& venue = city.pois[stay.poi_index];
    const double p_honest =
        bc.honest_checkin_prob[static_cast<std::size_t>(venue.category)] *
        bc.honest_scale * act;
    if (!rng.bernoulli(p_honest)) continue;

    const TimeSec latest =
        std::min(stay.depart, stay.arrive + minutes(12));
    const TimeSec tc = stay.arrive + minutes(1) +
                       static_cast<TimeSec>(rng.uniform(
                           0.0, static_cast<double>(
                                    std::max<TimeSec>(1, latest - stay.arrive -
                                                             minutes(1)))));
    // People mostly check in while their phone is active (= recording).
    const bool recorded =
        std::any_of(itinerary.windows.begin(), itinerary.windows.end(),
                    [&](const RecordingWindow& w) {
                      return tc >= w.start && tc <= w.end;
                    });
    if (!recorded && rng.bernoulli(bc.honest_recorded_bias)) continue;
    out.push_back({make_checkin(city, stay.poi_index, tc),
                   TrueBehavior::kHonest});

    // Mayor farmers pad the visit with checkins at neighbouring venues
    // (and sometimes the same venue again).
    const double p_super =
        std::min(0.95, bc.superfluous_prob_per_honest * traits.mayor_farmer);
    if (!rng.bernoulli(p_super)) continue;

    const auto nearby = city.grid->within(venue.location, 350.0);
    const std::uint32_t burst =
        geometric_at_least_one(rng, bc.superfluous_mean_events);
    TimeSec ts = tc;
    for (std::uint32_t k = 0; k < burst; ++k) {
      ts += static_cast<TimeSec>(rng.uniform(12.0, 70.0));
      if (ts >= stay.depart) break;
      std::uint32_t target = stay.poi_index;  // same-venue repeat by default
      if (!nearby.empty() && rng.bernoulli(0.7)) {
        const trace::PoiId id = nearby[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(nearby.size()) - 1))];
        if (const auto idx = index_of(city, id); idx && *idx != stay.poi_index) {
          target = *idx;
        }
      }
      out.push_back({make_checkin(city, target, ts),
                     TrueBehavior::kSuperfluous});
    }
  }

  // --- Remote sessions (badge hunting) ------------------------------------
  const double remote_rate =
      bc.remote_sessions_per_day * traits.badge_hunter * act;
  for (std::size_t day = 0; day < persona.study_days; ++day) {
    const TimeSec midnight =
        config.study_start + trace::days(static_cast<TimeSec>(day));
    const auto sessions = rng.poisson(remote_rate);
    for (std::uint64_t s = 0; s < sessions; ++s) {
      const bool offline = rng.bernoulli(bc.remote_offline_fraction);
      // Offline sessions land after the recording window (late evening);
      // online ones any time during the active day.
      const double hour = offline ? rng.uniform(21.6, 23.8)
                                  : rng.uniform(9.5, 19.5);
      TimeSec ts = midnight + static_cast<TimeSec>(hour * 3600.0);
      const geo::LatLon here = true_position(city, itinerary, ts);

      const std::uint32_t burst =
          geometric_at_least_one(rng, bc.remote_session_mean_events);
      for (std::uint32_t k = 0; k < burst; ++k) {
        // Pick any venue far from the true position (badge lists span the
        // whole city).
        for (int attempt = 0; attempt < 16; ++attempt) {
          const auto idx = static_cast<std::uint32_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(city.pois.size()) - 1));
          if (geo::fast_distance_m(here, city.pois[idx].location) > 650.0) {
            out.push_back({make_checkin(city, idx, ts), TrueBehavior::kRemote});
            break;
          }
        }
        ts += static_cast<TimeSec>(rng.uniform(8.0, 50.0));
      }
    }
  }

  // --- Driveby checkins (commuters) ----------------------------------------
  // Scales superlinearly with activity: very active users checkin on the
  // move far more often (Table 2 pairs driveby with a *positive*
  // checkins-per-day correlation despite its negative badge/mayor columns).
  const double p_driveby = std::min(
      0.9, bc.driveby_prob_per_trip * traits.commuter * std::pow(act, 1.8));
  auto trip_recorded = [&](const Trip& trip) {
    for (const RecordingWindow& w : itinerary.windows) {
      if (trip.depart >= w.start && trip.arrive <= w.end) return true;
    }
    return false;
  };
  for (const Trip& trip : movement.trips) {
    if (trip.speed_mps < 2.5) continue;  // walking trips don't qualify
    if (trip.arrive - trip.depart < minutes(4)) continue;
    if (!trip_recorded(trip)) continue;
    if (!rng.bernoulli(p_driveby)) continue;

    const std::uint32_t events = rng.bernoulli(0.25) ? 2 : 1;
    for (std::uint32_t k = 0; k < events; ++k) {
      const double frac = rng.uniform(0.2, 0.8);
      const TimeSec tc =
          trip.depart + static_cast<TimeSec>(
                            frac * static_cast<double>(trip.arrive - trip.depart));
      const geo::LatLon pos = true_position(city, itinerary, tc);
      const auto nearby = city.grid->within(pos, 450.0);
      if (nearby.empty()) continue;
      const trace::PoiId id = nearby[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(nearby.size()) - 1))];
      if (const auto idx = index_of(city, id)) {
        out.push_back({make_checkin(city, *idx, tc), TrueBehavior::kDriveby});
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const LabeledCheckin& a, const LabeledCheckin& b) {
                     return a.checkin.t < b.checkin.t;
                   });
  return out;
}

}  // namespace geovalid::synth
