#include "synth/persona.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/geodesic.h"

namespace geovalid::synth {
namespace {

using trace::PoiCategory;

std::uint32_t pick_from_category(const CityView& city, PoiCategory cat,
                                 stats::Rng& rng) {
  const auto& bucket = city.by_category[static_cast<std::size_t>(cat)];
  if (bucket.empty()) {
    throw std::runtime_error("persona: city has no POI of required category");
  }
  return bucket[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(bucket.size()) - 1))];
}

/// Picks a venue for the routine pool, preferring places near home
/// (distance-decayed weight) and matching everyday categories.
std::uint32_t pick_routine_poi(const CityView& city,
                               const geo::LatLon& home,
                               stats::Rng& rng) {
  // Everyday categories get most of the pool; the rest adds variety.
  static constexpr std::array<double, trace::kPoiCategoryCount> kWeights{
      0.03, 0.09, 0.12, 0.07, 0.29, 0.13, 0.01, 0.22, 0.04};
  const stats::DiscreteSampler cat_sampler(
      std::vector<double>(kWeights.begin(), kWeights.end()));
  const auto cat = static_cast<PoiCategory>(cat_sampler.sample(rng));
  const auto& bucket = city.by_category[static_cast<std::size_t>(cat)];
  if (bucket.empty()) return 0;

  // Rejection-sample with a distance-decay acceptance: nearby places are a
  // few times more likely to join the routine than places across town.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const std::uint32_t idx = bucket[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bucket.size()) - 1))];
    const double d = geo::fast_distance_m(home, city.pois[idx].location);
    const double accept = std::exp(-d / 6000.0);  // 6 km decay scale
    if (rng.bernoulli(accept)) return idx;
  }
  return bucket[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(bucket.size()) - 1))];
}

}  // namespace

CityView make_city_view(std::span<const trace::Poi> pois,
                        const trace::PoiGrid& grid) {
  CityView view;
  view.pois = pois;
  view.grid = &grid;
  for (std::uint32_t i = 0; i < pois.size(); ++i) {
    view.by_category[static_cast<std::size_t>(pois[i].category)].push_back(i);
  }
  return view;
}

double sample_beta(stats::Rng& rng, double alpha, double beta) {
  std::gamma_distribution<double> ga(alpha, 1.0);
  std::gamma_distribution<double> gb(beta, 1.0);
  const double x = ga(rng.engine());
  const double y = gb(rng.engine());
  if (x + y <= 0.0) return 0.5;
  return x / (x + y);
}

Persona sample_persona(const StudyConfig& config, const CityView& city,
                       trace::UserId id, stats::Rng& rng) {
  Persona p;
  p.id = id;

  // --- Traits -------------------------------------------------------------
  p.traits.activity =
      std::exp(rng.normal(0.0, config.activity_sigma));
  p.traits.gamer = sample_beta(rng, config.behavior.gamer_alpha,
                               config.behavior.gamer_beta) *
                   config.extraneous_scale;
  // Badge hunting and mayorship farming share the gamer disposition but
  // split individually, so the two extraneous styles are correlated yet
  // distinguishable (Table 2 needs distinct columns to light up).
  p.traits.badge_hunter =
      std::clamp(p.traits.gamer * rng.uniform(0.35, 1.65), 0.0, 1.0);
  p.traits.mayor_farmer =
      std::clamp(p.traits.gamer * rng.uniform(0.35, 1.65), 0.0, 1.0);
  // Commuters are a mostly separate crowd: anti-correlated with gaming
  // (the paper finds driveby users look nothing like badge/mayor chasers).
  // Lognormal with unit mean: exp(N(0, s)) / exp(s^2 / 2).
  const double errand_sigma = 0.8;
  p.traits.errand_factor = std::exp(rng.normal(0.0, errand_sigma)) /
                           std::exp(errand_sigma * errand_sigma / 2.0);
  p.traits.weekend_worker = rng.bernoulli(0.3);
  p.traits.commuter = std::clamp(
      (1.0 - 0.4 * p.traits.gamer / std::max(0.05, config.extraneous_scale)) *
          sample_beta(rng, 1.7, 3.6),
      0.0, 1.0) * config.extraneous_scale;

  // --- Places -------------------------------------------------------------
  p.home_index = pick_from_category(city, PoiCategory::kResidence, rng);
  // Most people work at Professional venues; some study at College ones.
  p.work_index = pick_from_category(
      city,
      rng.bernoulli(0.78) ? PoiCategory::kProfessional : PoiCategory::kCollege,
      rng);

  const geo::LatLon home = city.pois[p.home_index].location;
  const std::size_t pool =
      static_cast<std::size_t>(rng.uniform_int(28, 52));
  p.routine_pois.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    const std::uint32_t idx = pick_routine_poi(city, home, rng);
    if (std::find(p.routine_pois.begin(), p.routine_pois.end(), idx) ==
        p.routine_pois.end()) {
      p.routine_pois.push_back(idx);
    }
  }
  if (p.routine_pois.empty()) p.routine_pois.push_back(p.work_index);

  // --- Study participation ------------------------------------------------
  // Day counts spread around the configured mean (Table 1 reports averages
  // of 14.2 / 20.8 days).
  const double jitter = rng.uniform(0.6, 1.4);
  p.study_days = std::max<std::size_t>(
      3, static_cast<std::size_t>(
             std::lround(config.mean_days_per_user * jitter)));
  return p;
}

}  // namespace geovalid::synth
