// Trace repair: the full §7 workflow a downstream consumer of a public
// geosocial dataset would run.
//
//   $ ./trace_repair
//
// The consumer has checkin traces only — no GPS. The workflow:
//   1. train a learned extraneous-checkin detector on an instrumented
//      subset of users (the study population, where GPS labels exist);
//   2. apply it to the remaining users' checkin traces;
//   3. infer home/work anchors from the surviving checkins and upsample
//      the missing routine events;
//   4. (here, with ground truth available) measure how much closer the
//      repaired trace is to real mobility.
#include <iomanip>
#include <iostream>

#include "core/pipeline.h"
#include "detect/detector.h"
#include "detect/evaluation.h"
#include "recover/upsample.h"

int main() {
  using namespace geovalid;

  std::cout << "generating primary study...\n";
  const core::StudyAnalysis study =
      core::analyze_generated(synth::primary_preset());

  // --- 1. Train the detector on the instrumented (training) users. --------
  const detect::TrainedDetector detector =
      detect::train_detector(study.dataset, study.validation);
  const detect::ScoredLabels scored =
      detect::score_test_split(detector, study.dataset, study.validation);
  const double threshold = detect::best_f1_threshold(scored);
  std::cout << "detector trained on " << detector.train_users.size()
            << " users; AUC on held-out users = " << std::fixed
            << std::setprecision(3) << detect::auc(scored)
            << ", operating threshold = " << threshold << "\n\n";

  // --- 2 + 3. Repair each held-out user's trace. --------------------------
  std::size_t users_repaired = 0;
  std::size_t flagged_total = 0, kept_total = 0, inferred_total = 0;
  std::size_t home_anchors = 0, work_anchors = 0;
  for (std::size_t u : detector.test_users) {
    const trace::UserRecord& user = study.dataset.users()[u];
    if (user.checkins.empty()) continue;

    const std::vector<double> scores = detector.score_user(user);
    std::vector<bool> extraneous(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      extraneous[i] = scores[i] >= threshold;
      if (extraneous[i]) ++flagged_total;
    }

    const recover::RecoveredTrace repaired =
        recover::recover_trace(user.checkins.events(), extraneous);
    kept_total += repaired.observed;
    inferred_total += repaired.inferred;
    if (repaired.anchors.home) ++home_anchors;
    if (repaired.anchors.work) ++work_anchors;
    ++users_repaired;
  }

  std::cout << "repaired " << users_repaired << " held-out users:\n"
            << "  checkins flagged extraneous : " << flagged_total << "\n"
            << "  checkins kept               : " << kept_total << "\n"
            << "  routine events synthesized  : " << inferred_total << "\n"
            << "  home anchors inferred       : " << home_anchors << "\n"
            << "  work anchors inferred       : " << work_anchors << "\n";

  std::cout << "\nThe repaired event stream is what you would feed to a\n"
               "mobility model instead of the raw checkin trace. See\n"
               "bench_ext_recovery for the ground-truth coverage gains.\n";
  return 0;
}
