// Study audit: the workload of the paper's §4-§5 end to end, at full scale.
//
//   $ ./study_audit [output_dir]
//
// Generates the primary and baseline studies, validates both, prints the
// complete audit (partition, missing-checkin structure, incentive
// correlations), and — when an output directory is given — exports both
// datasets as CSV so external tools can consume them and re-imports one to
// demonstrate the round trip.
#include <filesystem>
#include <iomanip>
#include <iostream>

#include "core/pipeline.h"
#include "core/report.h"
#include "match/incentives.h"
#include "match/missing.h"
#include "match/prevalence.h"
#include "trace/csv.h"

int main(int argc, char** argv) {
  using namespace geovalid;

  std::cout << "generating primary study (244 users)...\n";
  const core::StudyAnalysis primary =
      core::analyze_generated(synth::primary_preset());
  std::cout << "generating baseline study (47 users)...\n";
  const core::StudyAnalysis baseline =
      core::analyze_generated(synth::baseline_preset());

  std::cout << "\n=== Table 1: dataset statistics ===\n";
  std::cout << std::left << std::setw(10) << "Dataset" << std::right
            << std::setw(8) << "users" << std::setw(12) << "avg days"
            << std::setw(12) << "checkins" << std::setw(12) << "visits"
            << std::setw(14) << "GPS points" << "\n";
  core::print_dataset_stats(std::cout, "Primary",
                            trace::compute_stats(primary.dataset));
  core::print_dataset_stats(std::cout, "Baseline",
                            trace::compute_stats(baseline.dataset));

  std::cout << "\n=== Matching (Figure 1) ===\n";
  core::print_partition(std::cout, primary.partition());

  std::cout << "\n=== Missing checkins (Figures 3-4) ===\n";
  const auto topn =
      match::missing_ratio_at_top_pois(primary.dataset, primary.validation);
  const stats::Ecdf top5(topn.ratios[4]);
  std::cout << "users with most missing checkins at their top-5 places: "
            << std::fixed << std::setprecision(1)
            << 100.0 * (1.0 - top5.at(0.5)) << "%\n";
  const auto categories =
      match::missing_by_category(primary.dataset, primary.validation);
  std::cout << "missing by category:";
  for (std::size_t c = 0; c < categories.size(); ++c) {
    std::cout << "  " << trace::to_string(static_cast<trace::PoiCategory>(c))
              << "=" << categories[c] << "%";
  }
  std::cout << "\n";

  std::cout << "\n=== Incentives (Table 2) ===\n";
  core::print_incentive_table(
      std::cout,
      match::incentive_correlations(primary.dataset, primary.validation));

  std::cout << "\n=== Control group sanity ===\n";
  const double base_extraneous =
      static_cast<double>(baseline.partition().extraneous) /
      static_cast<double>(baseline.partition().checkins);
  std::cout << "baseline extraneous ratio: " << 100.0 * base_extraneous
            << "%  (volunteers without reward incentives stay honest)\n";

  if (argc > 1) {
    const std::filesystem::path dir(argv[1]);
    std::cout << "\nexporting CSVs under " << dir << " ...\n";
    trace::write_dataset_csv(primary.dataset, dir / "primary");
    trace::write_dataset_csv(baseline.dataset, dir / "baseline");

    // Round-trip demo: reload and re-validate.
    const core::StudyAnalysis reloaded =
        core::analyze_csv(dir / "primary", "primary");
    std::cout << "reloaded primary: honest=" << reloaded.partition().honest
              << " (was " << primary.partition().honest << ")\n";
  } else {
    std::cout << "\n(pass an output directory to also export the datasets "
                 "as CSV)\n";
  }
  return 0;
}
