// Application-level impact (§6): train Levy Walk models from the GPS,
// honest-checkin and all-checkin traces, drive a MANET simulation with
// each, and compare the resulting routing metrics.
//
//   $ ./manet_impact [duration_seconds]
//
// The default duration (1800 s) keeps the demo under ~10 s of wall clock;
// bench_fig8_manet runs the full two-hour experiment.
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/pipeline.h"
#include "core/report.h"
#include "manet/simulator.h"

int main(int argc, char** argv) {
  using namespace geovalid;

  double duration_s = 1800.0;
  if (argc > 1) duration_s = std::atof(argv[1]);
  if (duration_s <= 0.0) {
    std::cerr << "usage: manet_impact [duration_seconds > 0]\n";
    return 1;
  }

  std::cout << "generating primary study and fitting mobility models...\n";
  const core::StudyAnalysis study =
      core::analyze_generated(synth::primary_preset());
  const core::LevyModelSet models = core::fit_levy_models(study);

  core::print_levy_model(std::cout, models.gps);
  core::print_levy_model(std::cout, models.honest);
  core::print_levy_model(std::cout, models.all);

  std::cout << "\nsimulating " << duration_s
            << " s of AODV traffic per model (200 nodes, 1 km radio, 100 "
               "CBR pairs)...\n\n";
  std::cout << std::left << std::setw(16) << "model" << std::right
            << std::setw(14) << "availability" << std::setw(16)
            << "route chg/min" << std::setw(16) << "overhead/data"
            << std::setw(12) << "delivered" << "\n"
            << std::fixed << std::setprecision(3);

  for (const mobility::LevyWalkModel* m :
       {&models.gps, &models.honest, &models.all}) {
    mobility::ArenaConfig arena;
    stats::Rng rng(7);
    const auto tracks =
        mobility::generate_tracks(*m, arena, duration_s, 200, rng);
    manet::SimConfig cfg;
    cfg.duration_s = duration_s;
    const manet::SimResult result = manet::simulate(tracks, cfg);

    double avail = 0.0, changes = 0.0;
    for (const auto& p : result.pairs) {
      avail += p.availability_ratio;
      changes += p.route_changes_per_min();
    }
    const double n = static_cast<double>(result.pairs.size());
    // Global overhead (all control packets / all delivered packets) is
    // stabler than the per-pair mean on short demo runs, where pairs with
    // zero deliveries would dominate the mean.
    const double overhead =
        static_cast<double>(result.control.total()) /
        static_cast<double>(std::max<std::uint64_t>(1, result.data_delivered));
    std::cout << std::left << std::setw(16) << m->name << std::right
              << std::setw(14) << avail / n << std::setw(16) << changes / n
              << std::setw(16) << overhead << std::setw(12)
              << result.data_delivered << "\n";
  }

  std::cout << "\ntakeaway: traces built from checkins (even after removing "
               "extraneous events)\ndrive the simulation to different "
               "routing behaviour than the GPS ground truth —\nthe paper's "
               "warning about using geosocial traces as mobility data.\n";
  return 0;
}
