// Quickstart: generate a small synthetic study, validate the geosocial
// trace against GPS ground truth, and print the headline numbers.
//
//   $ ./quickstart
//
// This is the five-minute tour of the public API: one call to generate and
// analyze, then a few accessors.
#include <iomanip>
#include <iostream>

#include "core/pipeline.h"
#include "core/report.h"

int main() {
  using namespace geovalid;

  // 1. Generate a miniature study (12 users, 4 days) and run the full
  //    validation pipeline of the paper on it.
  const core::StudyAnalysis study =
      core::analyze_generated(synth::tiny_preset());

  // 2. Table 1-style dataset stats.
  std::cout << "dataset:\n";
  std::cout << std::left << std::setw(10) << " " << std::right << std::setw(8)
            << "users" << std::setw(12) << "avg days" << std::setw(12)
            << "checkins" << std::setw(12) << "visits" << std::setw(14)
            << "GPS points" << "\n";
  core::print_dataset_stats(std::cout, study.dataset.name(),
                            trace::compute_stats(study.dataset));

  // 3. The Figure 1 partition: how much of the geosocial trace is real?
  std::cout << "\nvalidation:\n";
  core::print_partition(std::cout, study.partition());

  // 4. Per-user prevalence: is anyone's trace trustworthy on its own?
  const auto ratios = match::per_user_extraneous_ratio(study.validation);
  const stats::Ecdf ecdf(ratios);
  std::cout << "\nmedian per-user extraneous ratio: "
            << ecdf.inverse(0.5) << "\n";

  std::cout << "\nNext steps: see examples/study_audit.cpp for the full\n"
               "paper-scale analysis and examples/manet_impact.cpp for the\n"
               "application-level impact experiment.\n";
  return 0;
}
