// Checkin filter tuning: build an extraneous-checkin detector that works
// from the checkin trace alone (the situation of anyone consuming a public
// geosocial dataset) and evaluate it against the GPS-derived labels.
//
//   $ ./checkin_filter
//
// Demonstrates the §7 "Detecting Extraneous Checkins" direction: sweep the
// burstiness threshold, pick the best F1 operating point, and compare with
// the blunt user-level filter of §5.3.
#include <iomanip>
#include <iostream>

#include "core/pipeline.h"
#include "match/filters.h"

int main() {
  using namespace geovalid;

  std::cout << "generating primary study...\n";
  const core::StudyAnalysis study =
      core::analyze_generated(synth::primary_preset());

  // 1. Sweep the burstiness threshold.
  const std::vector<double> thresholds{0.5, 1.0, 2.0, 5.0, 10.0,
                                       20.0, 30.0, 60.0};
  const auto curve = match::burstiness_threshold_sweep(
      study.dataset, study.validation, thresholds);

  std::cout << "\nburstiness detector operating curve:\n"
            << std::left << std::setw(16) << "threshold(min)" << std::right
            << std::setw(12) << "precision" << std::setw(12) << "recall"
            << std::setw(10) << "F1" << "\n"
            << std::fixed << std::setprecision(3);
  // Operating point: best F1 subject to an honest-loss budget — a filter
  // that throws away most honest checkins defeats the purpose even if its
  // F1 looks good.
  constexpr double kHonestLossBudget = 0.4;
  double best_f1 = -1.0;
  double best_threshold = thresholds.front();
  for (const auto& [minutes, score] : curve) {
    std::cout << std::left << std::setw(16) << minutes << std::right
              << std::setw(12) << score.precision() << std::setw(12)
              << score.recall() << std::setw(10) << score.f1() << "\n";
    if (score.honest_loss() <= kHonestLossBudget && score.f1() > best_f1) {
      best_f1 = score.f1();
      best_threshold = minutes;
    }
  }
  std::cout << "\nbest F1 within a " << 100.0 * kHonestLossBudget
            << "% honest-loss budget: threshold = " << best_threshold
            << " min\n";

  // 2. Report the chosen operating point in detail.
  match::BurstinessFilterConfig cfg;
  cfg.gap_threshold =
      static_cast<trace::TimeSec>(best_threshold * 60.0);
  const auto flags = match::burstiness_flags(study.dataset, cfg);
  const auto score = match::score_flags(study.validation, flags);
  std::cout << "confusion at that point:\n"
            << "  flagged extraneous (TP): " << score.true_positive << "\n"
            << "  flagged honest    (FP): " << score.false_positive << "\n"
            << "  kept extraneous   (FN): " << score.false_negative << "\n"
            << "  kept honest       (TN): " << score.true_negative << "\n"
            << "  honest checkins lost: " << 100.0 * score.honest_loss()
            << "%\n";

  // 3. Contrast with user-level filtering.
  std::cout << "\nuser-level filter for comparison (drop burstiest 30% of "
               "users):\n";
  const auto user_flags = match::user_level_flags(study.dataset, 0.3, cfg);
  const auto user_score = match::score_flags(study.validation, user_flags);
  std::cout << "  precision=" << user_score.precision()
            << " recall=" << user_score.recall()
            << " honest loss=" << 100.0 * user_score.honest_loss() << "%\n";

  std::cout << "\ntakeaway: checkin-level burstiness filtering recovers a "
               "large share of extraneous\nevents at a fraction of the "
               "honest-checkin cost of dropping whole users.\n";
  return 0;
}
