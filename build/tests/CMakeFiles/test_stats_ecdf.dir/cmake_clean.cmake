file(REMOVE_RECURSE
  "CMakeFiles/test_stats_ecdf.dir/test_stats_ecdf.cpp.o"
  "CMakeFiles/test_stats_ecdf.dir/test_stats_ecdf.cpp.o.d"
  "test_stats_ecdf"
  "test_stats_ecdf.pdb"
  "test_stats_ecdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
