# Empty dependencies file for test_stats_ecdf.
# This may be replaced when dependencies are built.
