# Empty compiler generated dependencies file for test_synth_behavior.
# This may be replaced when dependencies are built.
