file(REMOVE_RECURSE
  "CMakeFiles/test_synth_behavior.dir/test_synth_behavior.cpp.o"
  "CMakeFiles/test_synth_behavior.dir/test_synth_behavior.cpp.o.d"
  "test_synth_behavior"
  "test_synth_behavior.pdb"
  "test_synth_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
