# Empty compiler generated dependencies file for test_match_matcher.
# This may be replaced when dependencies are built.
