file(REMOVE_RECURSE
  "CMakeFiles/test_match_matcher.dir/test_match_matcher.cpp.o"
  "CMakeFiles/test_match_matcher.dir/test_match_matcher.cpp.o.d"
  "test_match_matcher"
  "test_match_matcher.pdb"
  "test_match_matcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
