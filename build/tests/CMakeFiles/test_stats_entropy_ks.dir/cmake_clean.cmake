file(REMOVE_RECURSE
  "CMakeFiles/test_stats_entropy_ks.dir/test_stats_entropy_ks.cpp.o"
  "CMakeFiles/test_stats_entropy_ks.dir/test_stats_entropy_ks.cpp.o.d"
  "test_stats_entropy_ks"
  "test_stats_entropy_ks.pdb"
  "test_stats_entropy_ks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_entropy_ks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
