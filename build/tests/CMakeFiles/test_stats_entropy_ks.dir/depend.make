# Empty dependencies file for test_stats_entropy_ks.
# This may be replaced when dependencies are built.
