file(REMOVE_RECURSE
  "CMakeFiles/test_trace_gowalla.dir/test_trace_gowalla.cpp.o"
  "CMakeFiles/test_trace_gowalla.dir/test_trace_gowalla.cpp.o.d"
  "test_trace_gowalla"
  "test_trace_gowalla.pdb"
  "test_trace_gowalla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_gowalla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
