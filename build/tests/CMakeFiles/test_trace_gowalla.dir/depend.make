# Empty dependencies file for test_trace_gowalla.
# This may be replaced when dependencies are built.
