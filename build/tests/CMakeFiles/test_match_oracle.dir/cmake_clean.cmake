file(REMOVE_RECURSE
  "CMakeFiles/test_match_oracle.dir/test_match_oracle.cpp.o"
  "CMakeFiles/test_match_oracle.dir/test_match_oracle.cpp.o.d"
  "test_match_oracle"
  "test_match_oracle.pdb"
  "test_match_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
