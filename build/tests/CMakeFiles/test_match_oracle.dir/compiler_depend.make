# Empty compiler generated dependencies file for test_match_oracle.
# This may be replaced when dependencies are built.
