file(REMOVE_RECURSE
  "CMakeFiles/test_match_classifier.dir/test_match_classifier.cpp.o"
  "CMakeFiles/test_match_classifier.dir/test_match_classifier.cpp.o.d"
  "test_match_classifier"
  "test_match_classifier.pdb"
  "test_match_classifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
