# Empty dependencies file for test_match_classifier.
# This may be replaced when dependencies are built.
