# Empty compiler generated dependencies file for test_trace_csv.
# This may be replaced when dependencies are built.
