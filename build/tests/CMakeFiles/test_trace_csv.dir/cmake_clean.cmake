file(REMOVE_RECURSE
  "CMakeFiles/test_trace_csv.dir/test_trace_csv.cpp.o"
  "CMakeFiles/test_trace_csv.dir/test_trace_csv.cpp.o.d"
  "test_trace_csv"
  "test_trace_csv.pdb"
  "test_trace_csv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
