file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/test_apps.cpp.o"
  "CMakeFiles/test_apps.dir/test_apps.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
