file(REMOVE_RECURSE
  "CMakeFiles/test_apps_friendship.dir/test_apps_friendship.cpp.o"
  "CMakeFiles/test_apps_friendship.dir/test_apps_friendship.cpp.o.d"
  "test_apps_friendship"
  "test_apps_friendship.pdb"
  "test_apps_friendship[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_friendship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
