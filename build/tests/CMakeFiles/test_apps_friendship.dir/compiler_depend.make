# Empty compiler generated dependencies file for test_apps_friendship.
# This may be replaced when dependencies are built.
