file(REMOVE_RECURSE
  "CMakeFiles/test_trace_metrics.dir/test_trace_metrics.cpp.o"
  "CMakeFiles/test_trace_metrics.dir/test_trace_metrics.cpp.o.d"
  "test_trace_metrics"
  "test_trace_metrics.pdb"
  "test_trace_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
