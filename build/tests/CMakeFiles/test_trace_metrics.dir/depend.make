# Empty dependencies file for test_trace_metrics.
# This may be replaced when dependencies are built.
