# Empty dependencies file for test_trace_poi.
# This may be replaced when dependencies are built.
