file(REMOVE_RECURSE
  "CMakeFiles/test_trace_poi.dir/test_trace_poi.cpp.o"
  "CMakeFiles/test_trace_poi.dir/test_trace_poi.cpp.o.d"
  "test_trace_poi"
  "test_trace_poi.pdb"
  "test_trace_poi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_poi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
