file(REMOVE_RECURSE
  "CMakeFiles/test_match_analysis.dir/test_match_analysis.cpp.o"
  "CMakeFiles/test_match_analysis.dir/test_match_analysis.cpp.o.d"
  "test_match_analysis"
  "test_match_analysis.pdb"
  "test_match_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
