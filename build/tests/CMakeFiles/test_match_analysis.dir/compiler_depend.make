# Empty compiler generated dependencies file for test_match_analysis.
# This may be replaced when dependencies are built.
