# Empty dependencies file for test_stats_correlation.
# This may be replaced when dependencies are built.
