file(REMOVE_RECURSE
  "CMakeFiles/test_stats_correlation.dir/test_stats_correlation.cpp.o"
  "CMakeFiles/test_stats_correlation.dir/test_stats_correlation.cpp.o.d"
  "test_stats_correlation"
  "test_stats_correlation.pdb"
  "test_stats_correlation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
