file(REMOVE_RECURSE
  "CMakeFiles/test_trace_grid.dir/test_trace_grid.cpp.o"
  "CMakeFiles/test_trace_grid.dir/test_trace_grid.cpp.o.d"
  "test_trace_grid"
  "test_trace_grid.pdb"
  "test_trace_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
