file(REMOVE_RECURSE
  "CMakeFiles/test_apps_traffic.dir/test_apps_traffic.cpp.o"
  "CMakeFiles/test_apps_traffic.dir/test_apps_traffic.cpp.o.d"
  "test_apps_traffic"
  "test_apps_traffic.pdb"
  "test_apps_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
