# Empty compiler generated dependencies file for test_recover.
# This may be replaced when dependencies are built.
