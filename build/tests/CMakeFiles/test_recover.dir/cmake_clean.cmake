file(REMOVE_RECURSE
  "CMakeFiles/test_recover.dir/test_recover.cpp.o"
  "CMakeFiles/test_recover.dir/test_recover.cpp.o.d"
  "test_recover"
  "test_recover.pdb"
  "test_recover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
