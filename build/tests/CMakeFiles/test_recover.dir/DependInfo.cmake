
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_recover.cpp" "tests/CMakeFiles/test_recover.dir/test_recover.cpp.o" "gcc" "tests/CMakeFiles/test_recover.dir/test_recover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geovalid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/geovalid_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/geovalid_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/recover/CMakeFiles/geovalid_recover.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/geovalid_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/manet/CMakeFiles/geovalid_manet.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/geovalid_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/geovalid_match.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geovalid_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geovalid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geovalid_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
