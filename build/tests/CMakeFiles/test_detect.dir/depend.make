# Empty dependencies file for test_detect.
# This may be replaced when dependencies are built.
