file(REMOVE_RECURSE
  "CMakeFiles/test_detect.dir/test_detect.cpp.o"
  "CMakeFiles/test_detect.dir/test_detect.cpp.o.d"
  "test_detect"
  "test_detect.pdb"
  "test_detect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
