# Empty dependencies file for test_stats_rng.
# This may be replaced when dependencies are built.
