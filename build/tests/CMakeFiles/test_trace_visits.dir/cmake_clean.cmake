file(REMOVE_RECURSE
  "CMakeFiles/test_trace_visits.dir/test_trace_visits.cpp.o"
  "CMakeFiles/test_trace_visits.dir/test_trace_visits.cpp.o.d"
  "test_trace_visits"
  "test_trace_visits.pdb"
  "test_trace_visits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_visits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
