# Empty dependencies file for test_trace_visits.
# This may be replaced when dependencies are built.
