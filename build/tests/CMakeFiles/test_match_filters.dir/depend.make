# Empty dependencies file for test_match_filters.
# This may be replaced when dependencies are built.
