file(REMOVE_RECURSE
  "CMakeFiles/test_match_filters.dir/test_match_filters.cpp.o"
  "CMakeFiles/test_match_filters.dir/test_match_filters.cpp.o.d"
  "test_match_filters"
  "test_match_filters.pdb"
  "test_match_filters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
