# Empty compiler generated dependencies file for test_mobility.
# This may be replaced when dependencies are built.
