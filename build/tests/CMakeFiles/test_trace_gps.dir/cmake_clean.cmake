file(REMOVE_RECURSE
  "CMakeFiles/test_trace_gps.dir/test_trace_gps.cpp.o"
  "CMakeFiles/test_trace_gps.dir/test_trace_gps.cpp.o.d"
  "test_trace_gps"
  "test_trace_gps.pdb"
  "test_trace_gps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
