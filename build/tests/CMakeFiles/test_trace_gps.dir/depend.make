# Empty dependencies file for test_trace_gps.
# This may be replaced when dependencies are built.
