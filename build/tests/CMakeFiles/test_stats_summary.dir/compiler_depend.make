# Empty compiler generated dependencies file for test_stats_summary.
# This may be replaced when dependencies are built.
