file(REMOVE_RECURSE
  "CMakeFiles/test_stats_summary.dir/test_stats_summary.cpp.o"
  "CMakeFiles/test_stats_summary.dir/test_stats_summary.cpp.o.d"
  "test_stats_summary"
  "test_stats_summary.pdb"
  "test_stats_summary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
