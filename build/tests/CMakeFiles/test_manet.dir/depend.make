# Empty dependencies file for test_manet.
# This may be replaced when dependencies are built.
