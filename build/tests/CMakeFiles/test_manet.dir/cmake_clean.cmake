file(REMOVE_RECURSE
  "CMakeFiles/test_manet.dir/test_manet.cpp.o"
  "CMakeFiles/test_manet.dir/test_manet.cpp.o.d"
  "test_manet"
  "test_manet.pdb"
  "test_manet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
