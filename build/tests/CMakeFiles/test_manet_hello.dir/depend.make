# Empty dependencies file for test_manet_hello.
# This may be replaced when dependencies are built.
