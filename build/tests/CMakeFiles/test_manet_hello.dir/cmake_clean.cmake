file(REMOVE_RECURSE
  "CMakeFiles/test_manet_hello.dir/test_manet_hello.cpp.o"
  "CMakeFiles/test_manet_hello.dir/test_manet_hello.cpp.o.d"
  "test_manet_hello"
  "test_manet_hello.pdb"
  "test_manet_hello[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manet_hello.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
