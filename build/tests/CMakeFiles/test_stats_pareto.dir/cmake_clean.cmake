file(REMOVE_RECURSE
  "CMakeFiles/test_stats_pareto.dir/test_stats_pareto.cpp.o"
  "CMakeFiles/test_stats_pareto.dir/test_stats_pareto.cpp.o.d"
  "test_stats_pareto"
  "test_stats_pareto.pdb"
  "test_stats_pareto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
