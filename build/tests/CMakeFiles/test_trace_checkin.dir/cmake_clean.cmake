file(REMOVE_RECURSE
  "CMakeFiles/test_trace_checkin.dir/test_trace_checkin.cpp.o"
  "CMakeFiles/test_trace_checkin.dir/test_trace_checkin.cpp.o.d"
  "test_trace_checkin"
  "test_trace_checkin.pdb"
  "test_trace_checkin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_checkin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
