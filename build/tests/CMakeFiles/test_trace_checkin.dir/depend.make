# Empty dependencies file for test_trace_checkin.
# This may be replaced when dependencies are built.
