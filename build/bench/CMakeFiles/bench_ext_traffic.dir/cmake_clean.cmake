file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_traffic.dir/bench_ext_traffic.cpp.o"
  "CMakeFiles/bench_ext_traffic.dir/bench_ext_traffic.cpp.o.d"
  "bench_ext_traffic"
  "bench_ext_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
