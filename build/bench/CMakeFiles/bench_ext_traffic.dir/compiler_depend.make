# Empty compiler generated dependencies file for bench_ext_traffic.
# This may be replaced when dependencies are built.
