# Empty compiler generated dependencies file for bench_fig3_missing_topn.
# This may be replaced when dependencies are built.
