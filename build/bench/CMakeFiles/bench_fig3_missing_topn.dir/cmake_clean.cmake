file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_missing_topn.dir/bench_fig3_missing_topn.cpp.o"
  "CMakeFiles/bench_fig3_missing_topn.dir/bench_fig3_missing_topn.cpp.o.d"
  "bench_fig3_missing_topn"
  "bench_fig3_missing_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_missing_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
