# Empty dependencies file for bench_ext_friendship.
# This may be replaced when dependencies are built.
