file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_friendship.dir/bench_ext_friendship.cpp.o"
  "CMakeFiles/bench_ext_friendship.dir/bench_ext_friendship.cpp.o.d"
  "bench_ext_friendship"
  "bench_ext_friendship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_friendship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
