file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alpha_beta.dir/bench_ablation_alpha_beta.cpp.o"
  "CMakeFiles/bench_ablation_alpha_beta.dir/bench_ablation_alpha_beta.cpp.o.d"
  "bench_ablation_alpha_beta"
  "bench_ablation_alpha_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alpha_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
