# Empty compiler generated dependencies file for bench_ext_ml_detector.
# This may be replaced when dependencies are built.
