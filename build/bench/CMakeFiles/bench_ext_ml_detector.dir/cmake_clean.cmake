file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ml_detector.dir/bench_ext_ml_detector.cpp.o"
  "CMakeFiles/bench_ext_ml_detector.dir/bench_ext_ml_detector.cpp.o.d"
  "bench_ext_ml_detector"
  "bench_ext_ml_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ml_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
