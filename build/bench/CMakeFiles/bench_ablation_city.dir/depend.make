# Empty dependencies file for bench_ablation_city.
# This may be replaced when dependencies are built.
