file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_city.dir/bench_ablation_city.cpp.o"
  "CMakeFiles/bench_ablation_city.dir/bench_ablation_city.cpp.o.d"
  "bench_ablation_city"
  "bench_ablation_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
