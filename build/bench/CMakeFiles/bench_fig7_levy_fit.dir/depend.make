# Empty dependencies file for bench_fig7_levy_fit.
# This may be replaced when dependencies are built.
