file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_levy_fit.dir/bench_fig7_levy_fit.cpp.o"
  "CMakeFiles/bench_fig7_levy_fit.dir/bench_fig7_levy_fit.cpp.o.d"
  "bench_fig7_levy_fit"
  "bench_fig7_levy_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_levy_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
