file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_manet.dir/bench_fig8_manet.cpp.o"
  "CMakeFiles/bench_fig8_manet.dir/bench_fig8_manet.cpp.o.d"
  "bench_fig8_manet"
  "bench_fig8_manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
