# Empty compiler generated dependencies file for bench_fig8_manet.
# This may be replaced when dependencies are built.
