# Empty compiler generated dependencies file for bench_fig2_interarrival.
# This may be replaced when dependencies are built.
