file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_interarrival.dir/bench_fig2_interarrival.cpp.o"
  "CMakeFiles/bench_fig2_interarrival.dir/bench_fig2_interarrival.cpp.o.d"
  "bench_fig2_interarrival"
  "bench_fig2_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
