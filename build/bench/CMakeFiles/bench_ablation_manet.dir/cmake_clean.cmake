file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_manet.dir/bench_ablation_manet.cpp.o"
  "CMakeFiles/bench_ablation_manet.dir/bench_ablation_manet.cpp.o.d"
  "bench_ablation_manet"
  "bench_ablation_manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
