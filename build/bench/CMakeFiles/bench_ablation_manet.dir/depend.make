# Empty dependencies file for bench_ablation_manet.
# This may be replaced when dependencies are built.
