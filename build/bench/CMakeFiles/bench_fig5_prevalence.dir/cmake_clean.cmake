file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_prevalence.dir/bench_fig5_prevalence.cpp.o"
  "CMakeFiles/bench_fig5_prevalence.dir/bench_fig5_prevalence.cpp.o.d"
  "bench_fig5_prevalence"
  "bench_fig5_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
