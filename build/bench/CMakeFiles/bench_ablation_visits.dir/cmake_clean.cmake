file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_visits.dir/bench_ablation_visits.cpp.o"
  "CMakeFiles/bench_ablation_visits.dir/bench_ablation_visits.cpp.o.d"
  "bench_ablation_visits"
  "bench_ablation_visits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_visits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
