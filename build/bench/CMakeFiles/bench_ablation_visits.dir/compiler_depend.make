# Empty compiler generated dependencies file for bench_ablation_visits.
# This may be replaced when dependencies are built.
