file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_matching.dir/bench_fig1_matching.cpp.o"
  "CMakeFiles/bench_fig1_matching.dir/bench_fig1_matching.cpp.o.d"
  "bench_fig1_matching"
  "bench_fig1_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
