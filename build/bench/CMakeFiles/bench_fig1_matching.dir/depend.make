# Empty dependencies file for bench_fig1_matching.
# This may be replaced when dependencies are built.
