file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_incentives.dir/bench_table2_incentives.cpp.o"
  "CMakeFiles/bench_table2_incentives.dir/bench_table2_incentives.cpp.o.d"
  "bench_table2_incentives"
  "bench_table2_incentives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
