# Empty dependencies file for bench_table2_incentives.
# This may be replaced when dependencies are built.
