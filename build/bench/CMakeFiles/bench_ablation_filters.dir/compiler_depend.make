# Empty compiler generated dependencies file for bench_ablation_filters.
# This may be replaced when dependencies are built.
