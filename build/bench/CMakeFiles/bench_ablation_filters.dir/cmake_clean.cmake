file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_filters.dir/bench_ablation_filters.cpp.o"
  "CMakeFiles/bench_ablation_filters.dir/bench_ablation_filters.cpp.o.d"
  "bench_ablation_filters"
  "bench_ablation_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
