file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_metrics.dir/bench_fig2b_metrics.cpp.o"
  "CMakeFiles/bench_fig2b_metrics.dir/bench_fig2b_metrics.cpp.o.d"
  "bench_fig2b_metrics"
  "bench_fig2b_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
