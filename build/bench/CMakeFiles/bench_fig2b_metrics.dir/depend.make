# Empty dependencies file for bench_fig2b_metrics.
# This may be replaced when dependencies are built.
