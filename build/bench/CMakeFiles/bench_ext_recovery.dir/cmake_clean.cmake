file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_recovery.dir/bench_ext_recovery.cpp.o"
  "CMakeFiles/bench_ext_recovery.dir/bench_ext_recovery.cpp.o.d"
  "bench_ext_recovery"
  "bench_ext_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
