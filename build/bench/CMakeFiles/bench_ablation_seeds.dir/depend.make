# Empty dependencies file for bench_ablation_seeds.
# This may be replaced when dependencies are built.
