file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seeds.dir/bench_ablation_seeds.cpp.o"
  "CMakeFiles/bench_ablation_seeds.dir/bench_ablation_seeds.cpp.o.d"
  "bench_ablation_seeds"
  "bench_ablation_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
