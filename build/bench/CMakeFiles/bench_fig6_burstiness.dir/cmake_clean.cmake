file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_burstiness.dir/bench_fig6_burstiness.cpp.o"
  "CMakeFiles/bench_fig6_burstiness.dir/bench_fig6_burstiness.cpp.o.d"
  "bench_fig6_burstiness"
  "bench_fig6_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
