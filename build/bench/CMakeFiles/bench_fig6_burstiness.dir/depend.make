# Empty dependencies file for bench_fig6_burstiness.
# This may be replaced when dependencies are built.
