# Empty compiler generated dependencies file for bench_ablation_classifier.
# This may be replaced when dependencies are built.
