file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_classifier.dir/bench_ablation_classifier.cpp.o"
  "CMakeFiles/bench_ablation_classifier.dir/bench_ablation_classifier.cpp.o.d"
  "bench_ablation_classifier"
  "bench_ablation_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
