file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_missing_categories.dir/bench_fig4_missing_categories.cpp.o"
  "CMakeFiles/bench_fig4_missing_categories.dir/bench_fig4_missing_categories.cpp.o.d"
  "bench_fig4_missing_categories"
  "bench_fig4_missing_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_missing_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
