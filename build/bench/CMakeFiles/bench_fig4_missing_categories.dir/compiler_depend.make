# Empty compiler generated dependencies file for bench_fig4_missing_categories.
# This may be replaced when dependencies are built.
