# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/geovalid" "generate" "tiny" "/root/repo/build/tools/cli_smoke")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_validate "/root/repo/build/tools/geovalid" "validate" "/root/repo/build/tools/cli_smoke")
set_tests_properties(cli_validate PROPERTIES  DEPENDS "cli_generate" PASS_REGULAR_EXPRESSION "extraneous" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_repair "/root/repo/build/tools/geovalid" "repair" "/root/repo/build/tools/cli_smoke" "/root/repo/build/tools/cli_smoke_repaired.csv")
set_tests_properties(cli_repair PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/geovalid" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
