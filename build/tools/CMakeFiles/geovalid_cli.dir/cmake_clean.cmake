file(REMOVE_RECURSE
  "CMakeFiles/geovalid_cli.dir/geovalid_cli.cpp.o"
  "CMakeFiles/geovalid_cli.dir/geovalid_cli.cpp.o.d"
  "geovalid"
  "geovalid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
