# Empty dependencies file for geovalid_cli.
# This may be replaced when dependencies are built.
