file(REMOVE_RECURSE
  "libgeovalid_apps.a"
)
