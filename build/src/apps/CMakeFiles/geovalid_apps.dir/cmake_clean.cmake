file(REMOVE_RECURSE
  "CMakeFiles/geovalid_apps.dir/friendship.cpp.o"
  "CMakeFiles/geovalid_apps.dir/friendship.cpp.o.d"
  "CMakeFiles/geovalid_apps.dir/next_place.cpp.o"
  "CMakeFiles/geovalid_apps.dir/next_place.cpp.o.d"
  "CMakeFiles/geovalid_apps.dir/traffic.cpp.o"
  "CMakeFiles/geovalid_apps.dir/traffic.cpp.o.d"
  "libgeovalid_apps.a"
  "libgeovalid_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
