# Empty compiler generated dependencies file for geovalid_apps.
# This may be replaced when dependencies are built.
