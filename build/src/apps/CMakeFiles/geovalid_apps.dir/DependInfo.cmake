
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/friendship.cpp" "src/apps/CMakeFiles/geovalid_apps.dir/friendship.cpp.o" "gcc" "src/apps/CMakeFiles/geovalid_apps.dir/friendship.cpp.o.d"
  "/root/repo/src/apps/next_place.cpp" "src/apps/CMakeFiles/geovalid_apps.dir/next_place.cpp.o" "gcc" "src/apps/CMakeFiles/geovalid_apps.dir/next_place.cpp.o.d"
  "/root/repo/src/apps/traffic.cpp" "src/apps/CMakeFiles/geovalid_apps.dir/traffic.cpp.o" "gcc" "src/apps/CMakeFiles/geovalid_apps.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/geovalid_match.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geovalid_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geovalid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geovalid_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
