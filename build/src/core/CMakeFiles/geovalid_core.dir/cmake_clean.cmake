file(REMOVE_RECURSE
  "CMakeFiles/geovalid_core.dir/pipeline.cpp.o"
  "CMakeFiles/geovalid_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/geovalid_core.dir/report.cpp.o"
  "CMakeFiles/geovalid_core.dir/report.cpp.o.d"
  "libgeovalid_core.a"
  "libgeovalid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
