file(REMOVE_RECURSE
  "libgeovalid_core.a"
)
