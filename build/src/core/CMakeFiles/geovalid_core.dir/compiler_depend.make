# Empty compiler generated dependencies file for geovalid_core.
# This may be replaced when dependencies are built.
