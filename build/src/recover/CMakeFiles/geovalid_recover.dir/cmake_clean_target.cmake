file(REMOVE_RECURSE
  "libgeovalid_recover.a"
)
