file(REMOVE_RECURSE
  "CMakeFiles/geovalid_recover.dir/anchors.cpp.o"
  "CMakeFiles/geovalid_recover.dir/anchors.cpp.o.d"
  "CMakeFiles/geovalid_recover.dir/evaluation.cpp.o"
  "CMakeFiles/geovalid_recover.dir/evaluation.cpp.o.d"
  "CMakeFiles/geovalid_recover.dir/upsample.cpp.o"
  "CMakeFiles/geovalid_recover.dir/upsample.cpp.o.d"
  "libgeovalid_recover.a"
  "libgeovalid_recover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_recover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
