# Empty dependencies file for geovalid_recover.
# This may be replaced when dependencies are built.
