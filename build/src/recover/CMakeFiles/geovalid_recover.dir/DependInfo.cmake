
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recover/anchors.cpp" "src/recover/CMakeFiles/geovalid_recover.dir/anchors.cpp.o" "gcc" "src/recover/CMakeFiles/geovalid_recover.dir/anchors.cpp.o.d"
  "/root/repo/src/recover/evaluation.cpp" "src/recover/CMakeFiles/geovalid_recover.dir/evaluation.cpp.o" "gcc" "src/recover/CMakeFiles/geovalid_recover.dir/evaluation.cpp.o.d"
  "/root/repo/src/recover/upsample.cpp" "src/recover/CMakeFiles/geovalid_recover.dir/upsample.cpp.o" "gcc" "src/recover/CMakeFiles/geovalid_recover.dir/upsample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/geovalid_match.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geovalid_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geovalid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geovalid_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
