file(REMOVE_RECURSE
  "CMakeFiles/geovalid_stats.dir/correlation.cpp.o"
  "CMakeFiles/geovalid_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/ecdf.cpp.o"
  "CMakeFiles/geovalid_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/entropy.cpp.o"
  "CMakeFiles/geovalid_stats.dir/entropy.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/histogram.cpp.o"
  "CMakeFiles/geovalid_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/ks.cpp.o"
  "CMakeFiles/geovalid_stats.dir/ks.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/pareto.cpp.o"
  "CMakeFiles/geovalid_stats.dir/pareto.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/powerlaw.cpp.o"
  "CMakeFiles/geovalid_stats.dir/powerlaw.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/rng.cpp.o"
  "CMakeFiles/geovalid_stats.dir/rng.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/samplers.cpp.o"
  "CMakeFiles/geovalid_stats.dir/samplers.cpp.o.d"
  "CMakeFiles/geovalid_stats.dir/summary.cpp.o"
  "CMakeFiles/geovalid_stats.dir/summary.cpp.o.d"
  "libgeovalid_stats.a"
  "libgeovalid_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
