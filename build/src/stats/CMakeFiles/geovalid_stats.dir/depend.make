# Empty dependencies file for geovalid_stats.
# This may be replaced when dependencies are built.
