file(REMOVE_RECURSE
  "libgeovalid_stats.a"
)
