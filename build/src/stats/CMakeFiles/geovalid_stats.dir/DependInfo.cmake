
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/entropy.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/entropy.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/entropy.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/ks.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/ks.cpp.o.d"
  "/root/repo/src/stats/pareto.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/pareto.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/pareto.cpp.o.d"
  "/root/repo/src/stats/powerlaw.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/powerlaw.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/powerlaw.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/samplers.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/samplers.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/samplers.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/geovalid_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/geovalid_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
