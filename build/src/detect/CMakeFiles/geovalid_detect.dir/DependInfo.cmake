
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detector.cpp" "src/detect/CMakeFiles/geovalid_detect.dir/detector.cpp.o" "gcc" "src/detect/CMakeFiles/geovalid_detect.dir/detector.cpp.o.d"
  "/root/repo/src/detect/evaluation.cpp" "src/detect/CMakeFiles/geovalid_detect.dir/evaluation.cpp.o" "gcc" "src/detect/CMakeFiles/geovalid_detect.dir/evaluation.cpp.o.d"
  "/root/repo/src/detect/features.cpp" "src/detect/CMakeFiles/geovalid_detect.dir/features.cpp.o" "gcc" "src/detect/CMakeFiles/geovalid_detect.dir/features.cpp.o.d"
  "/root/repo/src/detect/logistic.cpp" "src/detect/CMakeFiles/geovalid_detect.dir/logistic.cpp.o" "gcc" "src/detect/CMakeFiles/geovalid_detect.dir/logistic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/geovalid_match.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geovalid_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geovalid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geovalid_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
