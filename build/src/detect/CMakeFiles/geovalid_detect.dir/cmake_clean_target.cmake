file(REMOVE_RECURSE
  "libgeovalid_detect.a"
)
