file(REMOVE_RECURSE
  "CMakeFiles/geovalid_detect.dir/detector.cpp.o"
  "CMakeFiles/geovalid_detect.dir/detector.cpp.o.d"
  "CMakeFiles/geovalid_detect.dir/evaluation.cpp.o"
  "CMakeFiles/geovalid_detect.dir/evaluation.cpp.o.d"
  "CMakeFiles/geovalid_detect.dir/features.cpp.o"
  "CMakeFiles/geovalid_detect.dir/features.cpp.o.d"
  "CMakeFiles/geovalid_detect.dir/logistic.cpp.o"
  "CMakeFiles/geovalid_detect.dir/logistic.cpp.o.d"
  "libgeovalid_detect.a"
  "libgeovalid_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
