# Empty compiler generated dependencies file for geovalid_detect.
# This may be replaced when dependencies are built.
