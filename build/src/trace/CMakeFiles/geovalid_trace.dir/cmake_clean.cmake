file(REMOVE_RECURSE
  "CMakeFiles/geovalid_trace.dir/checkin.cpp.o"
  "CMakeFiles/geovalid_trace.dir/checkin.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/csv.cpp.o"
  "CMakeFiles/geovalid_trace.dir/csv.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/dataset.cpp.o"
  "CMakeFiles/geovalid_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/gowalla.cpp.o"
  "CMakeFiles/geovalid_trace.dir/gowalla.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/gps.cpp.o"
  "CMakeFiles/geovalid_trace.dir/gps.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/poi.cpp.o"
  "CMakeFiles/geovalid_trace.dir/poi.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/poi_grid.cpp.o"
  "CMakeFiles/geovalid_trace.dir/poi_grid.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/stationary.cpp.o"
  "CMakeFiles/geovalid_trace.dir/stationary.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/geovalid_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/user.cpp.o"
  "CMakeFiles/geovalid_trace.dir/user.cpp.o.d"
  "CMakeFiles/geovalid_trace.dir/visit_detector.cpp.o"
  "CMakeFiles/geovalid_trace.dir/visit_detector.cpp.o.d"
  "libgeovalid_trace.a"
  "libgeovalid_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
