file(REMOVE_RECURSE
  "libgeovalid_trace.a"
)
