# Empty compiler generated dependencies file for geovalid_trace.
# This may be replaced when dependencies are built.
