
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/checkin.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/checkin.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/checkin.cpp.o.d"
  "/root/repo/src/trace/csv.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/csv.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/csv.cpp.o.d"
  "/root/repo/src/trace/dataset.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/dataset.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/dataset.cpp.o.d"
  "/root/repo/src/trace/gowalla.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/gowalla.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/gowalla.cpp.o.d"
  "/root/repo/src/trace/gps.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/gps.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/gps.cpp.o.d"
  "/root/repo/src/trace/poi.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/poi.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/poi.cpp.o.d"
  "/root/repo/src/trace/poi_grid.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/poi_grid.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/poi_grid.cpp.o.d"
  "/root/repo/src/trace/stationary.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/stationary.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/stationary.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/trace_stats.cpp.o.d"
  "/root/repo/src/trace/user.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/user.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/user.cpp.o.d"
  "/root/repo/src/trace/visit_detector.cpp" "src/trace/CMakeFiles/geovalid_trace.dir/visit_detector.cpp.o" "gcc" "src/trace/CMakeFiles/geovalid_trace.dir/visit_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/geovalid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geovalid_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
