file(REMOVE_RECURSE
  "libgeovalid_manet.a"
)
