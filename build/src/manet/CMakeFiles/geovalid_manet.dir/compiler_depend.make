# Empty compiler generated dependencies file for geovalid_manet.
# This may be replaced when dependencies are built.
