file(REMOVE_RECURSE
  "CMakeFiles/geovalid_manet.dir/aodv.cpp.o"
  "CMakeFiles/geovalid_manet.dir/aodv.cpp.o.d"
  "CMakeFiles/geovalid_manet.dir/event_queue.cpp.o"
  "CMakeFiles/geovalid_manet.dir/event_queue.cpp.o.d"
  "CMakeFiles/geovalid_manet.dir/simulator.cpp.o"
  "CMakeFiles/geovalid_manet.dir/simulator.cpp.o.d"
  "libgeovalid_manet.a"
  "libgeovalid_manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
