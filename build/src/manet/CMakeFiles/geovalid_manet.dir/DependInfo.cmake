
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/manet/aodv.cpp" "src/manet/CMakeFiles/geovalid_manet.dir/aodv.cpp.o" "gcc" "src/manet/CMakeFiles/geovalid_manet.dir/aodv.cpp.o.d"
  "/root/repo/src/manet/event_queue.cpp" "src/manet/CMakeFiles/geovalid_manet.dir/event_queue.cpp.o" "gcc" "src/manet/CMakeFiles/geovalid_manet.dir/event_queue.cpp.o.d"
  "/root/repo/src/manet/simulator.cpp" "src/manet/CMakeFiles/geovalid_manet.dir/simulator.cpp.o" "gcc" "src/manet/CMakeFiles/geovalid_manet.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mobility/CMakeFiles/geovalid_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geovalid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geovalid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/geovalid_match.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geovalid_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
