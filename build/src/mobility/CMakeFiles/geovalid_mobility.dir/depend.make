# Empty dependencies file for geovalid_mobility.
# This may be replaced when dependencies are built.
