file(REMOVE_RECURSE
  "CMakeFiles/geovalid_mobility.dir/levy_fit.cpp.o"
  "CMakeFiles/geovalid_mobility.dir/levy_fit.cpp.o.d"
  "CMakeFiles/geovalid_mobility.dir/levy_walk.cpp.o"
  "CMakeFiles/geovalid_mobility.dir/levy_walk.cpp.o.d"
  "CMakeFiles/geovalid_mobility.dir/samples.cpp.o"
  "CMakeFiles/geovalid_mobility.dir/samples.cpp.o.d"
  "libgeovalid_mobility.a"
  "libgeovalid_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
