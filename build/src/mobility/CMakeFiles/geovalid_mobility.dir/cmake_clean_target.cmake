file(REMOVE_RECURSE
  "libgeovalid_mobility.a"
)
