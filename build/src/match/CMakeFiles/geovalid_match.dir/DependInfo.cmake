
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/burstiness.cpp" "src/match/CMakeFiles/geovalid_match.dir/burstiness.cpp.o" "gcc" "src/match/CMakeFiles/geovalid_match.dir/burstiness.cpp.o.d"
  "/root/repo/src/match/classifier.cpp" "src/match/CMakeFiles/geovalid_match.dir/classifier.cpp.o" "gcc" "src/match/CMakeFiles/geovalid_match.dir/classifier.cpp.o.d"
  "/root/repo/src/match/filters.cpp" "src/match/CMakeFiles/geovalid_match.dir/filters.cpp.o" "gcc" "src/match/CMakeFiles/geovalid_match.dir/filters.cpp.o.d"
  "/root/repo/src/match/incentives.cpp" "src/match/CMakeFiles/geovalid_match.dir/incentives.cpp.o" "gcc" "src/match/CMakeFiles/geovalid_match.dir/incentives.cpp.o.d"
  "/root/repo/src/match/matcher.cpp" "src/match/CMakeFiles/geovalid_match.dir/matcher.cpp.o" "gcc" "src/match/CMakeFiles/geovalid_match.dir/matcher.cpp.o.d"
  "/root/repo/src/match/missing.cpp" "src/match/CMakeFiles/geovalid_match.dir/missing.cpp.o" "gcc" "src/match/CMakeFiles/geovalid_match.dir/missing.cpp.o.d"
  "/root/repo/src/match/pipeline.cpp" "src/match/CMakeFiles/geovalid_match.dir/pipeline.cpp.o" "gcc" "src/match/CMakeFiles/geovalid_match.dir/pipeline.cpp.o.d"
  "/root/repo/src/match/prevalence.cpp" "src/match/CMakeFiles/geovalid_match.dir/prevalence.cpp.o" "gcc" "src/match/CMakeFiles/geovalid_match.dir/prevalence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/geovalid_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geovalid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geovalid_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
