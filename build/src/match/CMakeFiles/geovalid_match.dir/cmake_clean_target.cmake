file(REMOVE_RECURSE
  "libgeovalid_match.a"
)
