file(REMOVE_RECURSE
  "CMakeFiles/geovalid_match.dir/burstiness.cpp.o"
  "CMakeFiles/geovalid_match.dir/burstiness.cpp.o.d"
  "CMakeFiles/geovalid_match.dir/classifier.cpp.o"
  "CMakeFiles/geovalid_match.dir/classifier.cpp.o.d"
  "CMakeFiles/geovalid_match.dir/filters.cpp.o"
  "CMakeFiles/geovalid_match.dir/filters.cpp.o.d"
  "CMakeFiles/geovalid_match.dir/incentives.cpp.o"
  "CMakeFiles/geovalid_match.dir/incentives.cpp.o.d"
  "CMakeFiles/geovalid_match.dir/matcher.cpp.o"
  "CMakeFiles/geovalid_match.dir/matcher.cpp.o.d"
  "CMakeFiles/geovalid_match.dir/missing.cpp.o"
  "CMakeFiles/geovalid_match.dir/missing.cpp.o.d"
  "CMakeFiles/geovalid_match.dir/pipeline.cpp.o"
  "CMakeFiles/geovalid_match.dir/pipeline.cpp.o.d"
  "CMakeFiles/geovalid_match.dir/prevalence.cpp.o"
  "CMakeFiles/geovalid_match.dir/prevalence.cpp.o.d"
  "libgeovalid_match.a"
  "libgeovalid_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
