# Empty compiler generated dependencies file for geovalid_match.
# This may be replaced when dependencies are built.
