# CMake generated Testfile for 
# Source directory: /root/repo/src/match
# Build directory: /root/repo/build/src/match
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
