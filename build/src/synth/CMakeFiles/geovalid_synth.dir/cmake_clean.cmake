file(REMOVE_RECURSE
  "CMakeFiles/geovalid_synth.dir/checkin_model.cpp.o"
  "CMakeFiles/geovalid_synth.dir/checkin_model.cpp.o.d"
  "CMakeFiles/geovalid_synth.dir/city.cpp.o"
  "CMakeFiles/geovalid_synth.dir/city.cpp.o.d"
  "CMakeFiles/geovalid_synth.dir/config.cpp.o"
  "CMakeFiles/geovalid_synth.dir/config.cpp.o.d"
  "CMakeFiles/geovalid_synth.dir/movement.cpp.o"
  "CMakeFiles/geovalid_synth.dir/movement.cpp.o.d"
  "CMakeFiles/geovalid_synth.dir/persona.cpp.o"
  "CMakeFiles/geovalid_synth.dir/persona.cpp.o.d"
  "CMakeFiles/geovalid_synth.dir/schedule.cpp.o"
  "CMakeFiles/geovalid_synth.dir/schedule.cpp.o.d"
  "CMakeFiles/geovalid_synth.dir/study_generator.cpp.o"
  "CMakeFiles/geovalid_synth.dir/study_generator.cpp.o.d"
  "libgeovalid_synth.a"
  "libgeovalid_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
