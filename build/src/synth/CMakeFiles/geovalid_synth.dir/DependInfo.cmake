
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/checkin_model.cpp" "src/synth/CMakeFiles/geovalid_synth.dir/checkin_model.cpp.o" "gcc" "src/synth/CMakeFiles/geovalid_synth.dir/checkin_model.cpp.o.d"
  "/root/repo/src/synth/city.cpp" "src/synth/CMakeFiles/geovalid_synth.dir/city.cpp.o" "gcc" "src/synth/CMakeFiles/geovalid_synth.dir/city.cpp.o.d"
  "/root/repo/src/synth/config.cpp" "src/synth/CMakeFiles/geovalid_synth.dir/config.cpp.o" "gcc" "src/synth/CMakeFiles/geovalid_synth.dir/config.cpp.o.d"
  "/root/repo/src/synth/movement.cpp" "src/synth/CMakeFiles/geovalid_synth.dir/movement.cpp.o" "gcc" "src/synth/CMakeFiles/geovalid_synth.dir/movement.cpp.o.d"
  "/root/repo/src/synth/persona.cpp" "src/synth/CMakeFiles/geovalid_synth.dir/persona.cpp.o" "gcc" "src/synth/CMakeFiles/geovalid_synth.dir/persona.cpp.o.d"
  "/root/repo/src/synth/schedule.cpp" "src/synth/CMakeFiles/geovalid_synth.dir/schedule.cpp.o" "gcc" "src/synth/CMakeFiles/geovalid_synth.dir/schedule.cpp.o.d"
  "/root/repo/src/synth/study_generator.cpp" "src/synth/CMakeFiles/geovalid_synth.dir/study_generator.cpp.o" "gcc" "src/synth/CMakeFiles/geovalid_synth.dir/study_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/geovalid_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geovalid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geovalid_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
