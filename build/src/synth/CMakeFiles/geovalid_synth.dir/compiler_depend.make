# Empty compiler generated dependencies file for geovalid_synth.
# This may be replaced when dependencies are built.
