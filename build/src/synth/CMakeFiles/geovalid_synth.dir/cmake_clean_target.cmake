file(REMOVE_RECURSE
  "libgeovalid_synth.a"
)
