file(REMOVE_RECURSE
  "libgeovalid_geo.a"
)
