# Empty dependencies file for geovalid_geo.
# This may be replaced when dependencies are built.
