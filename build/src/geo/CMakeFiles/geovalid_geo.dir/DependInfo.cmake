
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/bbox.cpp" "src/geo/CMakeFiles/geovalid_geo.dir/bbox.cpp.o" "gcc" "src/geo/CMakeFiles/geovalid_geo.dir/bbox.cpp.o.d"
  "/root/repo/src/geo/geodesic.cpp" "src/geo/CMakeFiles/geovalid_geo.dir/geodesic.cpp.o" "gcc" "src/geo/CMakeFiles/geovalid_geo.dir/geodesic.cpp.o.d"
  "/root/repo/src/geo/latlon.cpp" "src/geo/CMakeFiles/geovalid_geo.dir/latlon.cpp.o" "gcc" "src/geo/CMakeFiles/geovalid_geo.dir/latlon.cpp.o.d"
  "/root/repo/src/geo/projection.cpp" "src/geo/CMakeFiles/geovalid_geo.dir/projection.cpp.o" "gcc" "src/geo/CMakeFiles/geovalid_geo.dir/projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
