file(REMOVE_RECURSE
  "CMakeFiles/geovalid_geo.dir/bbox.cpp.o"
  "CMakeFiles/geovalid_geo.dir/bbox.cpp.o.d"
  "CMakeFiles/geovalid_geo.dir/geodesic.cpp.o"
  "CMakeFiles/geovalid_geo.dir/geodesic.cpp.o.d"
  "CMakeFiles/geovalid_geo.dir/latlon.cpp.o"
  "CMakeFiles/geovalid_geo.dir/latlon.cpp.o.d"
  "CMakeFiles/geovalid_geo.dir/projection.cpp.o"
  "CMakeFiles/geovalid_geo.dir/projection.cpp.o.d"
  "libgeovalid_geo.a"
  "libgeovalid_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geovalid_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
