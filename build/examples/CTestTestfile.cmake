# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "extraneous" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_manet_impact "/root/repo/build/examples/manet_impact" "240")
set_tests_properties(example_manet_impact PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
