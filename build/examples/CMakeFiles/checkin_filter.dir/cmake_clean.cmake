file(REMOVE_RECURSE
  "CMakeFiles/checkin_filter.dir/checkin_filter.cpp.o"
  "CMakeFiles/checkin_filter.dir/checkin_filter.cpp.o.d"
  "checkin_filter"
  "checkin_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkin_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
