# Empty compiler generated dependencies file for checkin_filter.
# This may be replaced when dependencies are built.
