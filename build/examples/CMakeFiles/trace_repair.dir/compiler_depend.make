# Empty compiler generated dependencies file for trace_repair.
# This may be replaced when dependencies are built.
