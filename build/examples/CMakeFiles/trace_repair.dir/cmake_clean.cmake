file(REMOVE_RECURSE
  "CMakeFiles/trace_repair.dir/trace_repair.cpp.o"
  "CMakeFiles/trace_repair.dir/trace_repair.cpp.o.d"
  "trace_repair"
  "trace_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
