# Empty dependencies file for manet_impact.
# This may be replaced when dependencies are built.
