file(REMOVE_RECURSE
  "CMakeFiles/manet_impact.dir/manet_impact.cpp.o"
  "CMakeFiles/manet_impact.dir/manet_impact.cpp.o.d"
  "manet_impact"
  "manet_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
