file(REMOVE_RECURSE
  "CMakeFiles/study_audit.dir/study_audit.cpp.o"
  "CMakeFiles/study_audit.dir/study_audit.cpp.o.d"
  "study_audit"
  "study_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
