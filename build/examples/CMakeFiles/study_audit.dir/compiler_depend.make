# Empty compiler generated dependencies file for study_audit.
# This may be replaced when dependencies are built.
