// Checkpoint format coverage: snapshot primitive roundtrips, full engine
// state roundtrip (every shard-state field must survive save -> load ->
// save byte-identically), container rejection of truncated / corrupted /
// wrong-version files, config-fingerprint refusal, and restore_latest
// fallback order.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "match/pipeline.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "stream/snapshot_io.h"
#include "synth/config.h"
#include "synth/study_generator.h"

namespace geovalid::stream {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

TEST(SnapshotIo, PrimitiveRoundtrip) {
  SnapshotWriter w;
  w.u8(0x7F);
  w.u32(0xDEADBEEFu);
  w.u64(0xFEEDFACECAFEBEEFull);
  w.i64(-1234567890123456789LL);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.f64(-119.69820000000001);
  w.f64(0.0);
  w.boolean(true);
  w.boolean(false);

  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0x7F);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0xFEEDFACECAFEBEEFull);
  EXPECT_EQ(r.i64(), -1234567890123456789LL);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.f64(), -119.69820000000001);
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.exhausted());
}

TEST(SnapshotIo, ReadPastEndThrows) {
  SnapshotWriter w;
  w.u32(7);
  SnapshotReader r(w.bytes());
  (void)r.u32();
  EXPECT_THROW(r.u8(), SnapshotError);
}

TEST(SnapshotIo, BadBooleanThrows) {
  SnapshotWriter w;
  w.u8(2);
  SnapshotReader r(w.bytes());
  EXPECT_THROW(r.boolean(), SnapshotError);
}

TEST(SnapshotIo, OversizedLengthThrows) {
  SnapshotWriter w;
  w.u64(1ull << 40);  // sequence length far beyond the payload
  SnapshotReader r(w.bytes());
  EXPECT_THROW(r.length(), SnapshotError);
}

// Engine save/load: the payload must capture EVERY shard-state field.
// Feeding a study populates detector windows, matcher pending/deferred
// queues and GPS buffers, verdict counters and per-user clocks; the
// save -> load -> save fixed point then proves no field is dropped or
// mutated by (de)serialization.
TEST(Checkpoint, EngineStateSurvivesSaveLoadSaveByteIdentically) {
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());
  const std::vector<Event> events = flatten_dataset(study.dataset);
  const std::size_t half = events.size() / 2;

  StreamEngine a{StreamEngineConfig{}};
  for (std::size_t i = 0; i < half; ++i) a.push(events[i]);
  const std::string bytes = a.save_state();

  StreamEngine b{StreamEngineConfig{}};
  b.load_state(bytes);
  EXPECT_EQ(b.save_state(), bytes);
}

TEST(Checkpoint, StateBytesAreShardCountIndependent) {
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());
  const std::vector<Event> events = flatten_dataset(study.dataset);
  const std::size_t half = events.size() / 2;

  std::string reference;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    StreamEngineConfig config;
    config.shards = shards;
    StreamEngine engine(config);
    for (std::size_t i = 0; i < half; ++i) engine.push(events[i]);
    const std::string bytes = engine.save_state();
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "shards=" << shards;
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(Checkpoint, LoadIntoDifferentConfigRefuses) {
  StreamEngine a{StreamEngineConfig{}};
  const std::string bytes = a.save_state();

  StreamEngineConfig other;
  other.match.alpha_m = 100.0;  // semantically different pipeline
  StreamEngine b(other);
  try {
    b.load_state(bytes);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kConfigMismatch);
  }
}

TEST(Checkpoint, ShardCountIsNotPartOfTheFingerprint) {
  StreamEngineConfig four;
  four.shards = 4;
  StreamEngine a(four);
  const std::string bytes = a.save_state();

  StreamEngineConfig one;
  one.shards = 1;
  StreamEngine b(one);
  EXPECT_NO_THROW(b.load_state(bytes));
}

TEST(Checkpoint, LoadIntoUsedEngineThrows) {
  StreamEngine a{StreamEngineConfig{}};
  const std::string bytes = a.save_state();

  StreamEngine b{StreamEngineConfig{}};
  b.push(Event::gps_sample(1, trace::GpsPoint{0, {34.0, -119.0}, true, 0, 0.0}));
  EXPECT_THROW(b.load_state(bytes), std::logic_error);
}

TEST(Checkpoint, TrailingBytesRejected) {
  StreamEngine a{StreamEngineConfig{}};
  std::string bytes = a.save_state();
  bytes.push_back('\0');
  StreamEngine b{StreamEngineConfig{}};
  EXPECT_THROW(b.load_state(bytes), SnapshotError);
}

TEST(Checkpoint, ContainerRoundtrip) {
  Checkpoint ck;
  ck.cursor = 123456789;
  ck.payload = "engine-state-payload\x01\x02\x00more";
  // Embedded NULs must survive: the payload is binary.
  ck.payload.push_back('\0');
  const std::string bytes = encode_checkpoint(ck);
  const Checkpoint back = decode_checkpoint(bytes);
  EXPECT_EQ(back.cursor, ck.cursor);
  EXPECT_EQ(back.payload, ck.payload);
}

TEST(Checkpoint, EveryTruncationIsRejected) {
  Checkpoint ck;
  ck.cursor = 42;
  ck.payload = "0123456789abcdef";
  const std::string bytes = encode_checkpoint(ck);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    try {
      (void)decode_checkpoint(std::string_view(bytes).substr(0, len));
      FAIL() << "truncation to " << len << " bytes accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointError::Kind::kCorrupt) << "len " << len;
    }
  }
}

TEST(Checkpoint, EveryFlippedByteIsRejected) {
  Checkpoint ck;
  ck.cursor = 7;
  ck.payload = "payload-bytes";
  const std::string good = encode_checkpoint(ck);
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    // A flip lands on magic, version, sizes, payload or CRC — every one
    // must be caught (version flips report kVersionMismatch, the rest
    // kCorrupt; nothing decodes successfully).
    EXPECT_THROW((void)decode_checkpoint(bad), CheckpointError)
        << "flipped byte " << i;
  }
}

TEST(Checkpoint, VersionMismatchIsItsOwnKind) {
  Checkpoint ck;
  ck.payload = "p";
  std::string bytes = encode_checkpoint(ck);
  bytes[4] = static_cast<char>(kCheckpointVersion + 1);  // little-endian LSB
  // Re-stamp the CRC so only the version differs from a valid file.
  const std::string body = bytes.substr(0, bytes.size() - 4);
  SnapshotWriter w;
  w.u32(crc32(body));
  bytes = body + w.bytes();
  try {
    (void)decode_checkpoint(bytes);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kVersionMismatch);
  }
}

TEST(Checkpoint, RestoreLatestPrefersNewestValid) {
  const fs::path dir = fresh_dir("ck_latest");
  write_checkpoint(dir, {100, "old"});
  write_checkpoint(dir, {200, "new"});
  const auto ck = restore_latest(dir);
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->cursor, 200u);
  EXPECT_EQ(ck->payload, "new");
}

TEST(Checkpoint, RestoreLatestFallsBackPastCorruptFile) {
  const fs::path dir = fresh_dir("ck_fallback");
  write_checkpoint(dir, {100, "old"});
  const fs::path newest = write_checkpoint(dir, {200, "new"});
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out << "torn write";
  }
  const auto ck = restore_latest(dir);
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->cursor, 100u);
  EXPECT_EQ(ck->payload, "old");
}

TEST(Checkpoint, RestoreLatestEmptyOrMissingDirIsFreshStart) {
  EXPECT_FALSE(restore_latest(fresh_dir("ck_missing")).has_value());
  const fs::path dir = fresh_dir("ck_empty");
  fs::create_directories(dir);
  EXPECT_FALSE(restore_latest(dir).has_value());
}

TEST(Checkpoint, RestoreLatestAllCorruptThrows) {
  const fs::path dir = fresh_dir("ck_corrupt");
  const fs::path only = write_checkpoint(dir, {100, "x"});
  {
    std::ofstream out(only, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  try {
    (void)restore_latest(dir);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kCorrupt);
  }
}

TEST(Checkpoint, RestoreLatestRefusesNewerFormat) {
  const fs::path dir = fresh_dir("ck_version");
  write_checkpoint(dir, {100, "old"});
  // Hand-craft a well-formed file claiming a future format revision.
  SnapshotWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion + 1);
  w.u64(200);
  w.u64(1);
  std::string bytes = w.take();
  bytes += 'p';
  SnapshotWriter trailer;
  trailer.u32(crc32(bytes));
  bytes += trailer.bytes();
  {
    std::ofstream out(dir / "checkpoint-00000000000000000200.gvck",
                      std::ios::binary);
    out << bytes;
  }
  try {
    (void)restore_latest(dir);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kVersionMismatch);
  }
}

}  // namespace
}  // namespace geovalid::stream
