// Unit + property tests for the deterministic RNG and samplers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/rng.h"
#include "stats/samplers.h"

namespace geovalid::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_DOUBLE_EQ(rng.uniform(5.0, 5.0), 5.0);
  EXPECT_THROW(rng.uniform(3.0, 2.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(3, 1), std::invalid_argument);
}

TEST(Rng, BernoulliClampsAndBiases) {
  Rng rng(11);
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.08);
  EXPECT_NEAR(var, 4.0, 0.2);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(7.0);
  EXPECT_NEAR(sum / n, 7.0, 0.3);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonMean) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, ForkedStreamsAreDecorrelatedAndStable) {
  Rng root(99);
  Rng c1 = root.fork(1);
  // Forking again from an identical root with the same stream id yields the
  // same child stream (reproducibility requirement for per-user streams).
  Rng root2(99);
  Rng c1_again = root2.fork(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(c1.uniform(), c1_again.uniform());
  }
  // Different stream ids produce different streams.
  Rng root3(99);
  Rng c2 = root3.fork(2);
  Rng root4(99);
  Rng c1b = root4.fork(1);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (c2.uniform() == c1b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Samplers, TruncatedParetoStaysInRange) {
  Rng rng(21);
  const ParetoParams p{1.0, 1.2};
  for (int i = 0; i < 2000; ++i) {
    const double x = sample_truncated_pareto(rng, p, 50.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 50.0);
  }
  EXPECT_THROW(sample_truncated_pareto(rng, p, 0.5), std::invalid_argument);
}

TEST(Samplers, ZipfPmfSumsToOneAndDecreases) {
  const ZipfSampler zipf(20, 1.0);
  double sum = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) {
    sum += zipf.pmf(k);
    if (k > 0) {
      EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1) + 1e-12);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(zipf.pmf(100), 0.0);
}

TEST(Samplers, ZipfFrequenciesMatchPmf) {
  Rng rng(22);
  const ZipfSampler zipf(5, 1.2);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(Samplers, ZipfRejectsBadParams) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, -0.5), std::invalid_argument);
}

TEST(Samplers, DiscreteSamplerRespectsWeights) {
  Rng rng(23);
  const DiscreteSampler ds({1.0, 0.0, 3.0});
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[ds.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.01);
  EXPECT_DOUBLE_EQ(ds.probability(2), 0.75);
  EXPECT_DOUBLE_EQ(ds.probability(9), 0.0);
}

TEST(Samplers, DiscreteSamplerRejectsDegenerateWeights) {
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({1.0, -1.0}), std::invalid_argument);
}

TEST(Samplers, TruncatedNormalStaysInWindow) {
  Rng rng(24);
  for (int i = 0; i < 2000; ++i) {
    const double x = sample_truncated_normal(rng, 0.0, 1.0, -0.5, 0.5);
    EXPECT_GE(x, -0.5);
    EXPECT_LE(x, 0.5);
  }
  // Degenerate sigma clamps the mean.
  EXPECT_DOUBLE_EQ(sample_truncated_normal(rng, 9.0, 0.0, 0.0, 1.0), 1.0);
  EXPECT_THROW(sample_truncated_normal(rng, 0.0, 1.0, 1.0, -1.0),
               std::invalid_argument);
}

TEST(Samplers, LognormalMedianIsMedian) {
  Rng rng(25);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) {
    xs.push_back(sample_lognormal_median(rng, 10.0, 0.8));
  }
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 10.0, 0.5);
  EXPECT_THROW(sample_lognormal_median(rng, 0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace geovalid::stats
