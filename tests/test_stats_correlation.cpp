// Unit tests for correlation and regression.
#include <gtest/gtest.h>

#include <vector>

#include "stats/correlation.h"

namespace geovalid::stats {
namespace {

TEST(Pearson, PerfectPositiveAndNegative) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Pearson, InvariantToAffineTransforms) {
  const std::vector<double> xs{1.0, 5.0, 2.0, 8.0, 3.0};
  const std::vector<double> ys{2.0, 1.0, 7.0, 3.0, 9.0};
  const double base = pearson(xs, ys);
  std::vector<double> xs2;
  for (double x : xs) xs2.push_back(3.0 * x - 17.0);
  EXPECT_NEAR(pearson(xs2, ys), base, 1e-12);
}

TEST(Pearson, ConstantSampleGivesZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, RejectsBadInput) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(pearson(a, b), std::invalid_argument);
  EXPECT_THROW(pearson(b, b), std::invalid_argument);
}

TEST(Pearson, KnownTextbookValue) {
  const std::vector<double> xs{43.0, 21.0, 25.0, 42.0, 57.0, 59.0};
  const std::vector<double> ys{99.0, 65.0, 79.0, 75.0, 87.0, 81.0};
  EXPECT_NEAR(pearson(xs, ys), 0.529809, 1e-5);
}

TEST(LeastSquares, ExactLineRecovered) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = least_squares(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, VerticalDataFallsBackToMean) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const LinearFit fit = least_squares(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(LeastSquares, NoisyDataHasPartialR2) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{0.1, 0.9, 2.2, 2.8, 4.1};
  const LinearFit fit = least_squares(xs, ys);
  EXPECT_GT(fit.r_squared, 0.97);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_NEAR(fit.slope, 1.0, 0.1);
}

TEST(Spearman, MonotonicNonlinearIsPerfect) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> ys{1.0, 8.0, 27.0, 64.0, 125.0};  // x^3
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  // Pearson on the same data is below 1 (nonlinearity).
  EXPECT_LT(pearson(xs, ys), 0.999);
}

TEST(Spearman, TiesGetAverageRanks) {
  const std::vector<double> xs{1.0, 2.0, 2.0, 3.0};
  const std::vector<double> ys{10.0, 20.0, 20.0, 30.0};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Spearman, ReversedOrderIsMinusOne) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{9.0, 7.0, 5.0, 1.0};
  EXPECT_NEAR(spearman(xs, ys), -1.0, 1e-12);
}

}  // namespace
}  // namespace geovalid::stats
