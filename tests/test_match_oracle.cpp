// Property tests: the production matcher against an independent
// brute-force oracle of the paper's §4.1 algorithm, over randomized
// instances.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "geo/geodesic.h"
#include "match/matcher.h"
#include "stats/rng.h"

namespace geovalid::match {
namespace {

const geo::LatLon kCenter{34.42, -119.70};

struct Instance {
  std::vector<trace::Checkin> checkins;
  std::vector<trace::Visit> visits;
};

Instance random_instance(std::uint64_t seed, std::size_t n_checkins,
                         std::size_t n_visits) {
  stats::Rng rng(seed);
  Instance inst;
  for (std::size_t i = 0; i < n_visits; ++i) {
    const trace::TimeSec start = trace::minutes(rng.uniform_int(0, 1200));
    trace::Visit v;
    v.start = start;
    v.end = start + trace::minutes(rng.uniform_int(6, 90));
    v.centroid = geo::destination(kCenter, rng.uniform(0.0, 360.0),
                                  rng.uniform(0.0, 3000.0));
    inst.visits.push_back(v);
  }
  for (std::size_t i = 0; i < n_checkins; ++i) {
    trace::Checkin c;
    c.t = trace::minutes(rng.uniform_int(0, 1300));
    c.location = geo::destination(kCenter, rng.uniform(0.0, 360.0),
                                  rng.uniform(0.0, 3000.0));
    inst.checkins.push_back(c);
  }
  // Keep the checkin trace time-ordered like a real one.
  std::sort(inst.checkins.begin(), inst.checkins.end(),
            [](const trace::Checkin& a, const trace::Checkin& b) {
              return a.t < b.t;
            });
  return inst;
}

/// Independent oracle of the paper-mode algorithm:
///   each checkin's best candidate = min (dt, then geo distance);
///   per visit, the geographically closest claimant wins; losers stay
///   unmatched.
std::vector<std::optional<std::size_t>> oracle_paper_mode(
    const Instance& inst, const MatchConfig& cfg) {
  const std::size_t n = inst.checkins.size();
  std::vector<std::optional<std::size_t>> best(n);
  std::vector<double> best_dist(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    trace::TimeSec best_dt = std::numeric_limits<trace::TimeSec>::max();
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.visits.size(); ++j) {
      const double d =
          geo::distance_m(inst.checkins[i].location, inst.visits[j].centroid);
      if (d > cfg.alpha_m) continue;
      const trace::TimeSec dt =
          trace::interval_distance(inst.visits[j], inst.checkins[i].t);
      if (dt >= cfg.beta) continue;
      if (dt < best_dt || (dt == best_dt && d < best_d)) {
        best_dt = dt;
        best_d = d;
        best[i] = j;
        best_dist[i] = d;
      }
    }
  }

  // Resolve contests per visit.
  std::vector<std::optional<std::size_t>> result(n);
  for (std::size_t j = 0; j < inst.visits.size(); ++j) {
    std::optional<std::size_t> winner;
    for (std::size_t i = 0; i < n; ++i) {
      if (!best[i] || *best[i] != j) continue;
      if (!winner || best_dist[i] < best_dist[*winner]) winner = i;
    }
    if (winner) result[*winner] = j;
  }
  return result;
}

class MatcherOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherOracle, PaperModeMatchesBruteForce) {
  const Instance inst = random_instance(GetParam(), 40, 25);
  MatchConfig cfg;  // paper defaults
  const UserMatch got = match_user(inst.checkins, inst.visits, cfg);
  const auto want = oracle_paper_mode(inst, cfg);

  ASSERT_EQ(got.checkins.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.checkins[i].visit, want[i]) << "checkin " << i;
  }
}

TEST_P(MatcherOracle, RematchModeNeverMatchesFewer) {
  const Instance inst = random_instance(GetParam() + 500, 40, 25);
  MatchConfig paper;
  MatchConfig rematch;
  rematch.rematch_losers = true;
  const UserMatch a = match_user(inst.checkins, inst.visits, paper);
  const UserMatch b = match_user(inst.checkins, inst.visits, rematch);
  EXPECT_GE(b.honest_count(), a.honest_count());
}

TEST_P(MatcherOracle, MatchedPairsSatisfyThresholds) {
  const Instance inst = random_instance(GetParam() + 1000, 60, 30);
  for (bool rematch : {false, true}) {
    MatchConfig cfg;
    cfg.rematch_losers = rematch;
    const UserMatch m = match_user(inst.checkins, inst.visits, cfg);
    for (std::size_t i = 0; i < m.checkins.size(); ++i) {
      if (!m.checkins[i].visit) continue;
      const std::size_t j = *m.checkins[i].visit;
      EXPECT_LE(m.checkins[i].dist_m, cfg.alpha_m + 1e-6);
      EXPECT_LT(m.checkins[i].dt, cfg.beta);
      EXPECT_EQ(m.checkins[i].dt,
                trace::interval_distance(inst.visits[j], inst.checkins[i].t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherOracle,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace geovalid::match
