// The streaming keystone: replaying a generated study through StreamEngine
// must reproduce match::validate_dataset's partition EXACTLY — same honest /
// extraneous / missing counts and the same §5.1 class breakdown — at any
// shard count. Plus engine-level contract tests (ordering, backpressure
// sanity, throttled replay).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "geo/geodesic.h"
#include "match/pipeline.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "synth/config.h"
#include "synth/study_generator.h"

namespace geovalid::stream {
namespace {

const geo::LatLon kVenue{34.4208, -119.6982};

void expect_partition_eq(const match::Partition& got,
                         const match::Partition& want) {
  EXPECT_EQ(got.honest, want.honest);
  EXPECT_EQ(got.extraneous, want.extraneous);
  EXPECT_EQ(got.missing, want.missing);
  EXPECT_EQ(got.checkins, want.checkins);
  EXPECT_EQ(got.visits, want.visits);
  for (std::size_t c = 0; c < got.by_class.size(); ++c) {
    EXPECT_EQ(got.by_class[c], want.by_class[c]) << "class " << c;
  }
}

match::Partition stream_study(const trace::Dataset& ds, std::size_t shards) {
  StreamEngineConfig config;
  config.shards = shards;
  StreamEngine engine(config);
  const ReplayStats stats = replay_dataset(ds, engine);
  EXPECT_EQ(engine.events_processed(), stats.events);
  return engine.partition();
}

TEST(StreamEngine, TinyStudyMatchesBatchPartition) {
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());
  const match::Partition batch =
      match::validate_dataset(study.dataset).totals;
  ASSERT_GT(batch.checkins, 0u);
  ASSERT_GT(batch.visits, 0u);

  expect_partition_eq(stream_study(study.dataset, 1), batch);
  expect_partition_eq(stream_study(study.dataset, 4), batch);
}

TEST(StreamEngine, PrimaryStudyMatchesBatchPartition) {
  const synth::GeneratedStudy study =
      synth::generate_study(synth::primary_preset());
  const match::Partition batch =
      match::validate_dataset(study.dataset).totals;
  ASSERT_GT(batch.checkins, 0u);

  expect_partition_eq(stream_study(study.dataset, 1), batch);
  expect_partition_eq(stream_study(study.dataset, 4), batch);
}

TEST(StreamEngine, CustomMatchConfigFlowsThrough) {
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());
  match::MatchConfig strict;
  strict.alpha_m = 100.0;
  strict.beta = trace::minutes(10);
  const match::Partition batch =
      match::validate_dataset(study.dataset, strict).totals;

  StreamEngineConfig config;
  config.shards = 3;
  config.match = strict;
  StreamEngine engine(config);
  replay_dataset(study.dataset, engine);
  expect_partition_eq(engine.partition(), batch);
}

TEST(StreamEngine, FlattenedStreamIsGloballyTimeOrdered) {
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());
  const std::vector<Event> events = flatten_dataset(study.dataset);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time(), events[i].time()) << "event " << i;
  }
}

TEST(StreamEngine, ReplayCountsEveryEvent) {
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());
  StreamEngine engine;
  const ReplayStats stats = replay_dataset(study.dataset, engine);

  std::size_t gps = 0, checkins = 0;
  for (const trace::UserRecord& user : study.dataset.users()) {
    gps += user.gps.points().size();
    checkins += user.checkins.events().size();
  }
  EXPECT_EQ(stats.gps_samples, gps);
  EXPECT_EQ(stats.checkins, checkins);
  EXPECT_EQ(stats.events, gps + checkins);
  EXPECT_GT(stats.events_per_sec, 0.0);
  EXPECT_GE(stats.wall_seconds, stats.feed_seconds);
}

TEST(StreamEngine, ThrottledReplayRespectsTheRate) {
  // 500 events at 5000/s must take at least ~0.1 s to feed.
  std::vector<Event> events;
  for (int i = 0; i < 500; ++i) {
    trace::GpsPoint p;
    p.t = trace::minutes(i);
    p.position = kVenue;
    events.push_back(Event::gps_sample(7, p));
  }
  StreamEngine engine;
  ReplayConfig config;
  config.rate_events_per_sec = 5000.0;
  const ReplayStats stats = replay_events(events, engine, config);
  EXPECT_EQ(stats.events, 500u);
  EXPECT_GE(stats.feed_seconds, 0.05);
}

TEST(StreamEngine, OutOfOrderUserStreamThrowsFromFinish) {
  StreamEngine engine;
  trace::GpsPoint p;
  p.t = trace::minutes(10);
  p.position = kVenue;
  engine.push(Event::gps_sample(1, p));
  p.t = trace::minutes(5);  // same user, timestamp regression
  engine.push(Event::gps_sample(1, p));
  EXPECT_THROW(engine.finish(), std::invalid_argument);
}

TEST(StreamEngine, PushAfterFinishThrows) {
  StreamEngine engine;
  engine.finish();
  trace::GpsPoint p;
  p.position = kVenue;
  EXPECT_THROW(engine.push(Event::gps_sample(1, p)), std::logic_error);
}

TEST(StreamEngine, FinishIsIdempotent) {
  StreamEngine engine;
  trace::GpsPoint p;
  p.t = 0;
  p.position = kVenue;
  engine.push(Event::gps_sample(1, p));
  engine.finish();
  const match::Partition first = engine.partition();
  engine.finish();
  expect_partition_eq(engine.partition(), first);
}

TEST(StreamEngine, ShardAssignmentIsStableAndInRange) {
  StreamEngineConfig config;
  config.shards = 4;
  StreamEngine engine(config);
  EXPECT_EQ(engine.shard_count(), 4u);
  for (trace::UserId u = 0; u < 100; ++u) {
    const std::size_t s = engine.shard_of(u);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(engine.shard_of(u), s);
  }
  engine.finish();
}

TEST(StreamEngine, TinyMailboxStillProducesExactPartition) {
  // Force heavy backpressure: a 64-event mailbox with 16-event batches.
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());
  const match::Partition batch =
      match::validate_dataset(study.dataset).totals;

  StreamEngineConfig config;
  config.shards = 2;
  config.mailbox_capacity = 64;
  config.batch_size = 16;
  StreamEngine engine(config);
  replay_dataset(study.dataset, engine);
  expect_partition_eq(engine.partition(), batch);
}

// ---- Producer handles (the serve reactors' lock-free ingest path) ----

TEST(StreamEngine, ConcurrentProducersMatchBatchPartition) {
  // N producer threads, each with its own Producer handle and a disjoint
  // slice of users (the serve wire contract: one user, one connection, one
  // reactor), against a deliberately tiny mailbox so handoffs contend and
  // stall. The partition must still equal the batch reference exactly.
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());
  const match::Partition batch =
      match::validate_dataset(study.dataset).totals;
  const std::vector<Event> events = flatten_dataset(study.dataset);

  constexpr std::size_t kProducers = 4;
  std::array<std::vector<Event>, kProducers> slices;
  for (const Event& e : events) {
    slices[static_cast<std::size_t>(e.user) % kProducers].push_back(e);
  }

  StreamEngineConfig config;
  config.shards = 3;
  config.mailbox_capacity = 64;
  config.batch_size = 16;
  StreamEngine engine(config);

  std::array<std::uint64_t, kProducers> stalls{};
  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (std::size_t i = 0; i < kProducers; ++i) {
    threads.emplace_back([&engine, &slices, &stalls, i] {
      StreamEngine::Producer producer(engine);
      for (const Event& e : slices[i]) {
        EXPECT_TRUE(producer.push(e));
      }
      producer.flush();
      stalls[i] = producer.stalls();
    });
  }
  for (std::thread& t : threads) t.join();

  engine.finish();
  EXPECT_EQ(engine.events_processed(), events.size());
  expect_partition_eq(engine.partition(), batch);
  // The stall counter is bookkeeping, not behavior: any value is legal,
  // it just has to be readable after the thread parked its handle.
  std::uint64_t total_stalls = 0;
  for (const std::uint64_t s : stalls) total_stalls += s;
  EXPECT_LE(total_stalls, events.size());
}

TEST(StreamEngine, ProducerFlushDeliversStagedTail) {
  // A batch smaller than batch_size sits in producer staging until
  // flush(); finish() must then see every event.
  StreamEngine engine{StreamEngineConfig{}};
  StreamEngine::Producer producer(engine);
  trace::GpsPoint p;
  p.position = kVenue;
  for (int i = 0; i < 3; ++i) {
    p.t = trace::minutes(i);
    EXPECT_TRUE(producer.push(Event::gps_sample(11, p)));
  }
  producer.flush();
  engine.finish();
  EXPECT_EQ(engine.events_processed(), 3u);
}

// ---- Query API (the serve layer's /v1/users/{id}/verdicts source) ----

TEST(StreamEngine, UserVerdictsSumToThePartition) {
  const synth::GeneratedStudy study =
      synth::generate_study(synth::tiny_preset());

  StreamEngineConfig config;
  config.shards = 3;
  StreamEngine engine(config);
  replay_dataset(study.dataset, engine);

  const std::vector<UserVerdicts> users = engine.all_user_verdicts();
  EXPECT_EQ(users.size(), engine.user_count());
  ASSERT_FALSE(users.empty());

  match::Partition sum;
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (i > 0) EXPECT_LT(users[i - 1].id, users[i].id);  // globally sorted
    sum.honest += users[i].partition.honest;
    sum.extraneous += users[i].partition.extraneous;
    sum.missing += users[i].partition.missing;
    sum.checkins += users[i].partition.checkins;
    sum.visits += users[i].partition.visits;
    for (std::size_t c = 0; c < sum.by_class.size(); ++c) {
      sum.by_class[c] += users[i].partition.by_class[c];
    }
  }
  expect_partition_eq(sum, engine.partition());

  // Point query agrees with the bulk dump; an unseen id is nullopt.
  const auto one = engine.user_verdicts(users.front().id);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->id, users.front().id);
  EXPECT_EQ(one->checkins_seen, users.front().checkins_seen);
  EXPECT_FALSE(engine.user_verdicts(0xFFFFFF).has_value());
}

TEST(StreamEngine, UserVerdictsInterarrivalStatistics) {
  StreamEngine engine{StreamEngineConfig{}};
  trace::Checkin c;
  c.poi = 1;
  c.category = trace::PoiCategory::kFood;
  c.location = kVenue;
  // Checkins at 0, +10min, +30min: gaps {10, 20} minutes.
  for (const trace::TimeSec t : {0, 600, 1800}) {
    c.t = t;
    engine.push(Event::checkin_event(42, c));
  }

  const auto v = engine.user_verdicts(42);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->checkins_seen, 3u);
  EXPECT_EQ(v->gap_count, 2u);
  EXPECT_DOUBLE_EQ(v->gap_mean_min, 15.0);
  EXPECT_DOUBLE_EQ(v->gap_stddev_min(), 5.0);  // population: sqrt(50 / 2)
  EXPECT_DOUBLE_EQ(v->burstiness(), (5.0 - 15.0) / (5.0 + 15.0));

  // A GPS-only user is tracked but has no gaps and a zero ratio.
  trace::GpsPoint p;
  p.t = 100;
  p.position = kVenue;
  p.has_fix = true;
  engine.push(Event::gps_sample(7, p));
  const auto gps_only = engine.user_verdicts(7);
  ASSERT_TRUE(gps_only.has_value());
  EXPECT_EQ(gps_only->gap_count, 0u);
  EXPECT_DOUBLE_EQ(gps_only->burstiness(), 0.0);
  EXPECT_DOUBLE_EQ(gps_only->extraneous_ratio(), 0.0);
  engine.finish();
}

}  // namespace
}  // namespace geovalid::stream
