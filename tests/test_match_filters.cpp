// Tests for the extraneous-checkin detectors of §5.3 / §7.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "match/filters.h"

namespace geovalid::match {
namespace {

const core::StudyAnalysis& tiny_analysis() {
  static const core::StudyAnalysis analysis =
      core::analyze_generated(synth::tiny_preset());
  return analysis;
}

TEST(DetectionScore, Formulas) {
  DetectionScore s;
  s.true_positive = 30;
  s.false_positive = 10;
  s.false_negative = 20;
  s.true_negative = 40;
  EXPECT_DOUBLE_EQ(s.precision(), 0.75);
  EXPECT_DOUBLE_EQ(s.recall(), 0.6);
  EXPECT_NEAR(s.f1(), 2.0 * 0.75 * 0.6 / 1.35, 1e-12);
  EXPECT_DOUBLE_EQ(s.honest_loss(), 0.2);
}

TEST(DetectionScore, EmptyDenominatorsAreZero) {
  const DetectionScore s;
  EXPECT_DOUBLE_EQ(s.precision(), 0.0);
  EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.f1(), 0.0);
  EXPECT_DOUBLE_EQ(s.honest_loss(), 0.0);
}

TEST(BurstinessFlags, FlagsBothSidesOfASmallGap) {
  // Hand-build a dataset: one user, three checkins, the last two 1 minute
  // apart.
  trace::CheckinTrace ck;
  for (trace::TimeSec t : {trace::minutes(0), trace::minutes(120),
                           trace::minutes(121)}) {
    trace::Checkin c;
    c.t = t;
    ck.append(c);
  }
  trace::UserRecord u;
  u.id = 1;
  u.checkins = std::move(ck);
  std::vector<trace::UserRecord> users;
  users.push_back(std::move(u));
  const trace::Dataset ds("t", {}, std::move(users));

  const auto flags = burstiness_flags(ds);
  ASSERT_EQ(flags.size(), 1u);
  ASSERT_EQ(flags[0].size(), 3u);
  EXPECT_FALSE(flags[0][0]);
  EXPECT_TRUE(flags[0][1]);
  EXPECT_TRUE(flags[0][2]);
}

TEST(BurstinessFlags, WiderThresholdFlagsMore) {
  const auto& a = tiny_analysis();
  std::size_t prev = 0;
  for (trace::TimeSec threshold :
       {trace::minutes(1), trace::minutes(5), trace::minutes(30)}) {
    BurstinessFilterConfig cfg;
    cfg.gap_threshold = threshold;
    const auto flags = burstiness_flags(a.dataset, cfg);
    std::size_t total = 0;
    for (const auto& f : flags) {
      total += static_cast<std::size_t>(std::count(f.begin(), f.end(), true));
    }
    EXPECT_GE(total, prev);
    prev = total;
  }
}

TEST(BurstinessFilter, BeatsChanceOnGeneratedData) {
  // Figure 6's separation means burst gaps predict extraneous checkins far
  // better than the base rate.
  const auto& a = tiny_analysis();
  const auto flags = burstiness_flags(a.dataset);
  const DetectionScore s = score_flags(a.validation, flags);

  // Base rate of extraneous checkins in the dataset:
  const double base =
      static_cast<double>(a.partition().extraneous) /
      static_cast<double>(a.partition().checkins);
  EXPECT_GT(s.precision(), base);
  EXPECT_GT(s.recall(), 0.5);
}

TEST(UserLevelFlags, FractionControlsFlaggedUsers) {
  const auto& a = tiny_analysis();
  const auto none = user_level_flags(a.dataset, 0.0);
  std::size_t flagged = 0;
  for (const auto& f : none) {
    flagged += static_cast<std::size_t>(std::count(f.begin(), f.end(), true));
  }
  EXPECT_EQ(flagged, 0u);

  const auto all = user_level_flags(a.dataset, 1.0);
  std::size_t total = 0, set = 0;
  for (const auto& f : all) {
    total += f.size();
    set += static_cast<std::size_t>(std::count(f.begin(), f.end(), true));
  }
  EXPECT_EQ(set, total);
  EXPECT_THROW(user_level_flags(a.dataset, 1.5), std::invalid_argument);
}

TEST(UserLevelFlags, CoarserThanCheckinLevel) {
  // Dropping half the users should cost clearly more honest checkins than
  // the checkin-level burstiness filter does (the paper's §5.3 argument).
  const auto& a = tiny_analysis();
  const DetectionScore user_half =
      score_flags(a.validation, user_level_flags(a.dataset, 0.5));
  BurstinessFilterConfig tight;
  tight.gap_threshold = trace::minutes(2);
  const DetectionScore bursty =
      score_flags(a.validation, burstiness_flags(a.dataset, tight));
  EXPECT_GT(user_half.honest_loss(), bursty.honest_loss());
}

TEST(ThresholdSweep, RecallIncreasesWithThreshold) {
  const auto& a = tiny_analysis();
  const std::vector<double> thresholds{0.5, 2.0, 10.0, 60.0};
  const auto curve =
      burstiness_threshold_sweep(a.dataset, a.validation, thresholds);
  ASSERT_EQ(curve.size(), thresholds.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second.recall(), curve[i - 1].second.recall() - 1e-12);
  }
}

TEST(ScoreFlags, RejectsMismatchedShapes) {
  const auto& a = tiny_analysis();
  std::vector<std::vector<bool>> wrong;  // wrong user count
  EXPECT_THROW(score_flags(a.validation, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace geovalid::match
